//! Workspace-level integration tests spanning all crates: device → channel →
//! receiver → protocol accounting, exercising the public API the way the
//! examples do.

use netscatter::prelude::*;
use netscatter_channel::impairments::ImpairmentModel;
use netscatter_channel::noise::AwgnChannel;
use netscatter_dsp::Complex64;
use netscatter_phy::packet::LinkPacket;
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::network::{netscatter_metrics, NetScatterVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sixteen devices with realistic impairments and sub-noise-floor SNR all
/// deliver a CRC-protected packet in one concurrent round.
#[test]
fn sixteen_devices_deliver_crc_protected_packets_concurrently() {
    let mut rng = StdRng::seed_from_u64(11);
    let profile = PhyProfile::default();
    let model = ImpairmentModel::cots_backscatter();
    let mut allocator = CyclicShiftAllocator::new(&profile);
    let receiver = ConcurrentReceiver::new(&profile).unwrap();

    // Associate 16 devices with strengths spanning 20 dB.
    let mut devices = Vec::new();
    for i in 0..16 {
        let strength = -95.0 - (i as f64) * 1.3;
        let assignment = allocator.assign(strength).unwrap();
        let mut dev = BackscatterDevice::new(
            DeviceConfig {
                id: i as u16,
                ..Default::default()
            },
            profile,
            &model,
            &mut rng,
        );
        dev.accept_assignment(assignment.chirp_bin, -42.0);
        devices.push(dev);
    }

    // Each device sends a distinct CRC-protected packet.
    let packets: Vec<LinkPacket> = (0..16)
        .map(|i| LinkPacket::new(vec![i as u8, 0x5A, i as u8 ^ 0xFF, 0x0F]))
        .collect();
    let payload_bits = packets[0].to_bits().len();

    let n = profile.modulation.num_bins();
    let mut air = vec![Complex64::ZERO; (8 + payload_bits) * n];
    for (dev, pkt) in devices.iter().zip(&packets) {
        let imp = dev.packet_impairments(&model, &mut rng);
        let pre = dev.preamble_waveform(&imp, 1.0).unwrap();
        let pay = dev.payload_waveform(&pkt.to_bits(), &imp, 1.0).unwrap();
        for (i, s) in pre.iter().chain(pay.iter()).enumerate() {
            air[i] += *s;
        }
    }
    // Per-device SNR of -3 dB: below the per-sample noise floor.
    AwgnChannel::with_noise_power(2.0).apply(&mut rng, &mut air);

    let bins: Vec<usize> = devices.iter().map(|d| d.assigned_bin().unwrap()).collect();
    let round = receiver.decode_round(&air, 0, &bins, payload_bits).unwrap();
    assert_eq!(round.devices.len(), 16, "all devices must be detected");
    let mut recovered = 0;
    for (dev, pkt) in devices.iter().zip(&packets) {
        let bits = round.bits_for(dev.assigned_bin().unwrap()).unwrap();
        if LinkPacket::from_bits(bits).as_ref() == Some(pkt) {
            recovered += 1;
        }
    }
    // With SKIP = 2 and per-packet hardware-delay jitter of up to 3.5 µs the
    // occasional device lands outside its guard band (the paper sees the
    // same effect as increased variance at 256 devices), so allow a small
    // number of CRC failures.
    assert!(recovered >= 9, "only {recovered}/16 packets passed CRC");
}

/// The full protocol stack agrees with the closed-form accounting: a decoded
/// round recorded into the protocol engine yields the expected ~976 bps per
/// device.
#[test]
fn protocol_accounting_matches_decoded_round() {
    use netscatter::protocol::{NetworkProtocol, RoundOutcome, RoundTiming};
    let profile = PhyProfile::default();
    let query = QueryMessage::config1(0);
    let timing = RoundTiming::netscatter(&profile, &query, 40);
    let mut protocol = NetworkProtocol::new(profile);
    protocol.record_round(
        timing,
        RoundOutcome {
            scheduled: 64,
            detected: 64,
            decoded_clean: 64,
            correct_bits: 64 * 40,
            transmitted_bits: 64 * 40,
        },
    );
    let metrics = protocol.metrics().unwrap();
    let per_device = metrics.phy_rate_bps / 64.0;
    assert!((per_device - profile.modulation.per_device_bitrate_bps()).abs() < 1.0);
}

/// Deployment → network accounting reproduces the headline scaling claims on
/// a fresh random deployment (different seed from the unit tests).
#[test]
fn network_scaling_holds_on_a_fresh_deployment() {
    let mut rng = StdRng::seed_from_u64(2024);
    let dep = Deployment::generate(DeploymentConfig::office(256), &mut rng);
    let m64 = netscatter_metrics(&dep, 64, 40, NetScatterVariant::Config1);
    let m256 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
    // Aggregate PHY rate grows nearly linearly in the number of devices.
    assert!(m256.phy_rate_bps > 3.0 * m64.phy_rate_bps);
    // Latency stays one round regardless of network size.
    assert!((m256.latency_s - m64.latency_s).abs() / m64.latency_s < 0.05);
}

/// Association + power adjustment work end to end through the public API.
#[test]
fn association_and_power_adaptation_round_trip() {
    let mut rng = StdRng::seed_from_u64(5);
    let profile = PhyProfile::default();
    let mut ap = AssociationManager::new(CyclicShiftAllocator::new(&profile));
    let model = ImpairmentModel::cots_backscatter();
    let mut device = BackscatterDevice::new(DeviceConfig::default(), profile, &model, &mut rng);

    let assignment = ap.handle_request(-110.0).unwrap();
    let query = ap.build_query(0);
    assert!(query.association_response.is_some());
    device.accept_assignment(assignment.chirp_bin, -45.0);
    assert!(ap.handle_ack(true).is_some());

    // The device tracks a slowly improving then degrading channel.
    let mut transmitted = 0;
    for rssi in [-45.0, -43.0, -41.0, -44.0, -47.0, -46.0] {
        if matches!(
            device.power_adjust_and_decide(rssi),
            TransmitDecision::Transmit(_)
        ) {
            transmitted += 1;
        }
    }
    assert_eq!(transmitted, 6, "a stable channel should never force a skip");
}

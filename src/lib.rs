//! Workspace umbrella crate (examples + integration tests). See crates/* for the library.
pub use netscatter;
pub use netscatter_baselines as baselines;
pub use netscatter_channel as channel;
pub use netscatter_dsp as dsp;
pub use netscatter_gateway as gateway;
pub use netscatter_phy as phy;
pub use netscatter_sim as sim;

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark framework.
//!
//! The build environment has no crate-registry access, so this vendored crate
//! implements the API subset the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — on top of a simple
//! wall-clock harness: each benchmark is warmed up once, then timed over
//! `sample_size` batches, and the median batch time is printed. Statistical
//! machinery (outlier analysis, HTML reports) is intentionally absent; the
//! numbers are honest medians good enough for relative comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterised by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: F) {
        // One warm-up call, then `sample_size` timed samples of one iteration
        // each; report the median so a single hiccup does not skew the line.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                b.elapsed = Duration::ZERO;
                routine(&mut b);
                b.elapsed
            })
            .collect();
        samples.sort();
        let median = samples[samples.len() / 2];
        println!("{}/{:<40} median {:>12.3?}", self.name, id, median);
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_samples(&id.id, routine);
        self
    }

    /// Registers and immediately runs one parameterised benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_samples(&id.id, |b| routine(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: F,
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.run_samples(&id.id, routine);
        self
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` function running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

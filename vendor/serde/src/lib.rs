//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crate-registry access, so this vendored crate
//! supplies the surface the workspace actually uses: the [`Serialize`] and
//! [`Deserialize`] marker traits together with no-op derive macros of the
//! same names (from the sibling `serde_derive` stub). Types deriving them
//! compile and advertise serializability; actual wire formats can be added
//! when a real serializer becomes available. The `derive` cargo feature is
//! accepted for compatibility and is always on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait for types that can be serialized.
///
/// In the real `serde` this carries the `serialize` method; the offline stub
/// only records the capability so `#[derive(Serialize)]` compiles.
pub trait Serialize {}

/// Marker trait for types that can be deserialized.
///
/// In the real `serde` this carries the `deserialize` method; the offline
/// stub only records the capability so `#[derive(Deserialize)]` compiles.
pub trait Deserialize {}

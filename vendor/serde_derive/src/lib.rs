//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` stand-in.
//!
//! Each derive parses just enough of the item — outer attributes, visibility,
//! the `struct`/`enum` keyword, the type name and an optional generics list —
//! to emit an empty `impl` of the corresponding marker trait. No `syn`/`quote`
//! dependency: the parsing is done directly on [`proc_macro::TokenStream`].

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed identity of a derived type: its name and raw generics tokens.
struct Item {
    name: String,
    /// Tokens between `<` and `>` (exclusive), verbatim, or empty.
    generics: String,
    /// The generic parameter names (lifetimes/types) for the `for Ty<...>`
    /// position, without bounds or defaults.
    params: String,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#` followed by a bracketed group) and
    // visibility (`pub`, optionally followed by a parenthesised restriction).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde stub derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" || kw.to_string() == "enum" => {}
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, found {other:?}"),
    };
    // Optional generics: collect raw tokens between balanced < and >.
    let mut generics = String::new();
    let mut params = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut bound_depth = 0usize; // inside `:` bounds or `=` defaults
            for tt in iter.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ':' if depth == 1 => bound_depth = 1,
                        '=' if depth == 1 => bound_depth = 1,
                        ',' if depth == 1 => bound_depth = 0,
                        _ => {}
                    }
                }
                generics.push_str(&tt.to_string());
                generics.push(' ');
                if bound_depth == 0 || matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    params.push_str(&tt.to_string());
                    params.push(' ');
                }
            }
        }
    }
    Item {
        name,
        generics,
        params,
    }
}

fn emit(input: TokenStream, trait_path: &str) -> TokenStream {
    let item = parse_item(input);
    let code = if item.generics.is_empty() {
        format!(
            "#[automatically_derived] impl {} for {} {{}}",
            trait_path, item.name
        )
    } else {
        format!(
            "#[automatically_derived] impl<{}> {} for {}<{}> {{}}",
            item.generics, trait_path, item.name, item.params
        )
    };
    code.parse()
        .expect("serde stub derive: generated impl failed to parse")
}

/// Derives the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Serialize")
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "::serde::Deserialize")
}

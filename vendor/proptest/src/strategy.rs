//! The [`Strategy`] trait and its implementations for ranges, tuples, and
//! mapped strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy only
/// needs to produce a fresh value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy whose values are `f` applied to this strategy's
    /// values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

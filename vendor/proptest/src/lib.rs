//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no crate-registry access, so this vendored crate
//! implements the subset the workspace's tests use: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], a [`Strategy`]
//! trait implemented for numeric ranges and tuples, `prop_map`, and
//! [`collection::vec`]. Cases are generated from a deterministic RNG so runs
//! are reproducible; there is no shrinking — on failure the offending inputs
//! are reported as generated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub use strategy::Strategy;

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::SeedableRng;

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(pub(crate) rand::rngs::StdRng);

    impl TestRng {
        /// A fixed-seed RNG so test runs are reproducible.
        pub fn deterministic() -> Self {
            TestRng(rand::rngs::StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15))
        }
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The number of elements a [`vec`] strategy may generate: either exact
    /// or drawn uniformly from a half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Always exactly this many elements.
        Exact(usize),
        /// Uniform in `[lo, hi)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => rng.0.gen_range(lo..hi),
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Each function's arguments are drawn from the
/// given strategies; the body runs once per accepted case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(100).max(1000),
                        "proptest stub: too many prop_assume! rejections in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    // `prop_assume!` inside the body expands to `continue`,
                    // skipping the acceptance count below.
                    { $body }
                    accepted += 1;
                }
            }
        )*
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

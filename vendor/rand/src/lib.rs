//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! crate re-implements exactly the `rand 0.8` API surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (over half-open and inclusive
//!   `f64` / integer ranges) and `gen_bool`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! The generator is not the real `StdRng` (ChaCha12) but is a solid
//! statistical PRNG, fully deterministic from a seed, which is all the
//! Monte-Carlo simulations in this workspace require. No unsafe code, no
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts the next 53 random bits into a `f64` uniform on `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range in gen_range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction
/// without the rejection step; the bias is ≪ 2⁻⁵³ for the span sizes used
/// in this workspace).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..100_000)
            .map(|_| rng.gen_range(0.0f64..1.0))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}

//! Association walkthrough: a new device joins a running NetScatter network
//! through the reserved association cyclic shifts (Fig. 10), receives a
//! power-aware assignment, and starts adapting its backscatter gain to the
//! query strength.
//!
//! Run with `cargo run --example association_walkthrough --release`.

use netscatter::prelude::*;
use netscatter_channel::impairments::ImpairmentModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let profile = PhyProfile::default();
    let mut ap = AssociationManager::new(CyclicShiftAllocator::new(&profile));
    println!(
        "association cyclic shifts reserved at bins {:?}",
        ap.association_bins()
    );

    // Two devices are already in the network.
    for strength in [-96.0, -112.0] {
        ap.handle_request(strength).unwrap();
        ap.handle_ack(true).unwrap();
    }
    println!(
        "existing members: {:?}",
        ap.members().iter().map(|m| m.chirp_bin).collect::<Vec<_>>()
    );

    // Device #3 wakes up, hears the query at -44 dBm, and requests association.
    let model = ImpairmentModel::cots_backscatter();
    let mut device = BackscatterDevice::new(
        DeviceConfig {
            id: 3,
            ..Default::default()
        },
        profile,
        &model,
        &mut rng,
    );
    let downlink_rssi = -44.0;
    println!(
        "\ndevice 3 hears the query at {downlink_rssi} dBm: {}",
        device.hears_query(downlink_rssi)
    );

    // The AP measures the request at -118 dBm and assigns a shift.
    let assignment = ap.handle_request(-118.0).unwrap();
    let query = ap.build_query(0);
    println!(
        "AP query carries association response: network id {}, cyclic-shift slot {}",
        query.association_response.unwrap().network_id,
        query.association_response.unwrap().cyclic_shift_index
    );

    // The device accepts and the AP records the ACK.
    device.accept_assignment(assignment.chirp_bin, downlink_rssi);
    let member = ap.handle_ack(true).unwrap();
    println!(
        "device 3 associated on bin {} with initial gain {:?}",
        member.chirp_bin,
        device.gain()
    );

    // Over the following rounds the downlink strength drifts and the device
    // adapts its backscatter power without any extra protocol messages.
    println!("\nself-aware power adjustment:");
    for rssi in [-44.0, -41.0, -38.0, -43.0, -48.0] {
        let decision = device.power_adjust_and_decide(rssi);
        println!("  query at {rssi:6.1} dBm -> {decision:?}");
    }
}

//! Rate and latency accounting: reproduce the Fig. 17–19 sweep in one run
//! and print the full table for all four schemes.
//!
//! Run with `cargo run --example rate_and_latency --release` (add `--quick`
//! for a shorter sweep).

use netscatter_sim::experiments::{fig17, fig18, fig19, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    println!("{}", fig17(scale, 42));
    println!("{}", fig18(scale, 42));
    println!("{}", fig19(scale, 42));
}

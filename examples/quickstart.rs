//! Quickstart: three backscatter devices transmit concurrently and the AP
//! decodes them all with a single FFT per symbol.
//!
//! Run with `cargo run --example quickstart --release`.

use netscatter::prelude::*;
use netscatter_channel::impairments::ImpairmentModel;
use netscatter_channel::noise::AwgnChannel;
use netscatter_dsp::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let profile = PhyProfile::default(); // 500 kHz, SF 9, SKIP 2
    println!(
        "NetScatter quickstart: BW = {} kHz, SF = {}, up to {} concurrent devices",
        profile.modulation.bandwidth_hz / 1e3,
        profile.modulation.spreading_factor,
        profile.max_concurrent_devices()
    );

    // The AP measures each device's uplink strength at association and hands
    // out power-aware cyclic shifts.
    let mut allocator = CyclicShiftAllocator::new(&profile);
    let strengths = [-95.0, -108.0, -117.0];
    let model = ImpairmentModel::cots_backscatter();
    let mut devices = Vec::new();
    for (i, &s) in strengths.iter().enumerate() {
        let assignment = allocator.assign(s).expect("network has room");
        let mut dev = BackscatterDevice::new(
            DeviceConfig {
                id: i as u16,
                ..Default::default()
            },
            profile,
            &model,
            &mut rng,
        );
        dev.accept_assignment(assignment.chirp_bin, -42.0);
        println!(
            "device {i}: uplink {s} dBm -> cyclic shift {} (gain {:?})",
            assignment.chirp_bin,
            dev.gain()
        );
        devices.push(dev);
    }

    // Each device ON-OFF keys its assigned shift; the payloads differ.
    let payloads: Vec<Vec<bool>> = (0..devices.len())
        .map(|i| (0..16).map(|b| (b + i) % 3 != 0).collect())
        .collect();

    // Superpose preambles and payloads as the AP's antenna would see them.
    let n = profile.modulation.num_bins();
    let total = (8 + 16) * n;
    let mut air = vec![Complex64::ZERO; total];
    for (dev, bits) in devices.iter().zip(&payloads) {
        let imp = dev.packet_impairments(&model, &mut rng);
        let pre = dev.preamble_waveform(&imp, 1.0).unwrap();
        let pay = dev.payload_waveform(bits, &imp, 1.0).unwrap();
        for (i, s) in pre.iter().chain(pay.iter()).enumerate() {
            air[i] += *s;
        }
    }
    // Thermal-like noise at 0 dB per-device SNR.
    AwgnChannel::with_noise_power(1.0).apply(&mut rng, &mut air);

    // One receiver decodes everyone.
    let receiver = ConcurrentReceiver::new(&profile).expect("valid profile");
    let bins: Vec<usize> = devices.iter().map(|d| d.assigned_bin().unwrap()).collect();
    let round = receiver.decode_round(&air, 0, &bins, 16).expect("decode");
    for (i, (dev, bits)) in devices.iter().zip(&payloads).enumerate() {
        let decoded = round
            .bits_for(dev.assigned_bin().unwrap())
            .expect("detected");
        let errors = decoded.iter().zip(bits).filter(|(a, b)| a != b).count();
        println!(
            "device {i}: {} payload bits decoded, {errors} bit errors",
            decoded.len()
        );
    }
}

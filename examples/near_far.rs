//! Near-far demonstration: how power-aware cyclic-shift assignment lets a
//! weak device survive a 35 dB stronger concurrent transmitter (Fig. 12 /
//! Fig. 15b in miniature).
//!
//! Run with `cargo run --example near_far --release`.

use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::spectrum::sidelobe_profile_db;
use netscatter_sim::ber::{near_far_ber, NearFarConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let params = ChirpParams::new(500e3, 9).unwrap();

    println!("Side-lobe envelope of a strong device's dechirped spectrum (Fig. 8):");
    let profile = sidelobe_profile_db(params.num_bins(), 8).unwrap();
    for offset in [2usize, 3, 8, 64, 256] {
        println!(
            "  a device {offset:3} bins away tolerates an interferer up to {:5.1} dB stronger",
            profile.tolerable_power_difference_db(offset)
        );
    }

    println!("\nVictim BER at -12 dB SNR vs. interferer power advantage (victim bin 2, interferer bin 258):");
    for delta in [0.0, 20.0, 35.0, 45.0] {
        let cfg = NearFarConfig::paper(delta);
        let ber = near_far_ber(&mut rng, &cfg, -12.0, 2_000);
        println!("  interferer +{delta:4.0} dB -> BER {ber:.4}");
    }

    println!("\nSame victim with the interferer only 2 bins away (no power-aware assignment):");
    for delta in [0.0, 20.0, 35.0] {
        let cfg = NearFarConfig {
            interferer_bin: 4,
            ..NearFarConfig::paper(delta)
        };
        let ber = near_far_ber(&mut rng, &cfg, -12.0, 2_000);
        println!("  interferer +{delta:4.0} dB -> BER {ber:.4}");
    }
}

//! Office-scale deployment: generate the 256-device office floor of the
//! paper, run the Fig. 17–19 accounting, and print the headline gains over
//! the LoRa-backscatter baselines.
//!
//! Run with `cargo run --example office_deployment --release`.

use netscatter_baselines::tdma::LoraScheme;
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::network::{lora_backscatter_metrics, netscatter_metrics, NetScatterVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let deployment = Deployment::generate(DeploymentConfig::office(256), &mut rng);
    println!(
        "Deployed {} devices across a {}x{} room office; uplink dynamic range {:.1} dB",
        deployment.devices.len(),
        deployment.config.rooms_x,
        deployment.config.rooms_y,
        deployment.dynamic_range_db()
    );

    println!("\n   N   NetScatter PHY [kbps]   link-layer [kbps]   latency [ms]");
    for n in [16usize, 64, 128, 256] {
        let m = netscatter_metrics(&deployment, n, 40, NetScatterVariant::Config1);
        println!(
            "  {:4}  {:20.1}  {:18.1}  {:13.1}",
            n,
            m.phy_rate_bps / 1e3,
            m.link_layer_rate_bps / 1e3,
            m.latency_s * 1e3
        );
    }

    let ns = netscatter_metrics(&deployment, 256, 40, NetScatterVariant::Config1);
    let fixed = lora_backscatter_metrics(&deployment, 256, 40, LoraScheme::fixed());
    let adapted = lora_backscatter_metrics(&deployment, 256, 40, LoraScheme::rate_adapted());
    println!("\nAt 256 devices:");
    println!(
        "  link-layer gain: {:.1}x over fixed-rate LoRa backscatter, {:.1}x over rate-adapted",
        ns.link_layer_rate_bps / fixed.link_layer_rate_bps,
        ns.link_layer_rate_bps / adapted.link_layer_rate_bps
    );
    println!(
        "  latency: NetScatter {:.1} ms vs {:.0} ms (fixed) / {:.0} ms (rate-adapted)",
        ns.latency_s * 1e3,
        fixed.latency_s * 1e3,
        adapted.latency_s * 1e3
    );
}

//! # netscatter-baselines
//!
//! The comparison systems of the paper's evaluation:
//!
//! * [`rate_adaptation`] — the SX1276-style SNR → best-bitrate table used by
//!   the "LoRa backscatter with ideal rate adaptation" baseline (§4.4).
//! * [`tdma`] — the sequential query-response MAC used by single-user LoRa
//!   backscatter, with its per-device query, preamble and payload overheads
//!   (the accounting behind Figs. 17–19's baseline curves).
//! * [`choir`] — a model of Choir's fractional-FFT-bin disambiguation and
//!   why it cannot scale for backscatter devices (§2.2, Fig. 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod choir;
pub mod rate_adaptation;
pub mod tdma;

pub use rate_adaptation::{best_bitrate_bps, RateAdaptation};
pub use tdma::{LoraBackscatterNetwork, LoraScheme};

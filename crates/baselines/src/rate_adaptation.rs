//! Ideal rate adaptation for single-user LoRa backscatter.
//!
//! §4.4: "we measure the signal strength from each of the backscatter
//! devices and compute the bitrate using the SNR table in [4]; this is the
//! ideal performance a single-user LoRa backscatter design achieves with
//! rate adaptation." The candidate configurations are the (BW, SF) pairs a
//! 500 kHz channel admits; the highest-bitrate configuration whose
//! sensitivity the device's received power still satisfies is selected, up
//! to the 32 kbps maximum the paper quotes for high-SNR devices.

use netscatter_phy::params::ModulationConfig;
use serde::{Deserialize, Serialize};

/// The rate-adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateAdaptation {
    /// Every device uses the fixed LoRa-backscatter rate of ≈8.7 kbps
    /// regardless of channel quality ("LoRa backscatter without rate
    /// adaptation" in Figs. 17–19).
    Fixed,
    /// Each device picks the fastest configuration its SNR supports
    /// ("LoRa backscatter with rate adaptation").
    Ideal,
}

/// The fixed bitrate of the no-adaptation baseline, in bits per second.
pub const FIXED_LORA_BACKSCATTER_BPS: f64 = 8_700.0;

/// The maximum bitrate reachable with rate adaptation (paper: 32 kbps).
pub const MAX_LORA_BACKSCATTER_BPS: f64 = 32_000.0;

/// Candidate configurations for rate adaptation on a 500 kHz channel:
/// SF 5–12 at 500 kHz.
fn candidates() -> Vec<ModulationConfig> {
    (5..=12u32)
        .filter_map(|sf| ModulationConfig::new(500e3, sf).ok())
        .collect()
}

/// The best achievable single-user LoRa bitrate (bps) for a device received
/// at `rssi_dbm`, or `None` if even the most robust configuration cannot
/// decode it.
pub fn best_bitrate_bps(rssi_dbm: f64) -> Option<f64> {
    candidates()
        .into_iter()
        .filter(|c| rssi_dbm >= c.sensitivity_dbm())
        .map(|c| c.lora_bitrate_bps().min(MAX_LORA_BACKSCATTER_BPS))
        .fold(None, |best, r| Some(best.map_or(r, |b: f64| b.max(r))))
}

impl RateAdaptation {
    /// The payload bitrate a device received at `rssi_dbm` achieves under
    /// this policy. Devices too weak for any configuration return `None`.
    pub fn bitrate_bps(&self, rssi_dbm: f64) -> Option<f64> {
        match self {
            RateAdaptation::Fixed => {
                // The fixed rate corresponds to roughly SF 9 at 500 kHz; the
                // device must at least satisfy that sensitivity.
                let reference = ModulationConfig::new(500e3, 9).ok()?;
                (rssi_dbm >= reference.sensitivity_dbm()).then_some(FIXED_LORA_BACKSCATTER_BPS)
            }
            RateAdaptation::Ideal => best_bitrate_bps(rssi_dbm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_devices_hit_the_32kbps_cap() {
        assert_eq!(best_bitrate_bps(-60.0), Some(MAX_LORA_BACKSCATTER_BPS));
        assert_eq!(
            RateAdaptation::Ideal.bitrate_bps(-60.0),
            Some(MAX_LORA_BACKSCATTER_BPS)
        );
    }

    #[test]
    fn weak_devices_fall_back_to_slow_robust_rates() {
        // Around -125 dBm only the high-SF configurations decode.
        let r = best_bitrate_bps(-125.0).unwrap();
        assert!(r < 10_000.0, "rate {r} should be a slow configuration");
        assert!(r > 100.0);
        // Monotonicity: more power never lowers the best rate.
        let mut last = 0.0;
        for rssi in (-130..=-60).step_by(5) {
            let r = best_bitrate_bps(rssi as f64).unwrap_or(0.0);
            assert!(r >= last, "rate dropped from {last} to {r} at {rssi} dBm");
            last = r;
        }
    }

    #[test]
    fn devices_below_all_sensitivities_get_nothing() {
        assert_eq!(best_bitrate_bps(-140.0), None);
        assert_eq!(RateAdaptation::Ideal.bitrate_bps(-140.0), None);
        assert_eq!(RateAdaptation::Fixed.bitrate_bps(-140.0), None);
    }

    #[test]
    fn fixed_policy_is_flat_when_decodable() {
        assert_eq!(
            RateAdaptation::Fixed.bitrate_bps(-60.0),
            Some(FIXED_LORA_BACKSCATTER_BPS)
        );
        assert_eq!(
            RateAdaptation::Fixed.bitrate_bps(-115.0),
            Some(FIXED_LORA_BACKSCATTER_BPS)
        );
    }
}

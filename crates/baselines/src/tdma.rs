//! Sequential (TDMA) query-response accounting for single-user LoRa
//! backscatter.
//!
//! Prior long-range backscatter systems serve one device at a time: the AP
//! queries a device (28-bit downlink message), the device answers with its
//! own preamble and payload, and only then is the next device served (§4.4).
//! This module computes the network PHY rate, link-layer rate, and latency of
//! that scheme for a population of devices — the baseline curves of
//! Figs. 17–19.

use crate::rate_adaptation::RateAdaptation;
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::PREAMBLE_SYMBOLS;
use serde::{Deserialize, Serialize};

/// Which LoRa-backscatter variant to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoraScheme {
    /// Rate-adaptation policy.
    pub adaptation: RateAdaptation,
    /// Downlink bits of the per-device AP query (paper: 28 bits).
    pub query_bits: usize,
}

impl LoraScheme {
    /// The fixed-rate baseline.
    pub fn fixed() -> Self {
        Self {
            adaptation: RateAdaptation::Fixed,
            query_bits: 28,
        }
    }

    /// The ideal-rate-adaptation baseline.
    pub fn rate_adapted() -> Self {
        Self {
            adaptation: RateAdaptation::Ideal,
            query_bits: 28,
        }
    }

    /// Stable human/CLI-facing name of the scheme variant, as accepted by
    /// the experiment API's scenario parser.
    pub fn label(&self) -> &'static str {
        match self.adaptation {
            RateAdaptation::Fixed => "lora-fixed",
            RateAdaptation::Ideal => "lora-adapted",
        }
    }
}

/// Result of serving one device once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceService {
    /// The payload bitrate used, in bits per second (0 if unreachable).
    pub bitrate_bps: f64,
    /// Time spent on the AP query, in seconds.
    pub query_s: f64,
    /// Time spent on the device's preamble, in seconds.
    pub preamble_s: f64,
    /// Time spent on the payload, in seconds.
    pub payload_s: f64,
    /// Whether the device could be served at all.
    pub reachable: bool,
}

impl DeviceService {
    /// Total service time for this device.
    pub fn total_s(&self) -> f64 {
        self.query_s + self.preamble_s + self.payload_s
    }
}

/// Network-level accounting for the TDMA LoRa-backscatter baseline.
#[derive(Debug, Clone)]
pub struct LoraBackscatterNetwork {
    profile: PhyProfile,
    scheme: LoraScheme,
}

impl LoraBackscatterNetwork {
    /// Creates the baseline network model.
    pub fn new(profile: PhyProfile, scheme: LoraScheme) -> Self {
        Self { profile, scheme }
    }

    /// Accounts for serving one device whose uplink is received at
    /// `rssi_dbm`, delivering `payload_bits` payload bits.
    ///
    /// The preamble length in *symbols* matches NetScatter's (8), but because
    /// the baseline serves devices one at a time the preamble cost is paid
    /// once per device rather than once per round. The preamble symbol
    /// duration is taken at the reference SF 9 / 500 kHz configuration.
    pub fn serve_device(&self, rssi_dbm: f64, payload_bits: usize) -> DeviceService {
        let query_s = self.scheme.query_bits as f64 / self.profile.downlink_bitrate_bps;
        match self.scheme.adaptation.bitrate_bps(rssi_dbm) {
            Some(bitrate_bps) => {
                // The preamble uses the same modulation as the payload, so its
                // symbol duration shrinks when rate adaptation picks a faster
                // configuration: one CSS symbol carries SF bits, so
                // symbol duration ≈ SF / bitrate.
                let symbol_s = self.profile.modulation.spreading_factor as f64 / bitrate_bps;
                DeviceService {
                    bitrate_bps,
                    query_s,
                    preamble_s: PREAMBLE_SYMBOLS as f64 * symbol_s,
                    payload_s: payload_bits as f64 / bitrate_bps,
                    reachable: true,
                }
            }
            None => DeviceService {
                bitrate_bps: 0.0,
                query_s,
                preamble_s: 0.0,
                payload_s: 0.0,
                reachable: false,
            },
        }
    }

    /// Serves every device once (sequentially) and returns
    /// `(phy_rate_bps, link_layer_rate_bps, latency_s)`:
    ///
    /// * PHY rate — delivered payload bits over payload airtime only,
    /// * link-layer rate — delivered payload bits over the total schedule
    ///   (queries + preambles + payloads),
    /// * latency — the total time to collect one payload from every device.
    pub fn network_metrics(&self, rssi_dbm: &[f64], payload_bits: usize) -> (f64, f64, f64) {
        let services: Vec<DeviceService> = rssi_dbm
            .iter()
            .map(|&r| self.serve_device(r, payload_bits))
            .collect();
        let delivered_bits: f64 = services
            .iter()
            .filter(|s| s.reachable)
            .map(|_| payload_bits as f64)
            .sum();
        let payload_time: f64 = services.iter().map(|s| s.payload_s).sum();
        let total_time: f64 = services.iter().map(|s| s.total_s()).sum();
        let phy = if payload_time > 0.0 {
            delivered_bits / payload_time
        } else {
            0.0
        };
        let link = if total_time > 0.0 {
            delivered_bits / total_time
        } else {
            0.0
        };
        (phy, link, total_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate_adaptation::FIXED_LORA_BACKSCATTER_BPS;

    fn profile() -> PhyProfile {
        PhyProfile::default()
    }

    #[test]
    fn single_device_fixed_rate_phy_rate_is_the_fixed_rate() {
        let net = LoraBackscatterNetwork::new(profile(), LoraScheme::fixed());
        let (phy, link, latency) = net.network_metrics(&[-100.0], 40);
        assert!((phy - FIXED_LORA_BACKSCATTER_BPS).abs() < 1.0);
        assert!(link < phy, "overheads must reduce the link-layer rate");
        assert!(latency > 0.0);
    }

    #[test]
    fn rate_adaptation_beats_fixed_rate_for_strong_devices() {
        let strong = vec![-75.0; 16];
        let fixed = LoraBackscatterNetwork::new(profile(), LoraScheme::fixed());
        let adapted = LoraBackscatterNetwork::new(profile(), LoraScheme::rate_adapted());
        let (phy_f, _, lat_f) = fixed.network_metrics(&strong, 40);
        let (phy_a, _, lat_a) = adapted.network_metrics(&strong, 40);
        assert!(phy_a > phy_f);
        assert!(lat_a < lat_f);
    }

    #[test]
    fn latency_grows_linearly_with_devices() {
        let net = LoraBackscatterNetwork::new(profile(), LoraScheme::fixed());
        let (_, _, lat64) = net.network_metrics(&vec![-100.0; 64], 40);
        let (_, _, lat128) = net.network_metrics(&vec![-100.0; 128], 40);
        assert!((lat128 / lat64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn unreachable_devices_contribute_query_time_but_no_bits() {
        let net = LoraBackscatterNetwork::new(profile(), LoraScheme::fixed());
        let service = net.serve_device(-140.0, 40);
        assert!(!service.reachable);
        assert_eq!(service.bitrate_bps, 0.0);
        assert!(service.total_s() > 0.0);
        let (phy, link, _) = net.network_metrics(&[-140.0], 40);
        assert_eq!(phy, 0.0);
        assert_eq!(link, 0.0);
    }

    #[test]
    fn per_device_query_overhead_is_200_microseconds_or_less() {
        let net = LoraBackscatterNetwork::new(profile(), LoraScheme::fixed());
        let s = net.serve_device(-100.0, 40);
        assert!((s.query_s - 28.0 / 160e3).abs() < 1e-12);
        assert!(s.preamble_s > s.query_s, "preamble dominates the query");
    }
}

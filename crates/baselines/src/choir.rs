//! A model of Choir's fractional-FFT-bin disambiguation (§2.2, Fig. 4).
//!
//! Choir separates concurrent LoRa *radios* by the fractional FFT-bin
//! offsets their (900 MHz-scale) oscillator errors induce, with a resolution
//! of one tenth of a bin. Backscatter devices synthesize only a few MHz, so
//! their offsets are ~90× smaller and the whole population collapses into a
//! fraction of one bin — Choir cannot tell them apart. This module generates
//! the Fig. 4 CDFs and the scaling limits.

use netscatter_channel::impairments::ImpairmentModel;
use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::stats::EmpiricalCdf;
use rand::Rng;

/// Choir's fractional-bin resolution (one tenth of an FFT bin).
pub const CHOIR_FRACTION_RESOLUTION: f64 = 0.1;

/// Simulates the per-packet FFT-bin deviation (`ΔFFTbin`) of a population of
/// devices, as plotted in Fig. 4: each sample is the absolute bin offset a
/// packet's residual CFO induces for the given chirp configuration.
pub fn fft_bin_variation_cdf<R: Rng + ?Sized>(
    rng: &mut R,
    model: &ImpairmentModel,
    params: ChirpParams,
    num_devices: usize,
    packets_per_device: usize,
) -> EmpiricalCdf {
    let mut samples = Vec::with_capacity(num_devices * packets_per_device);
    for _ in 0..num_devices {
        let device = model.sample_device(rng);
        for _ in 0..packets_per_device {
            let packet = model.sample_packet(rng, &device);
            samples.push(params.frequency_offset_to_bins(packet.freq_offset_hz).abs());
        }
    }
    EmpiricalCdf::from_samples(samples)
}

/// Number of distinguishable devices Choir can support for a population whose
/// FFT-bin offsets span `bin_spread` bins: the number of distinct
/// tenth-of-a-bin cells the population can occupy.
pub fn distinguishable_devices(bin_spread: f64) -> usize {
    (bin_spread / CHOIR_FRACTION_RESOLUTION).floor().max(0.0) as usize
}

/// Probability that `num_devices` concurrent devices all occupy distinct
/// fractional cells when `cells` cells are usable (generalized birthday
/// argument; the paper's 10-cell case is `cells = 10`).
pub fn distinct_cell_probability(num_devices: usize, cells: usize) -> f64 {
    if num_devices > cells {
        return 0.0;
    }
    (0..num_devices)
        .map(|i| (cells - i) as f64 / cells as f64)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn radios_spread_over_bins_backscatter_does_not() {
        // Fig. 4: backscatter ΔFFTbin stays below ~1/3 bin while radios span
        // several bins at BW=500 kHz, SF=9.
        let params = ChirpParams::new(500e3, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let tags = fft_bin_variation_cdf(
            &mut rng,
            &ImpairmentModel::cots_backscatter(),
            params,
            64,
            20,
        );
        let radios =
            fft_bin_variation_cdf(&mut rng, &ImpairmentModel::active_radio(), params, 64, 20);
        assert!(
            tags.quantile(0.99) < 0.34,
            "backscatter spread {}",
            tags.quantile(0.99)
        );
        assert!(
            radios.quantile(0.9) > 1.0,
            "radio spread {}",
            radios.quantile(0.9)
        );
        assert!(radios.quantile(0.5) > tags.quantile(0.5) * 5.0);
    }

    #[test]
    fn distinguishable_device_count_collapses_for_backscatter() {
        // Radios spanning ±9 kHz ≈ 18+ bins give Choir plenty of cells;
        // backscatter spanning a third of a bin gives at most 3.
        assert!(distinguishable_devices(10.0) >= 100);
        assert!(distinguishable_devices(0.33) <= 3);
        assert_eq!(distinguishable_devices(0.0), 0);
    }

    #[test]
    fn distinct_cell_probability_matches_choir_numbers() {
        // §2.2: with 10 cells and 5 devices the all-distinct probability is ~30%.
        assert!((distinct_cell_probability(5, 10) - 0.3024).abs() < 1e-4);
        assert_eq!(distinct_cell_probability(11, 10), 0.0);
        assert_eq!(distinct_cell_probability(0, 10), 1.0);
        // With only 3 usable cells (backscatter), even 4 devices always collide.
        assert_eq!(distinct_cell_probability(4, 3), 0.0);
        assert!(distinct_cell_probability(3, 3) < 0.23);
    }
}

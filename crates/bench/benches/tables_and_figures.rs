//! One Criterion benchmark per table/figure of the paper's evaluation.
//!
//! Each bench times the corresponding experiment driver at `Scale::Quick`;
//! run the binaries in `netscatter-sim` (e.g. `cargo run -p netscatter-sim
//! --bin fig17 --release`) for the full, figure-quality output.

use criterion::{criterion_group, criterion_main, Criterion};
use netscatter_sim::experiments::{self, Scale};
use std::hint::black_box;

fn bench_tables_and_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_and_figures");
    group.sample_size(10);

    group.bench_function("table1_configs", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
    group.bench_function("fig04_choir_cdf", |b| {
        b.iter(|| black_box(experiments::fig04(Scale::Quick, 1)))
    });
    group.bench_function("fig08_sidelobes", |b| {
        b.iter(|| black_box(experiments::fig08()))
    });
    group.bench_function("fig09_snr_variance", |b| {
        b.iter(|| black_box(experiments::fig09(Scale::Quick, 1)))
    });
    group.bench_function("fig12_near_far_ber", |b| {
        b.iter(|| black_box(experiments::fig12(Scale::Quick, 1)))
    });
    group.bench_function("fig14_offsets", |b| {
        b.iter(|| black_box(experiments::fig14(Scale::Quick, 1)))
    });
    group.bench_function("fig15_dynamic_range", |b| {
        b.iter(|| black_box(experiments::fig15(Scale::Quick, 1)))
    });
    group.bench_function("fig16_power_levels", |b| {
        b.iter(|| black_box(experiments::fig16()))
    });
    group.bench_function("fig17_phy_rate", |b| {
        b.iter(|| black_box(experiments::fig17(Scale::Quick, 1)))
    });
    group.bench_function("fig18_link_rate", |b| {
        b.iter(|| black_box(experiments::fig18(Scale::Quick, 1)))
    });
    group.bench_function("fig19_latency", |b| {
        b.iter(|| black_box(experiments::fig19(Scale::Quick, 1)))
    });
    group.bench_function("analysis_choir", |b| {
        b.iter(|| black_box(experiments::analysis_choir()))
    });
    group.bench_function("analysis_capacity", |b| {
        b.iter(|| black_box(experiments::analysis_capacity()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables_and_figures);
criterion_main!(benches);

//! End-to-end decode throughput and the pruned-vs-dense zero-padded FFT
//! comparison.
//!
//! * `decode_throughput/full_round/N` — decoding a complete round (preamble
//!   detection + 16 payload symbols) for N ∈ {16, 64, 256} concurrent
//!   devices through the workspace-backed receiver. The §3.1 claim is that
//!   the per-symbol cost is one dechirp + FFT regardless of N; dividing the
//!   reported median by 16 gives the per-symbol decode time, whose inverse
//!   is the symbols/sec figure `perf_snapshot` tracks.
//! * `zero_padded_fft/{pruned,dense}` — the 512→4096 sub-bin transform of
//!   §3.2.3 with input pruning (first `log2(8) = 3` butterfly stages
//!   skipped) versus the dense pad-then-transform path over the same plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter::receiver::ConcurrentReceiver;
use netscatter_dsp::chirp::ChirpSynthesizer;
use netscatter_dsp::fft::Fft;
use netscatter_dsp::Complex64;
use netscatter_phy::params::PhyProfile;
use netscatter_sim::workloads::build_concurrent_round;
use std::hint::black_box;

const PAYLOAD_SYMBOLS: usize = 16;

fn full_round_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_throughput");
    group.sample_size(10);
    let profile = PhyProfile::default();
    for &n_devices in &[16usize, 64, 256] {
        let rx = ConcurrentReceiver::new(&profile).unwrap();
        let (stream, bins) = build_concurrent_round(&profile, n_devices, PAYLOAD_SYMBOLS);
        group.bench_with_input(
            BenchmarkId::new("full_round", n_devices),
            &n_devices,
            |b, _| {
                b.iter(|| {
                    let round = rx.decode_round(&stream, 0, &bins, PAYLOAD_SYMBOLS).unwrap();
                    black_box(round.devices.len())
                })
            },
        );
    }
    group.finish();
}

fn pruned_vs_dense_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_padded_fft");
    group.sample_size(20);
    let synth = ChirpSynthesizer::new(netscatter_dsp::ChirpParams::paper_default());
    let dechirped = synth.dechirp(&synth.shifted_upchirp(123));
    let plan = Fft::new(4096).unwrap();
    let mut out: Vec<Complex64> = Vec::new();
    group.bench_function("pruned", |b| {
        b.iter(|| {
            plan.forward_zero_padded_into(&dechirped, &mut out).unwrap();
            black_box(out[0])
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            // The unpruned path: explicit zero-pad, then a full in-place
            // transform over the same reusable buffer.
            out.clear();
            out.extend_from_slice(&dechirped);
            out.resize(4096, Complex64::ZERO);
            plan.forward_in_place(&mut out).unwrap();
            black_box(out[0])
        })
    });
    group.finish();
}

criterion_group!(benches, full_round_decode, pruned_vs_dense_fft);
criterion_main!(benches);

//! Preamble sync correlation: the overlap-save FFT correlator the stream
//! detector anchors packets with, next to the time-domain sliding dot
//! product it replaced.
//!
//! * `sync_correlation/overlap_save` — full "valid"-mode correlation of a
//!   16 384-sample stream against one n = 512 chirp template through
//!   `Correlator::correlate_into` (8n = 4096-point segments, the geometry
//!   `StreamDetector` uses).
//! * `sync_correlation/shared_segment_8_templates` — the detector's actual
//!   inner pattern: one `load_segment` forward transform amortized across
//!   the 8 preamble templates (6 up + 2 down) via
//!   `correlate_loaded_into`.
//! * `sync_correlation/time_domain` — the direct O(N·n) sliding dot
//!   product over the same stream and template: the pre-refactor cost
//!   model the overlap-save core displaced from the hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use netscatter_dsp::correlator::shift_template;
use netscatter_dsp::{ChirpSynthesizer, Complex64, Correlator};
use netscatter_phy::params::PhyProfile;
use std::hint::black_box;

/// A deterministic busy-looking stream: repeated shifted chirps over a
/// slow phase ramp, long enough for several overlap-save segments.
fn stream(synth: &ChirpSynthesizer, len: usize) -> Vec<Complex64> {
    let up = synth.baseline_upchirp();
    (0..len)
        .map(|i| {
            let chirp = up[i % up.len()];
            let ramp = Complex64::cis(2.0 * std::f64::consts::PI * 0.37 * (i as f64) / len as f64);
            chirp * ramp
        })
        .collect()
}

fn sync_correlation(c: &mut Criterion) {
    let params = PhyProfile::default().modulation.chirp();
    let synth = ChirpSynthesizer::new(params);
    let n = params.num_bins();
    let signal = stream(&synth, 16_384);
    let mut correlator = Correlator::new(n, n * 8).expect("detector geometry");
    let taps = shift_template(&synth, 0, false);
    let template = correlator.template(&taps).expect("template fits");
    // The preamble comb: 6 upchirp and 2 downchirp templates (one pair per
    // assigned bin in the detector; 8 here matches the comb length).
    let comb: Vec<_> = (0..8)
        .map(|i| {
            let taps = shift_template(&synth, i * 64, i >= 6);
            correlator.template(&taps).expect("template fits")
        })
        .collect();

    let mut group = c.benchmark_group("sync_correlation");
    group.bench_function("overlap_save", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            correlator
                .correlate_into(black_box(&signal), &template, &mut out)
                .unwrap();
            black_box(out.len())
        })
    });
    group.bench_function("shared_segment_8_templates", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            correlator
                .load_segment(black_box(&signal[..correlator.fft_size()]))
                .unwrap();
            let mut lags = 0usize;
            for template in &comb {
                correlator
                    .correlate_loaded_into(template, &mut out)
                    .unwrap();
                lags += out.len();
            }
            black_box(lags)
        })
    });
    group.sample_size(10);
    group.bench_function("time_domain", |b| {
        let mut out = Vec::with_capacity(signal.len() - n + 1);
        b.iter(|| {
            out.clear();
            for lag in 0..=(signal.len() - n) {
                let mut acc = Complex64::ZERO;
                for (s, t) in signal[lag..lag + n].iter().zip(&taps) {
                    acc += *s * t.conj();
                }
                out.push(acc);
            }
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, sync_correlation);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! SKIP guard-band size, power-aware vs. naive assignment, zero-padding
//! factor, self-aware power adaptation, and bandwidth aggregation vs.
//! per-band decoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter::allocator::CyclicShiftAllocator;
use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::spectrum::sidelobe_profile_db;
use netscatter_phy::aggregation::AggregatedReceiver;
use netscatter_phy::distributed::{ConcurrentDemodulator, OnOffModulator};
use netscatter_phy::params::PhyProfile;
use netscatter_sim::ber::{near_far_ber, NearFarConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn ablation_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_skip");
    group.sample_size(10);
    for skip in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(skip), &skip, |b, &skip| {
            b.iter(|| {
                let profile = sidelobe_profile_db(512, 8).unwrap();
                black_box(profile.tolerable_power_difference_db(skip))
            })
        });
    }
    group.finish();
}

fn ablation_power_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_power_aware");
    group.sample_size(10);
    let strengths: Vec<f64> = (0..254).map(|i| -85.0 - (i % 40) as f64).collect();
    group.bench_function("power_aware_reassign", |b| {
        b.iter(|| {
            let mut alloc = CyclicShiftAllocator::new(&PhyProfile::default());
            black_box(alloc.reassign_all(&strengths).unwrap())
        })
    });
    group.bench_function("incremental_assign", |b| {
        b.iter(|| {
            let mut alloc = CyclicShiftAllocator::new(&PhyProfile::default());
            for s in &strengths {
                black_box(alloc.assign(*s).unwrap());
            }
        })
    });
    group.finish();
}

fn ablation_zero_padding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_zero_padding");
    group.sample_size(10);
    let params = ChirpParams::new(500e3, 9).unwrap();
    let symbol = OnOffModulator::new(params, 100).symbol(true, 1.2e-6, 80.0, 1.0);
    for padding in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(padding), &padding, |b, &p| {
            let demod = ConcurrentDemodulator::new(params, p).unwrap();
            b.iter(|| black_box(demod.padded_spectrum(&symbol).unwrap()))
        });
    }
    group.finish();
}

fn ablation_power_adapt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_power_adapt");
    group.sample_size(10);
    // BER with the interferer at full power vs. backed off by 10 dB (the
    // self-aware power adjustment's strongest correction).
    for (name, delta) in [("no_adaptation_45dB", 45.0), ("adapted_35dB", 35.0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let cfg = NearFarConfig::paper(delta);
                black_box(near_far_ber(&mut rng, &cfg, -10.0, 50))
            })
        });
    }
    group.finish();
}

fn ablation_band_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_band_agg");
    group.sample_size(10);
    let params = ChirpParams::new(500e3, 8).unwrap();
    // One aggregate 2xBW FFT vs. two separate per-band FFTs.
    let agg = AggregatedReceiver::new(params, 2).unwrap();
    let sym = agg.band().device_symbol(1, 37, true, 1.0);
    group.bench_function("single_aggregate_fft", |b| {
        b.iter(|| black_box(agg.bin_powers(&sym).unwrap()))
    });
    let per_band = ConcurrentDemodulator::new(params, 1).unwrap();
    let narrow = OnOffModulator::new(params, 37).symbol(true, 0.0, 0.0, 1.0);
    group.bench_function("two_per_band_ffts", |b| {
        b.iter(|| {
            black_box(per_band.padded_spectrum(&narrow).unwrap());
            black_box(per_band.padded_spectrum(&narrow).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_skip,
    ablation_power_aware,
    ablation_zero_padding,
    ablation_power_adapt,
    ablation_band_aggregation
);
criterion_main!(benches);

//! netscatterd serving-path benchmarks.
//!
//! * `daemon_ingest/tcp_stream` — one complete ingest connection end to
//!   end: header line + cf32le bytes over a loopback socket at wire speed
//!   into a running daemon (engine spawn, chunked decode, NDJSON frames,
//!   end record). Dividing the stream's 36 k samples by the median gives
//!   the serving overhead on top of the raw pipeline throughput that
//!   `stream_throughput/pipeline` measures.
//! * `daemon_ingest/cf32_decode` — the byte → `Complex64` wire decode
//!   alone (the per-connection hot loop the socket reader runs).
//!
//! The ring is sized to hold the whole benchmark stream so drop-oldest
//! backpressure never fires and every iteration decodes the same frames.
//!
//! Bound: with the serve loop's 1 ms poll tick, `tcp_stream`'s
//! per-connection serving overhead (accept + header + ready + teardown,
//! everything that is not decode) is a few milliseconds. The previous
//! 20 ms tick put a 20.5 ms floor under every connection — ~1000× the
//! decode cost of this stream; the daemon test suite now pins the setup
//! path under 15 ms so a tick regression fails fast instead of showing up
//! only in this bench's trend line.

use criterion::{criterion_group, criterion_main, Criterion};
use netscatter_daemon::client::{self, Pace};
use netscatter_daemon::protocol::{self, Cf32Decoder, StreamHeader};
use netscatter_daemon::{Daemon, DaemonConfig, GatewayConfig};
use netscatter_dsp::Complex64;
use netscatter_phy::distributed::OnOffModulator;
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::PreambleBuilder;
use std::hint::black_box;

/// A clean multi-packet stream from the bin-64 device, f32-quantized.
fn wire_stream(count: usize) -> Vec<Complex64> {
    let bits = [true, false, true, true, false, false, true, true];
    let params = PhyProfile::default().modulation.chirp();
    let mut pkt = PreambleBuilder::new(params, 64).build(0.0, 0.0, 1.0);
    pkt.extend(OnOffModulator::new(params, 64).modulate_payload(&bits, 0.0, 0.0, 1.0));
    let mut stream = Vec::new();
    for i in 0..count {
        stream.extend(vec![Complex64::ZERO; 500 + 211 * i]);
        stream.extend(&pkt);
    }
    stream.extend(vec![Complex64::ZERO; 300]);
    protocol::quantize_cf32(&stream)
}

fn daemon_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon_ingest");
    group.sample_size(10);

    let samples = wire_stream(4);
    let config = GatewayConfig {
        chunk_samples: 2048,
        ring_slots: 256,
        workers: 2,
        ..GatewayConfig::new(PhyProfile::default(), vec![64, 192], 8)
    };
    let mut dconfig = DaemonConfig::new(config);
    dconfig.metrics = None;
    let daemon = Daemon::start(dconfig).expect("daemon starts");
    let header = StreamHeader {
        name: "bench".to_string(),
        sample_rate_hz: Some(500e3),
        bins: Some(vec![64, 192]),
        payload_bits: Some(8),
        detection_floor: None,
        channel: None,
        coding: None,
        fault_panic_span: None,
    };
    group.bench_function("tcp_stream", |b| {
        b.iter(|| {
            let lines =
                client::stream_samples(daemon.ingest_addr(), &header, &samples, Pace::Unlimited)
                    .expect("ingest round trip");
            black_box(lines.len())
        })
    });

    let bytes = protocol::encode_cf32le(&samples);
    group.bench_function("cf32_decode", |b| {
        b.iter(|| {
            let mut decoder = Cf32Decoder::new();
            let mut out = Vec::with_capacity(samples.len());
            // The socket reader's shape: 16 KiB pieces through the carry.
            for piece in bytes.chunks(1 << 14) {
                decoder.push(piece, &mut out);
            }
            black_box(out.len())
        })
    });
    group.finish();
    daemon.shutdown();
}

criterion_group!(benches, daemon_ingest);
criterion_main!(benches);

//! Streaming-gateway throughput: the full producer → SPSC ring → online
//! detector → decode-worker pipeline over a pre-synthesized continuous
//! stream.
//!
//! * `stream_throughput/pipeline/N` — one 0.1 s sample-level office stream
//!   (Poisson arrivals at 20 rounds/s, AWGN idle) for N ∈ {16, 64, 256}
//!   devices, replayed through `run_stream`. Dividing 50 000 samples by the
//!   reported median gives Msamples/s; over the 500 kHz sample rate that is
//!   the real-time factor `perf_snapshot` tracks in `BENCH_stream.json`.
//! * `stream_throughput/detector_idle` — the energy-gate scan alone over a
//!   noise-only stream: the cost of listening when nobody transmits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter_dsp::Complex64;
use netscatter_gateway::{run_stream, GatewayConfig, ReplaySource, StreamDetector, StreamSource};
use netscatter_phy::params::PhyProfile;
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::fullround::ChannelModel;
use netscatter_sim::stream::{ArrivalConfig, RoundArrivalSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Synthesizes one office-channel stream and its gateway config.
fn synthesize(devices: usize) -> (Vec<Complex64>, GatewayConfig) {
    let dep = Deployment::generate(
        DeploymentConfig::office(devices.max(16)),
        &mut StdRng::seed_from_u64(42),
    );
    let model = ChannelModel::office();
    let mut source = RoundArrivalSource::new(
        &dep,
        devices,
        &model,
        ArrivalConfig {
            rate_hz: 20.0,
            stream_secs: 0.1,
            payload_bits: 16,
        },
        7,
    );
    let config = GatewayConfig {
        detection_floor_fraction: Some(source.detection_floor_fraction()),
        ..GatewayConfig::new(dep.config.profile, source.assigned_bins().to_vec(), 16)
    };
    let mut samples = Vec::new();
    let mut buf = vec![Complex64::ZERO; 4096];
    loop {
        let got = source.fill(&mut buf);
        samples.extend_from_slice(&buf[..got]);
        if got < buf.len() {
            break;
        }
    }
    (samples, config)
}

fn pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_throughput");
    group.sample_size(10);
    for &devices in &[16usize, 64, 256] {
        let (samples, config) = synthesize(devices);
        group.bench_with_input(BenchmarkId::new("pipeline", devices), &devices, |b, _| {
            b.iter(|| {
                let mut source = ReplaySource::from_samples(samples.clone(), 500e3);
                let report = run_stream(&mut source, &config).unwrap();
                black_box(report.packets.len())
            })
        });
    }
    // The idle-listening cost: pure energy-gate scan, no packets.
    let idle = vec![Complex64::new(0.02, -0.01); 50_000];
    let config = GatewayConfig::new(PhyProfile::default(), vec![0, 64, 128], 16);
    group.bench_function("detector_idle", |b| {
        b.iter(|| {
            let mut det = StreamDetector::new(&config).unwrap();
            let mut out = Vec::new();
            for chunk in idle.chunks(4096) {
                det.push(chunk, &mut out);
            }
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline_throughput);
criterion_main!(benches);

//! Micro-benchmarks of the receiver primitives, including the
//! receiver-complexity claim of §3.1: the per-symbol decode cost is dominated
//! by one dechirp + FFT and grows only marginally with the number of
//! concurrent devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter::receiver::ConcurrentReceiver;
use netscatter_dsp::chirp::{ChirpParams, ChirpSynthesizer};
use netscatter_dsp::fft::Fft;
use netscatter_dsp::Complex64;
use netscatter_phy::distributed::OnOffModulator;
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::DetectedDevice;
use std::hint::black_box;

fn fft_and_dechirp(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    let params = ChirpParams::new(500e3, 9).unwrap();
    let synth = ChirpSynthesizer::new(params);
    let symbol = synth.shifted_upchirp(123);
    group.bench_function("dechirp_512", |b| {
        b.iter(|| black_box(synth.dechirp(&symbol)))
    });
    let fft = Fft::new(4096).unwrap();
    let dechirped = synth.dechirp(&symbol);
    group.bench_function("zero_padded_fft_4096", |b| {
        b.iter(|| black_box(fft.forward_zero_padded(&dechirped).unwrap()))
    });
    group.bench_function("chirp_synthesis", |b| {
        b.iter(|| black_box(synth.impaired_upchirp(200, 1.5e-6, 100.0, 0.7)))
    });
    group.finish();
}

fn receiver_complexity_vs_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("receiver_complexity");
    group.sample_size(10);
    let profile = PhyProfile::default();
    let params = profile.modulation.chirp();
    let rx = ConcurrentReceiver::new(&profile).unwrap();
    for &n_devices in &[1usize, 16, 64, 256] {
        // Superpose n devices into one payload symbol.
        let mut symbol = vec![Complex64::ZERO; params.num_bins()];
        let mut detected = Vec::new();
        for i in 0..n_devices {
            let bin = (i * 2) % params.num_bins();
            let s = OnOffModulator::new(params, bin).symbol(true, 0.0, 0.0, 1.0);
            for (acc, x) in symbol.iter_mut().zip(s.iter()) {
                *acc += *x;
            }
            detected.push(DetectedDevice {
                chirp_bin: bin,
                average_power: (params.num_bins() as f64).powi(2),
                observed_bin: bin as f64,
            });
        }
        group.bench_with_input(
            BenchmarkId::new("decode_payload_symbol", n_devices),
            &n_devices,
            |b, _| b.iter(|| black_box(rx.decode_payload_symbol(&symbol, &detected).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, fft_and_dechirp, receiver_complexity_vs_devices);
criterion_main!(benches);

//! Micro-benchmarks of the receiver primitives, including the
//! receiver-complexity claim of §3.1: the per-symbol decode cost is dominated
//! by one dechirp + FFT and grows only marginally with the number of
//! concurrent devices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter::receiver::ConcurrentReceiver;
use netscatter_dsp::chirp::{ChirpParams, ChirpSynthesizer};
use netscatter_dsp::fft::Fft;
use netscatter_dsp::Complex64;
use netscatter_phy::distributed::{DemodWorkspace, OnOffModulator};
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::DetectedDevice;
use std::hint::black_box;

fn fft_and_dechirp(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    let params = ChirpParams::new(500e3, 9).unwrap();
    let synth = ChirpSynthesizer::new(params);
    let symbol = synth.shifted_upchirp(123);
    let mut scratch: Vec<Complex64> = Vec::new();
    group.bench_function("dechirp_512", |b| {
        b.iter(|| {
            synth.dechirp_into(&symbol, &mut scratch);
            black_box(scratch.len())
        })
    });
    let fft = Fft::new(4096).unwrap();
    let dechirped = synth.dechirp(&symbol);
    let mut spectrum: Vec<Complex64> = Vec::new();
    group.bench_function("zero_padded_fft_4096", |b| {
        b.iter(|| {
            fft.forward_zero_padded_into(&dechirped, &mut spectrum)
                .unwrap();
            black_box(spectrum[0])
        })
    });
    group.bench_function("chirp_synthesis", |b| {
        b.iter(|| {
            synth.impaired_upchirp_into(200, 1.5e-6, 100.0, 0.7, &mut scratch);
            black_box(scratch[0])
        })
    });
    group.finish();
}

fn receiver_complexity_vs_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("receiver_complexity");
    group.sample_size(10);
    let profile = PhyProfile::default();
    let params = profile.modulation.chirp();
    let rx = ConcurrentReceiver::new(&profile).unwrap();
    let mut ws = DemodWorkspace::new();
    let mut bits: Vec<bool> = Vec::new();
    for &n_devices in &[1usize, 16, 64, 256] {
        // Superpose n devices into one payload symbol, in place.
        let mut symbol = vec![Complex64::ZERO; params.num_bins()];
        let mut detected = Vec::new();
        for i in 0..n_devices {
            let bin = (i * 2) % params.num_bins();
            OnOffModulator::new(params, bin).add_symbol(true, 0.0, 0.0, 1.0, &mut symbol);
            detected.push(DetectedDevice {
                chirp_bin: bin,
                average_power: (params.num_bins() as f64).powi(2),
                observed_bin: bin as f64,
            });
        }
        group.bench_with_input(
            BenchmarkId::new("decode_payload_symbol", n_devices),
            &n_devices,
            |b, _| {
                b.iter(|| {
                    rx.decode_payload_symbol_with(&symbol, &detected, &mut ws, &mut bits)
                        .unwrap();
                    black_box(bits.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fft_and_dechirp, receiver_complexity_vs_devices);
criterion_main!(benches);

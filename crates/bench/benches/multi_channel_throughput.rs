//! Sharded multi-channel gateway throughput: K independent 500 kHz
//! channels replayed concurrently through `run_multi_stream`.
//!
//! * `multi_channel_throughput/sharded/K` — K pre-synthesized 0.1 s
//!   sample-level office streams (distinct arrival realizations, same
//!   64-device population) through the `MultiChannelEngine`. Dividing
//!   K × 50 000 samples by the reported median gives the aggregate
//!   Msamples/s `perf_snapshot` tracks in `BENCH_stream.json`'s
//!   `multi_channel` table; on a single core the aggregate is flat in K
//!   (the shards contend for the same CPU), while on K-core hardware it
//!   scales toward linear.
//! * `multi_channel_throughput/sequential/K` — the same K streams decoded
//!   one after another through single-channel `run_stream` sessions: the
//!   no-sharding baseline. Comparing the two isolates the sharding
//!   overhead (ring + per-channel detector threads) from the decode cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netscatter_dsp::Complex64;
use netscatter_gateway::{run_multi_stream, run_stream, GatewayConfig, ReplaySource, StreamSource};
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::fullround::ChannelModel;
use netscatter_sim::stream::{ArrivalConfig, RoundArrivalSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Synthesizes one office-channel stream for `devices` devices under
/// arrival seed `seed`, plus the gateway config it decodes under.
fn synthesize(devices: usize, seed: u64) -> (Vec<Complex64>, GatewayConfig) {
    let dep = Deployment::generate(
        DeploymentConfig::office(devices.max(16)),
        &mut StdRng::seed_from_u64(42),
    );
    let model = ChannelModel::office();
    let mut source = RoundArrivalSource::new(
        &dep,
        devices,
        &model,
        ArrivalConfig {
            rate_hz: 20.0,
            stream_secs: 0.1,
            payload_bits: 16,
        },
        seed,
    );
    let config = GatewayConfig {
        detection_floor_fraction: Some(source.detection_floor_fraction()),
        workers: 2,
        ..GatewayConfig::new(dep.config.profile, source.assigned_bins().to_vec(), 16)
    };
    let mut samples = Vec::new();
    let mut buf = vec![Complex64::ZERO; 4096];
    loop {
        let got = source.fill(&mut buf);
        samples.extend_from_slice(&buf[..got]);
        if got < buf.len() {
            break;
        }
    }
    (samples, config)
}

fn multi_channel_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_channel_throughput");
    group.sample_size(10);
    for &channels in &[1usize, 2, 4] {
        // One stream per channel: same population, disjoint Poisson
        // arrival realizations — the workload of K RF channels of the
        // same deployment.
        let streams: Vec<(Vec<Complex64>, GatewayConfig)> = (0..channels)
            .map(|ch| synthesize(64, 7 + ch as u64))
            .collect();
        let config = streams[0].1.clone();
        group.bench_with_input(BenchmarkId::new("sharded", channels), &channels, |b, _| {
            b.iter(|| {
                let mut sources: Vec<Box<dyn StreamSource>> = streams
                    .iter()
                    .map(|(samples, _)| {
                        Box::new(ReplaySource::from_samples(samples.clone(), 500e3))
                            as Box<dyn StreamSource>
                    })
                    .collect();
                let report = run_multi_stream(&mut sources, &config).unwrap();
                black_box(report.total_packets())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sequential", channels),
            &channels,
            |b, _| {
                b.iter(|| {
                    let mut packets = 0usize;
                    for (samples, _) in &streams {
                        let mut source = ReplaySource::from_samples(samples.clone(), 500e3);
                        packets += run_stream(&mut source, &config).unwrap().packets.len();
                    }
                    black_box(packets)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, multi_channel_throughput);
criterion_main!(benches);

//! Benchmark support crate. The interesting content is in `benches/`: one
//! Criterion group per table/figure of the paper plus ablation and
//! micro-benchmarks. This library only re-exports the workspace crates so
//! the bench targets have a single import point.

#![forbid(unsafe_code)]

pub use netscatter;
pub use netscatter_baselines as baselines;
pub use netscatter_channel as channel;
pub use netscatter_dsp as dsp;
pub use netscatter_phy as phy;
pub use netscatter_sim as sim;

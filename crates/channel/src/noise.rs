//! Additive white Gaussian noise (AWGN) generation and SNR-controlled
//! injection.
//!
//! CSS systems, and NetScatter in particular, are designed to decode signals
//! *below* the thermal noise floor: Table 1 lists sensitivities down to
//! −123 dBm on a 500 kHz channel whose noise floor is ≈ −111 dBm. Every BER
//! and network experiment therefore revolves around adding complex Gaussian
//! noise with a precisely controlled power.

use netscatter_dsp::complex::mean_power;
use netscatter_dsp::units::{
    db_to_linear, dbm_to_watts, thermal_noise_watts, DEFAULT_NOISE_FIGURE_DB,
};
use netscatter_dsp::Complex64;
use rand::Rng;

/// Draws one standard normal sample using the Box–Muller transform.
///
/// `rand` alone (without `rand_distr`) only provides uniform deviates; this
/// keeps the dependency surface minimal.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a zero-mean complex Gaussian sample with total variance
/// (power) `power`: each quadrature has variance `power / 2`.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, power: f64) -> Complex64 {
    let sigma = (power / 2.0).max(0.0).sqrt();
    Complex64::new(sigma * standard_normal(rng), sigma * standard_normal(rng))
}

/// A complex AWGN source with a fixed noise power per sample.
#[derive(Debug, Clone, Copy)]
pub struct AwgnChannel {
    noise_power: f64,
}

impl AwgnChannel {
    /// Creates an AWGN source with the given linear noise power per complex
    /// sample (variance split evenly across I and Q).
    pub fn with_noise_power(noise_power: f64) -> Self {
        Self {
            noise_power: noise_power.max(0.0),
        }
    }

    /// Creates an AWGN source at the thermal noise floor of a receiver with
    /// the given bandwidth and noise figure (`kTBF`).
    pub fn thermal(bandwidth_hz: f64, noise_figure_db: f64) -> Self {
        Self::with_noise_power(thermal_noise_watts(bandwidth_hz, noise_figure_db))
    }

    /// Creates an AWGN source at the default thermal floor used across the
    /// workspace (6 dB noise figure).
    pub fn thermal_default(bandwidth_hz: f64) -> Self {
        Self::thermal(bandwidth_hz, DEFAULT_NOISE_FIGURE_DB)
    }

    /// The configured noise power (linear, per complex sample).
    pub fn noise_power(&self) -> f64 {
        self.noise_power
    }

    /// The configured noise power in dBm.
    pub fn noise_power_dbm(&self) -> f64 {
        netscatter_dsp::watts_to_dbm(self.noise_power)
    }

    /// Generates `n` noise samples.
    pub fn samples<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|_| complex_gaussian(rng, self.noise_power))
            .collect()
    }

    /// Adds noise to a signal in place.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, signal: &mut [Complex64]) {
        for s in signal.iter_mut() {
            *s += complex_gaussian(rng, self.noise_power);
        }
    }

    /// Returns a noisy copy of `signal`.
    pub fn corrupt<R: Rng + ?Sized>(&self, rng: &mut R, signal: &[Complex64]) -> Vec<Complex64> {
        let mut out = signal.to_vec();
        self.apply(rng, &mut out);
        out
    }

    /// The SNR (dB) that a signal received at `signal_power_dbm` would have
    /// against this noise source.
    pub fn snr_db_for_signal_dbm(&self, signal_power_dbm: f64) -> f64 {
        netscatter_dsp::linear_to_db(dbm_to_watts(signal_power_dbm) / self.noise_power)
    }
}

/// Returns a copy of `signal` with AWGN added such that the resulting
/// per-sample SNR equals `snr_db`, measured against the *actual* mean power
/// of `signal`.
///
/// This is the controlled-SNR path used by BER experiments such as Fig. 12,
/// where the x-axis is the SNR of the device under test.
pub fn add_awgn_snr<R: Rng + ?Sized>(
    rng: &mut R,
    signal: &[Complex64],
    snr_db: f64,
) -> Vec<Complex64> {
    let sig_power = mean_power(signal);
    if sig_power == 0.0 {
        return signal.to_vec();
    }
    let noise_power = sig_power / db_to_linear(snr_db);
    AwgnChannel::with_noise_power(noise_power).corrupt(rng, signal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_dsp::stats::{mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&samples).abs() < 0.03);
        assert!((variance(&samples) - 1.0).abs() < 0.05);
    }

    #[test]
    fn complex_gaussian_power_matches_request() {
        let mut rng = StdRng::seed_from_u64(2);
        for target in [1e-12, 1.0, 5.0] {
            let samples: Vec<Complex64> = (0..20_000)
                .map(|_| complex_gaussian(&mut rng, target))
                .collect();
            let measured = mean_power(&samples);
            assert!(
                (measured - target).abs() / target < 0.05,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn thermal_channel_noise_power_matches_ktbf() {
        let ch = AwgnChannel::thermal(500e3, 6.0);
        let expected = thermal_noise_watts(500e3, 6.0);
        assert!((ch.noise_power() - expected).abs() < 1e-30);
        // dBm value around -111 dBm for 500 kHz / NF 6 dB.
        assert!((ch.noise_power_dbm() + 111.0).abs() < 1.0);
    }

    #[test]
    fn corrupt_changes_signal_but_preserves_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let signal = vec![Complex64::ONE; 256];
        let ch = AwgnChannel::with_noise_power(0.1);
        let noisy = ch.corrupt(&mut rng, &signal);
        assert_eq!(noisy.len(), 256);
        assert!(noisy
            .iter()
            .zip(&signal)
            .any(|(a, b)| (*a - *b).abs() > 1e-6));
    }

    #[test]
    fn zero_noise_power_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let signal = vec![Complex64::new(0.3, -0.7); 64];
        let ch = AwgnChannel::with_noise_power(0.0);
        let noisy = ch.corrupt(&mut rng, &signal);
        for (a, b) in noisy.iter().zip(&signal) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn add_awgn_snr_achieves_requested_snr() {
        let mut rng = StdRng::seed_from_u64(5);
        let signal: Vec<Complex64> = (0..50_000)
            .map(|i| Complex64::cis(i as f64 * 0.01))
            .collect();
        for snr_db in [-10.0, 0.0, 10.0] {
            let noisy = add_awgn_snr(&mut rng, &signal, snr_db);
            let noise: Vec<Complex64> = noisy.iter().zip(&signal).map(|(a, b)| *a - *b).collect();
            let measured_snr =
                netscatter_dsp::linear_to_db(mean_power(&signal) / mean_power(&noise));
            assert!(
                (measured_snr - snr_db).abs() < 0.3,
                "requested {snr_db} dB, measured {measured_snr} dB"
            );
        }
    }

    #[test]
    fn add_awgn_snr_on_silent_signal_is_noop() {
        let mut rng = StdRng::seed_from_u64(6);
        let signal = vec![Complex64::ZERO; 16];
        let noisy = add_awgn_snr(&mut rng, &signal, 10.0);
        assert_eq!(noisy, signal);
    }

    #[test]
    fn snr_for_signal_dbm_is_consistent() {
        let ch = AwgnChannel::thermal_default(500e3);
        let floor = ch.noise_power_dbm();
        let snr = ch.snr_db_for_signal_dbm(floor + 7.0);
        assert!((snr - 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_noise_power_is_clamped() {
        let ch = AwgnChannel::with_noise_power(-1.0);
        assert_eq!(ch.noise_power(), 0.0);
    }
}

//! Doppler shifts caused by device mobility.
//!
//! Fig. 15(a) of the paper shows that even at 5 m/s the Doppler-induced FFT
//! bin change stays well below one bin: at a 900 MHz carrier, 10 m/s produces
//! only 30 Hz of shift versus the ≈976 Hz bin spacing of the
//! (BW = 500 kHz, SF = 9) configuration. For a backscatter tag the reflection
//! doubles the Doppler shift (the wave traverses the moving path twice),
//! which is still negligible; both the one-way and round-trip variants are
//! provided.

use netscatter_dsp::units::SPEED_OF_LIGHT;
use netscatter_dsp::Complex64;

/// One-way Doppler shift in hertz for a radial speed (m/s) at a carrier
/// frequency (Hz).
pub fn doppler_shift_hz(speed_mps: f64, carrier_hz: f64) -> f64 {
    speed_mps / SPEED_OF_LIGHT * carrier_hz
}

/// Round-trip Doppler shift seen by a monostatic backscatter reader: the
/// moving tag shifts both the illuminating wave and the reflected wave.
pub fn backscatter_doppler_shift_hz(speed_mps: f64, carrier_hz: f64) -> f64 {
    2.0 * doppler_shift_hz(speed_mps, carrier_hz)
}

/// Applies a frequency shift of `shift_hz` to a baseband signal sampled at
/// `sample_rate_hz`, returning the shifted copy.
pub fn apply_frequency_shift(
    signal: &[Complex64],
    shift_hz: f64,
    sample_rate_hz: f64,
) -> Vec<Complex64> {
    signal
        .iter()
        .enumerate()
        .map(|(n, s)| {
            *s * Complex64::cis(2.0 * std::f64::consts::PI * shift_hz * n as f64 / sample_rate_hz)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_dsp::chirp::ChirpParams;

    #[test]
    fn paper_example_10mps_at_900mhz_is_30hz() {
        let shift = doppler_shift_hz(10.0, 900e6);
        assert!((shift - 30.0).abs() < 0.1, "got {shift} Hz");
    }

    #[test]
    fn backscatter_doppler_is_twice_one_way() {
        assert!(
            (backscatter_doppler_shift_hz(3.0, 900e6) - 2.0 * doppler_shift_hz(3.0, 900e6)).abs()
                < 1e-12
        );
    }

    #[test]
    fn doppler_stays_below_one_fft_bin_for_pedestrian_speeds() {
        // Fig. 15(a): static, 1, 3, 5 m/s all stay far below one bin.
        let params = ChirpParams::new(500e3, 9).unwrap();
        for speed in [0.0, 1.0, 3.0, 5.0, 10.0] {
            let shift = backscatter_doppler_shift_hz(speed, 900e6);
            let bins = params.frequency_offset_to_bins(shift);
            assert!(bins < 0.1, "{speed} m/s produced {bins} bins of shift");
        }
    }

    #[test]
    fn zero_speed_gives_zero_shift() {
        assert_eq!(doppler_shift_hz(0.0, 900e6), 0.0);
        let sig = vec![Complex64::ONE; 8];
        assert_eq!(apply_frequency_shift(&sig, 0.0, 500e3), sig);
    }

    #[test]
    fn frequency_shift_moves_tone_bin() {
        // A DC signal shifted by 2 bins of a 64-point FFT lands in bin 2.
        let n = 64;
        let fs = 64.0;
        let sig = vec![Complex64::ONE; n];
        let shifted = apply_frequency_shift(&sig, 2.0, fs);
        let spec = netscatter_dsp::fft::fft(&shifted).unwrap();
        let peak = (0..n)
            .max_by(|&a, &b| spec[a].abs().total_cmp(&spec[b].abs()))
            .unwrap();
        assert_eq!(peak, 2);
    }

    #[test]
    fn negative_speed_gives_negative_shift() {
        assert!(doppler_shift_hz(-5.0, 900e6) < 0.0);
    }
}

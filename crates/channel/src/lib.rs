//! # netscatter-channel
//!
//! Wireless-channel substrate for the NetScatter reproduction. The paper
//! evaluates its protocol on a physical 256-device deployment in an office
//! building; this crate supplies the simulated equivalents of everything the
//! radio environment contributed to those measurements:
//!
//! * [`noise`] — complex AWGN at a calibrated thermal noise floor, and
//!   SNR-controlled noise injection.
//! * [`pathloss`] — log-distance path loss with wall attenuation and
//!   log-normal shadowing, plus the *round-trip* backscatter link budget
//!   (AP → tag → AP) and the one-way downlink budget used by the tag's
//!   envelope detector.
//! * [`fading`] — block fading and a temporal fading process that reproduces
//!   the SNR variance the paper measures over 30 minutes of people walking
//!   around an office (Fig. 9).
//! * [`multipath`] — tapped-delay-line multipath with an exponential power
//!   delay profile (indoor delay spreads of 50–300 ns, §3.2.1).
//! * [`doppler`] — Doppler shifts for device mobility (Fig. 15a).
//! * [`impairments`] — per-device hardware imperfections: MCU/FPGA hardware
//!   delay jitter (§3.2.1/§4.2) and crystal-driven carrier frequency offsets
//!   (§3.2.2, Fig. 14a), including the radio-vs-backscatter scaling argument
//!   of §2.2.
//! * [`geometry`] — 2-D positions and the office floorplan primitives used
//!   by the deployment generator.
//!
//! All stochastic components take an explicit [`rand::Rng`] so simulations
//! are reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doppler;
pub mod fading;
pub mod geometry;
pub mod impairments;
pub mod multipath;
pub mod noise;
pub mod pathloss;

pub use geometry::Position;
pub use impairments::{CfoModel, DeviceImpairments, HardwareDelayModel, ImpairmentModel};
pub use noise::{add_awgn_snr, AwgnChannel};
pub use pathloss::{IndoorPathLoss, LinkBudget};

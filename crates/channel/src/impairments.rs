//! Per-device hardware imperfections: timing jitter and carrier frequency
//! offsets.
//!
//! These two impairments drive the two central design decisions of the paper:
//!
//! * **Hardware delay variation** (§3.2.1, §4.2). A backscatter tag's
//!   envelope detector plus MCU/FPGA pipeline introduces a packet-to-packet
//!   delay that the paper measures at up to ≈3.5 µs — more than one FFT bin
//!   at 500 kHz — motivating the `SKIP` empty-bin guard band.
//! * **Crystal frequency offsets** (§2.2, §3.2.2, Fig. 4, Fig. 14a). A
//!   crystal tolerance of up to 100 ppm produces kHz-scale offsets on a
//!   900 MHz *radio* carrier (what Choir exploits) but only ~hundreds of Hz
//!   on the few-MHz baseband a backscatter tag synthesizes — the paper
//!   measures < 150 Hz, under a sixth of an FFT bin, which is why Choir's
//!   fractional-bin trick cannot separate backscatter devices.

use crate::noise::standard_normal;
use rand::Rng;

/// Model of the per-packet hardware (MCU/FPGA/envelope-detector) delay of a
/// backscatter tag responding to an AP query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareDelayModel {
    /// Mean response delay in seconds.
    pub mean_s: f64,
    /// Standard deviation of the *device-to-device* mean delay in seconds
    /// (pipeline length varies with manufacturing, firmware path, etc.).
    pub sigma_s: f64,
    /// Standard deviation of the *packet-to-packet* jitter around one
    /// device's mean delay, in seconds. Much smaller than `sigma_s`: a given
    /// tag's pipeline length is essentially fixed and only clock sampling
    /// jitter varies per packet (§4.2).
    pub jitter_sigma_s: f64,
    /// Hard bound on the delay (values are clamped to `0..=max_s`).
    pub max_s: f64,
}

impl HardwareDelayModel {
    /// Parameters calibrated to the paper's measurement: per-packet delays of
    /// up to ≈3.5 µs with most mass within ±1 bin (2 µs at 500 kHz).
    pub fn cots_backscatter() -> Self {
        Self {
            mean_s: 1.6e-6,
            sigma_s: 0.7e-6,
            jitter_sigma_s: 0.25e-6,
            max_s: 3.5e-6,
        }
    }

    /// A much tighter delay model representing an active radio with a fast
    /// clock (used when modelling Choir's LoRa radios for Fig. 4).
    pub fn active_radio() -> Self {
        Self {
            mean_s: 0.2e-6,
            sigma_s: 0.1e-6,
            jitter_sigma_s: 0.05e-6,
            max_s: 0.5e-6,
        }
    }

    /// Draws one device's mean hardware delay in seconds (device-to-device
    /// distribution).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mean_s + self.sigma_s * standard_normal(rng)).clamp(0.0, self.max_s)
    }

    /// Draws one packet's delay for a device whose mean delay is `mean_s`:
    /// the device's static delay plus small per-packet jitter.
    pub fn sample_around<R: Rng + ?Sized>(&self, rng: &mut R, mean_s: f64) -> f64 {
        (mean_s + self.jitter_sigma_s * standard_normal(rng)).clamp(0.0, self.max_s)
    }
}

/// Model of a device's residual carrier-frequency offset (CFO).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfoModel {
    /// Crystal tolerance in parts per million.
    pub crystal_tolerance_ppm: f64,
    /// Frequency the crystal error scales with: the synthesized baseband
    /// offset for a backscatter tag (a few MHz) or the RF carrier for an
    /// active radio (900 MHz).
    pub synthesized_frequency_hz: f64,
    /// Per-packet drift standard deviation, in hertz, on top of the static
    /// per-device offset (temperature, supply ripple).
    pub per_packet_drift_hz: f64,
}

impl CfoModel {
    /// A backscatter tag shifting the carrier by 3 MHz (the paper's
    /// implementation) with a ±25 ppm crystal: static offsets of at most
    /// ±75 Hz plus a small per-packet drift, matching the < 150 Hz spread of
    /// Fig. 14(a).
    pub fn backscatter_tag() -> Self {
        Self {
            crystal_tolerance_ppm: 25.0,
            synthesized_frequency_hz: 3e6,
            per_packet_drift_hz: 15.0,
        }
    }

    /// An active LoRa radio synthesizing its 900 MHz carrier from a ±10 ppm
    /// crystal: static offsets of up to ±9 kHz — many FFT bins — which is the
    /// diversity Choir relies on (§2.2).
    pub fn active_radio_900mhz() -> Self {
        Self {
            crystal_tolerance_ppm: 10.0,
            synthesized_frequency_hz: 900e6,
            per_packet_drift_hz: 200.0,
        }
    }

    /// Maximum static offset magnitude in hertz implied by the tolerance.
    pub fn max_static_offset_hz(&self) -> f64 {
        self.crystal_tolerance_ppm * 1e-6 * self.synthesized_frequency_hz
    }

    /// Draws the static (per-device) frequency offset in hertz, uniformly
    /// within the crystal tolerance.
    pub fn sample_device_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let max = self.max_static_offset_hz();
        if max == 0.0 {
            0.0
        } else {
            rng.gen_range(-max..=max)
        }
    }

    /// Draws the per-packet drift around the device's static offset, in hertz.
    pub fn sample_packet_drift<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.per_packet_drift_hz * standard_normal(rng)
    }
}

/// The static imperfections of one manufactured device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceImpairments {
    /// The device's static carrier frequency offset in hertz.
    pub static_cfo_hz: f64,
    /// The device's mean hardware response delay in seconds.
    pub mean_hardware_delay_s: f64,
}

/// The impairments drawn for one specific packet of one device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PacketImpairments {
    /// Total timing offset for this packet in seconds (hardware delay plus
    /// any propagation/multipath excess delay the caller folds in).
    pub timing_offset_s: f64,
    /// Total residual frequency offset for this packet in hertz.
    pub freq_offset_hz: f64,
}

/// Factory that draws per-device and per-packet impairments for a population
/// of devices of the same class (backscatter tags or active radios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentModel {
    /// Hardware delay model shared by the population.
    pub delay: HardwareDelayModel,
    /// CFO model shared by the population.
    pub cfo: CfoModel,
}

impl ImpairmentModel {
    /// The backscatter-tag population used throughout the evaluation.
    pub fn cots_backscatter() -> Self {
        Self {
            delay: HardwareDelayModel::cots_backscatter(),
            cfo: CfoModel::backscatter_tag(),
        }
    }

    /// The active-LoRa-radio population used for the Choir comparison (Fig. 4).
    pub fn active_radio() -> Self {
        Self {
            delay: HardwareDelayModel::active_radio(),
            cfo: CfoModel::active_radio_900mhz(),
        }
    }

    /// Draws the static imperfections of a newly manufactured device.
    pub fn sample_device<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceImpairments {
        DeviceImpairments {
            static_cfo_hz: self.cfo.sample_device_offset(rng),
            mean_hardware_delay_s: self.delay.sample(rng),
        }
    }

    /// Draws the impairments of one packet transmitted by `device`.
    ///
    /// Both impairments cluster around the device's statics: the hardware
    /// delay is the device's mean pipeline delay plus small per-packet
    /// sampling jitter (§4.2), and the CFO is the device's static offset
    /// plus a small drift.
    pub fn sample_packet<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        device: &DeviceImpairments,
    ) -> PacketImpairments {
        PacketImpairments {
            timing_offset_s: self.delay.sample_around(rng, device.mean_hardware_delay_s),
            freq_offset_hz: device.static_cfo_hz + self.cfo.sample_packet_drift(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_dsp::chirp::ChirpParams;
    use netscatter_dsp::stats::EmpiricalCdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hardware_delay_respects_bounds() {
        let model = HardwareDelayModel::cots_backscatter();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50_000 {
            let d = model.sample(&mut rng);
            assert!((0.0..=3.5e-6).contains(&d));
        }
    }

    #[test]
    fn hardware_delay_can_exceed_one_fft_bin_at_500khz() {
        // The motivation for SKIP: delays beyond 2 µs (one bin at 500 kHz)
        // must actually occur.
        let model = HardwareDelayModel::cots_backscatter();
        let params = ChirpParams::new(500e3, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let over_one_bin = (0..50_000)
            .filter(|_| params.timing_offset_to_bins(model.sample(&mut rng)) > 1.0)
            .count();
        assert!(
            over_one_bin > 1000,
            "expected a meaningful fraction above one bin, got {over_one_bin}"
        );
    }

    #[test]
    fn backscatter_cfo_stays_under_150hz_static() {
        let model = CfoModel::backscatter_tag();
        assert!(model.max_static_offset_hz() <= 150.0);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            assert!(model.sample_device_offset(&mut rng).abs() <= 150.0);
        }
    }

    #[test]
    fn backscatter_cfo_is_under_a_sixth_of_a_bin() {
        // Fig. 14(a): < 150 Hz ≈ 0.15 bins at BW=500 kHz, SF=9.
        let params = ChirpParams::new(500e3, 9).unwrap();
        let model = CfoModel::backscatter_tag();
        let bins = params.frequency_offset_to_bins(model.max_static_offset_hz());
        assert!(bins < 0.16, "static CFO spans {bins} bins");
    }

    #[test]
    fn radio_cfo_spans_many_bins_backscatter_does_not() {
        // §2.2: the radio population must spread over multiple FFT bins while
        // the backscatter population stays within a fraction of one bin.
        let params = ChirpParams::new(500e3, 9).unwrap();
        let radio = CfoModel::active_radio_900mhz();
        let tag = CfoModel::backscatter_tag();
        assert!(params.frequency_offset_to_bins(radio.max_static_offset_hz()) > 3.0);
        assert!(params.frequency_offset_to_bins(tag.max_static_offset_hz()) < 0.2);
    }

    #[test]
    fn per_packet_impairments_cluster_around_device_statics() {
        let model = ImpairmentModel::cots_backscatter();
        let mut rng = StdRng::seed_from_u64(24);
        let device = model.sample_device(&mut rng);
        let packets: Vec<PacketImpairments> = (0..5_000)
            .map(|_| model.sample_packet(&mut rng, &device))
            .collect();
        let cdf = EmpiricalCdf::from_samples(packets.iter().map(|p| p.freq_offset_hz).collect());
        // Median close to the static CFO, spread governed by the drift term.
        assert!((cdf.median() - device.static_cfo_hz).abs() < 5.0);
        assert!(cdf.quantile(0.99) - cdf.quantile(0.01) < 8.0 * model.cfo.per_packet_drift_hz);
        // Timing clusters around the device's mean pipeline delay, with the
        // small per-packet jitter — not a fresh population draw per packet.
        let timing =
            EmpiricalCdf::from_samples(packets.iter().map(|p| p.timing_offset_s).collect());
        assert!(
            (timing.median() - device.mean_hardware_delay_s).abs() < model.delay.jitter_sigma_s
        );
        assert!(
            timing.quantile(0.99) - timing.quantile(0.01) < 8.0 * model.delay.jitter_sigma_s,
            "per-packet timing spread should be jitter-sized"
        );
    }

    #[test]
    fn packet_timing_offsets_are_always_positive_and_bounded() {
        let model = ImpairmentModel::cots_backscatter();
        let mut rng = StdRng::seed_from_u64(25);
        let device = model.sample_device(&mut rng);
        for _ in 0..10_000 {
            let p = model.sample_packet(&mut rng, &device);
            assert!(p.timing_offset_s >= 0.0 && p.timing_offset_s <= 3.5e-6);
        }
    }

    #[test]
    fn zero_tolerance_crystal_has_zero_offset() {
        let model = CfoModel {
            crystal_tolerance_ppm: 0.0,
            synthesized_frequency_hz: 3e6,
            per_packet_drift_hz: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(26);
        assert_eq!(model.sample_device_offset(&mut rng), 0.0);
        assert_eq!(model.sample_packet_drift(&mut rng), 0.0);
    }
}

//! Small-scale fading: block fading per packet and a temporal process that
//! reproduces the SNR variation the paper measures in a busy office.
//!
//! Fig. 9 of the paper plots the CDF of per-device SNR variation over 30
//! minutes while people walk around; the observed deviations stay within
//! roughly ±5 dB. The fine-grained power-adaptation mechanism (§3.2.3) exists
//! to track exactly this process, so the simulator needs a generator with the
//! same character: temporally correlated, zero-mean in dB, bounded spread.

use crate::noise::standard_normal;
use netscatter_dsp::units::{db_to_linear, linear_to_db};
use rand::Rng;

/// Per-packet block fading models for the backscatter channel gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockFading {
    /// No fading: the channel gain is always exactly the median.
    None,
    /// Rayleigh fading: power gain is exponentially distributed with unit
    /// mean (no line-of-sight component).
    Rayleigh,
    /// Rician fading with the given K-factor (linear ratio of line-of-sight
    /// to scattered power). Indoor line-of-sight links are typically K ≈ 3–10.
    Rician {
        /// Ratio of specular to diffuse power (linear).
        k_factor: f64,
    },
}

impl BlockFading {
    /// Draws a linear *power* gain with unit mean.
    pub fn sample_power_gain<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            BlockFading::None => 1.0,
            BlockFading::Rayleigh => {
                // |h|^2 with h complex Gaussian: exponential(1).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln()
            }
            BlockFading::Rician { k_factor } => {
                let k = k_factor.max(0.0);
                // h = sqrt(K/(K+1)) + CN(0, 1/(K+1)); power normalized to unit mean.
                let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
                let los = (k / (k + 1.0)).sqrt();
                let re = los + sigma * standard_normal(rng);
                let im = sigma * standard_normal(rng);
                re * re + im * im
            }
        }
    }

    /// Draws a power gain expressed in dB.
    pub fn sample_power_gain_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        linear_to_db(self.sample_power_gain(rng))
    }
}

/// A first-order Gauss–Markov process over the *dB-domain* SNR deviation of
/// one device, modelling slow environmental fading (people moving, doors
/// opening) between successive query rounds.
///
/// `x[t+1] = ρ·x[t] + √(1−ρ²)·σ·w[t]` with `w ~ N(0,1)`, so the stationary
/// distribution is `N(0, σ²)` regardless of the correlation coefficient.
#[derive(Debug, Clone, Copy)]
pub struct TemporalFading {
    /// Stationary standard deviation of the SNR deviation, in dB.
    pub sigma_db: f64,
    /// Correlation between consecutive steps (0 = white, →1 = frozen).
    pub correlation: f64,
    state_db: f64,
}

impl TemporalFading {
    /// Creates a process with the given stationary deviation and step-to-step
    /// correlation, starting at 0 dB deviation.
    pub fn new(sigma_db: f64, correlation: f64) -> Self {
        Self {
            sigma_db: sigma_db.max(0.0),
            correlation: correlation.clamp(0.0, 0.9999),
            state_db: 0.0,
        }
    }

    /// The office-environment parameters used for the Fig. 9 reproduction:
    /// σ = 1.8 dB with strong step-to-step correlation, which keeps the
    /// observed deviations within roughly ±5 dB as in the paper.
    pub fn office_default() -> Self {
        Self::new(1.8, 0.95)
    }

    /// Current SNR deviation from the median, in dB.
    pub fn deviation_db(&self) -> f64 {
        self.state_db
    }

    /// Current deviation as a linear power factor.
    pub fn power_factor(&self) -> f64 {
        db_to_linear(self.state_db)
    }

    /// Advances the process by one step and returns the new deviation in dB.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let innovation = (1.0 - self.correlation * self.correlation).sqrt() * self.sigma_db;
        self.state_db = self.correlation * self.state_db + innovation * standard_normal(rng);
        self.state_db
    }

    /// Generates a series of `n` consecutive deviations (dB).
    pub fn series<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.step(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_dsp::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_fading_is_unit_gain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(BlockFading::None.sample_power_gain(&mut rng), 1.0);
        }
        assert_eq!(BlockFading::None.sample_power_gain_db(&mut rng), 0.0);
    }

    #[test]
    fn rayleigh_power_gain_has_unit_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| BlockFading::Rayleigh.sample_power_gain(&mut rng))
            .collect();
        assert!((mean(&samples) - 1.0).abs() < 0.03);
        // Exponential(1) has unit variance too.
        assert!((netscatter_dsp::stats::variance(&samples) - 1.0).abs() < 0.1);
    }

    #[test]
    fn rician_power_gain_has_unit_mean_and_less_variance_than_rayleigh() {
        let mut rng = StdRng::seed_from_u64(3);
        let fading = BlockFading::Rician { k_factor: 6.0 };
        let samples: Vec<f64> = (0..50_000)
            .map(|_| fading.sample_power_gain(&mut rng))
            .collect();
        assert!((mean(&samples) - 1.0).abs() < 0.03);
        assert!(netscatter_dsp::stats::variance(&samples) < 0.5);
    }

    #[test]
    fn rician_with_zero_k_behaves_like_rayleigh() {
        let mut rng = StdRng::seed_from_u64(4);
        let fading = BlockFading::Rician { k_factor: 0.0 };
        let samples: Vec<f64> = (0..50_000)
            .map(|_| fading.sample_power_gain(&mut rng))
            .collect();
        assert!((mean(&samples) - 1.0).abs() < 0.03);
        assert!((netscatter_dsp::stats::variance(&samples) - 1.0).abs() < 0.12);
    }

    #[test]
    fn temporal_fading_stationary_statistics() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut process = TemporalFading::new(2.0, 0.9);
        // Burn in, then measure.
        let _ = process.series(&mut rng, 1000);
        let series = process.series(&mut rng, 50_000);
        assert!(mean(&series).abs() < 0.15);
        assert!((std_dev(&series) - 2.0).abs() < 0.15);
    }

    #[test]
    fn temporal_fading_is_correlated() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut process = TemporalFading::new(2.0, 0.95);
        let series = process.series(&mut rng, 20_000);
        // Lag-1 autocorrelation should be close to the configured value.
        let m = mean(&series);
        let num: f64 = series.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
        let den: f64 = series.iter().map(|x| (x - m) * (x - m)).sum();
        let rho = num / den;
        assert!((rho - 0.95).abs() < 0.03, "lag-1 correlation {rho}");
    }

    #[test]
    fn office_default_stays_mostly_within_plus_minus_5db() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut process = TemporalFading::office_default();
        let series = process.series(&mut rng, 30_000);
        let within = series.iter().filter(|v| v.abs() <= 5.0).count() as f64 / series.len() as f64;
        assert!(within > 0.98, "only {within} of samples within ±5 dB");
    }

    #[test]
    fn power_factor_matches_db_state() {
        let mut process = TemporalFading::new(1.0, 0.5);
        assert_eq!(process.deviation_db(), 0.0);
        assert!((process.power_factor() - 1.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(8);
        let db = process.step(&mut rng);
        assert!((process.power_factor() - db_to_linear(db)).abs() < 1e-12);
    }
}

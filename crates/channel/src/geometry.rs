//! 2-D geometry primitives for the simulated office deployment.
//!
//! The paper deploys 256 devices across one floor of an office building with
//! more than ten rooms (Fig. 1). The deployment generator in
//! `netscatter-sim` places devices on a floorplan described with these
//! primitives; the channel models only need distances and wall counts.

/// A point on the deployment floorplan, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned rectangular room on the floorplan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Room {
    /// Minimum-x/minimum-y corner.
    pub min: Position,
    /// Maximum-x/maximum-y corner.
    pub max: Position,
}

impl Room {
    /// Creates a room from two opposite corners, normalizing the order.
    pub fn new(a: Position, b: Position) -> Self {
        Self {
            min: Position::new(a.x.min(b.x), a.y.min(b.y)),
            max: Position::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Whether the room contains a point (inclusive of the boundary).
    pub fn contains(&self, p: &Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Room centre.
    pub fn center(&self) -> Position {
        Position::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Room width (x extent) in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Room depth (y extent) in metres.
    pub fn depth(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Floor area in square metres.
    pub fn area(&self) -> f64 {
        self.width() * self.depth()
    }
}

/// A floorplan: a set of rooms on a grid. The number of interior walls
/// between two points is approximated by how many room boundaries the
/// straight line between them crosses, which is what the wall-loss term of
/// the path-loss model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    rooms: Vec<Room>,
}

impl Floorplan {
    /// Builds a floorplan from a list of rooms.
    pub fn new(rooms: Vec<Room>) -> Self {
        Self { rooms }
    }

    /// A regular `cols × rows` grid of identical rooms, each
    /// `room_w × room_d` metres — a reasonable stand-in for the paper's
    /// ">10 room" office floor.
    pub fn office_grid(cols: usize, rows: usize, room_w: f64, room_d: f64) -> Self {
        let mut rooms = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let min = Position::new(c as f64 * room_w, r as f64 * room_d);
                let max = Position::new((c + 1) as f64 * room_w, (r + 1) as f64 * room_d);
                rooms.push(Room::new(min, max));
            }
        }
        Self { rooms }
    }

    /// The rooms of the floorplan.
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// Total bounding extent of the floorplan (width, depth) in metres.
    pub fn extent(&self) -> (f64, f64) {
        let mut w = 0.0f64;
        let mut d = 0.0f64;
        for room in &self.rooms {
            w = w.max(room.max.x);
            d = d.max(room.max.y);
        }
        (w, d)
    }

    /// Index of the room containing a point, if any.
    pub fn room_of(&self, p: &Position) -> Option<usize> {
        self.rooms.iter().position(|r| r.contains(p))
    }

    /// Estimates the number of walls a direct path between `a` and `b`
    /// crosses by sampling the segment and counting room transitions.
    ///
    /// This is intentionally a coarse estimate — path-loss wall terms are
    /// themselves coarse (a few dB per wall) — but it is deterministic and
    /// monotone in the room-to-room separation.
    pub fn walls_between(&self, a: &Position, b: &Position) -> usize {
        const STEPS: usize = 200;
        let mut walls = 0usize;
        let mut prev = self.room_of(a);
        for i in 1..=STEPS {
            let t = i as f64 / STEPS as f64;
            let p = Position::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t);
            let cur = self.room_of(&p);
            if cur != prev {
                // Transitioning between different rooms (or in/out of the
                // covered area) crosses a wall.
                walls += 1;
                prev = cur;
            }
        }
        walls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn room_contains_and_dimensions() {
        let room = Room::new(Position::new(5.0, 2.0), Position::new(1.0, 8.0));
        assert_eq!(room.min, Position::new(1.0, 2.0));
        assert_eq!(room.max, Position::new(5.0, 8.0));
        assert!(room.contains(&Position::new(3.0, 5.0)));
        assert!(room.contains(&Position::new(1.0, 2.0)));
        assert!(!room.contains(&Position::new(0.5, 5.0)));
        assert_eq!(room.width(), 4.0);
        assert_eq!(room.depth(), 6.0);
        assert_eq!(room.area(), 24.0);
        assert_eq!(room.center(), Position::new(3.0, 5.0));
    }

    #[test]
    fn office_grid_builds_expected_rooms() {
        let plan = Floorplan::office_grid(4, 3, 5.0, 6.0);
        assert_eq!(plan.rooms().len(), 12);
        assert_eq!(plan.extent(), (20.0, 18.0));
        assert_eq!(plan.room_of(&Position::new(0.5, 0.5)), Some(0));
        assert_eq!(plan.room_of(&Position::new(19.5, 17.5)), Some(11));
        assert_eq!(plan.room_of(&Position::new(30.0, 30.0)), None);
    }

    #[test]
    fn walls_between_counts_room_transitions() {
        let plan = Floorplan::office_grid(4, 1, 5.0, 5.0);
        let a = Position::new(2.5, 2.5); // room 0
        let same_room = Position::new(4.0, 4.0);
        let next_room = Position::new(7.5, 2.5); // room 1
        let far_room = Position::new(17.5, 2.5); // room 3
        assert_eq!(plan.walls_between(&a, &same_room), 0);
        assert!(plan.walls_between(&a, &next_room) >= 1);
        assert!(plan.walls_between(&a, &far_room) >= 3);
        // Symmetric (same segment, opposite direction).
        assert_eq!(
            plan.walls_between(&a, &far_room),
            plan.walls_between(&far_room, &a)
        );
    }

    #[test]
    fn walls_between_is_monotone_with_room_separation() {
        let plan = Floorplan::office_grid(6, 1, 4.0, 4.0);
        let ap = Position::new(2.0, 2.0);
        let mut last = 0;
        for room in 0..6 {
            let p = Position::new(room as f64 * 4.0 + 2.0, 2.0);
            let walls = plan.walls_between(&ap, &p);
            assert!(walls >= last);
            last = walls;
        }
    }
}

//! Path-loss models and the backscatter link budget.
//!
//! The paper's deployment spans an office floor with more than ten rooms;
//! the AP transmits a 30 dBm single tone, tags receive the ASK query through
//! an envelope detector with −49 dBm sensitivity, and the backscattered CSS
//! signal arrives back at the AP well below the noise floor (Table 1 lists
//! −120…−123 dBm sensitivities). This module models those links:
//!
//! * [`fspl_db`] — free-space path loss.
//! * [`IndoorPathLoss`] — log-distance path loss with per-wall attenuation
//!   and log-normal shadowing, the standard indoor model.
//! * [`LinkBudget`] — the one-way (downlink) and round-trip (backscatter
//!   uplink) budgets, including the tag's backscatter power gain selected by
//!   the switch network (0 / −4 / −10 dB, §3.2.3).

use crate::noise::standard_normal;
use netscatter_dsp::units::SPEED_OF_LIGHT;
use rand::Rng;

/// Free-space path loss in dB at `distance_m` metres and `frequency_hz`.
///
/// `FSPL = 20·log10(4π·d·f / c)`. The result is clamped at 0 dB so that
/// degenerate (near-zero) distances never produce a negative "loss".
pub fn fspl_db(distance_m: f64, frequency_hz: f64) -> f64 {
    let d = distance_m.max(0.01);
    (20.0 * (4.0 * std::f64::consts::PI * d * frequency_hz / SPEED_OF_LIGHT).log10()).max(0.0)
}

/// Log-distance indoor path-loss model with wall attenuation and log-normal
/// shadowing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndoorPathLoss {
    /// Carrier frequency in Hz (the paper operates in the 900 MHz ISM band).
    pub frequency_hz: f64,
    /// Path-loss exponent; ~3 for through-wall indoor propagation.
    pub exponent: f64,
    /// Reference distance in metres for the log-distance model.
    pub reference_distance_m: f64,
    /// Attenuation added per interior wall crossed, in dB.
    pub wall_loss_db: f64,
    /// Standard deviation of log-normal shadowing, in dB.
    pub shadowing_sigma_db: f64,
}

impl Default for IndoorPathLoss {
    fn default() -> Self {
        Self {
            frequency_hz: 900e6,
            exponent: 3.0,
            reference_distance_m: 1.0,
            wall_loss_db: 5.0,
            shadowing_sigma_db: 4.0,
        }
    }
}

impl IndoorPathLoss {
    /// Median (no-shadowing) path loss in dB over `distance_m` metres
    /// crossing `walls` interior walls.
    pub fn median_loss_db(&self, distance_m: f64, walls: usize) -> f64 {
        let d = distance_m.max(self.reference_distance_m);
        fspl_db(self.reference_distance_m, self.frequency_hz)
            + 10.0 * self.exponent * (d / self.reference_distance_m).log10()
            + self.wall_loss_db * walls as f64
    }

    /// Draws a log-normal shadowing term in dB (zero mean).
    pub fn sample_shadowing_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.shadowing_sigma_db * standard_normal(rng)
    }

    /// Median loss plus a freshly sampled shadowing term.
    pub fn sample_loss_db<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        distance_m: f64,
        walls: usize,
    ) -> f64 {
        self.median_loss_db(distance_m, walls) + self.sample_shadowing_db(rng)
    }
}

/// The power budget of a backscatter link between the AP and one tag.
///
/// The same one-way path loss `PL` applies to the downlink (AP query →
/// envelope detector) and to each leg of the backscatter round trip, so the
/// uplink budget carries `2·PL` plus the tag's backscatter conversion loss
/// and its configurable backscatter power gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// AP transmit power in dBm (paper: 0 dBm USRP output + 30 dB PA = 30 dBm).
    pub ap_tx_power_dbm: f64,
    /// AP antenna gain in dBi (applied on both transmit and receive).
    pub ap_antenna_gain_dbi: f64,
    /// Tag antenna gain in dBi (paper: 2 dBi whip antenna).
    pub tag_antenna_gain_dbi: f64,
    /// Intrinsic backscatter conversion loss in dB (modulation efficiency of
    /// reflecting the carrier; ~5 dB for an ideal two-impedance switch once
    /// harmonics and mismatch are accounted for).
    pub backscatter_conversion_loss_db: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        Self {
            ap_tx_power_dbm: 30.0,
            ap_antenna_gain_dbi: 3.0,
            tag_antenna_gain_dbi: 2.0,
            backscatter_conversion_loss_db: 5.0,
        }
    }
}

impl LinkBudget {
    /// Received power in dBm at the tag's envelope detector for a given
    /// one-way path loss (downlink budget).
    pub fn downlink_rssi_dbm(&self, one_way_path_loss_db: f64) -> f64 {
        self.ap_tx_power_dbm + self.ap_antenna_gain_dbi + self.tag_antenna_gain_dbi
            - one_way_path_loss_db
    }

    /// Received backscatter power in dBm at the AP for a given one-way path
    /// loss and the tag's configured backscatter power gain
    /// (0, −4 or −10 dB in the paper's hardware).
    pub fn uplink_rssi_dbm(&self, one_way_path_loss_db: f64, backscatter_gain_db: f64) -> f64 {
        self.ap_tx_power_dbm + 2.0 * (self.ap_antenna_gain_dbi + self.tag_antenna_gain_dbi)
            - 2.0 * one_way_path_loss_db
            - self.backscatter_conversion_loss_db
            + backscatter_gain_db
    }

    /// The largest one-way path loss at which the downlink query is still
    /// decodable by an envelope detector of the given sensitivity
    /// (paper: −49 dBm).
    pub fn max_downlink_path_loss_db(&self, envelope_sensitivity_dbm: f64) -> f64 {
        self.ap_tx_power_dbm + self.ap_antenna_gain_dbi + self.tag_antenna_gain_dbi
            - envelope_sensitivity_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fspl_reference_values() {
        // 1 m @ 900 MHz ≈ 31.5 dB; 100 m @ 900 MHz ≈ 71.5 dB.
        assert!((fspl_db(1.0, 900e6) - 31.5).abs() < 0.3);
        assert!((fspl_db(100.0, 900e6) - 71.5).abs() < 0.3);
        // Doubling distance adds 6 dB.
        assert!((fspl_db(20.0, 900e6) - fspl_db(10.0, 900e6) - 6.02).abs() < 0.05);
        // Degenerate distance does not produce negative loss at 900 MHz.
        assert!(fspl_db(0.0, 900e6) >= 0.0);
    }

    #[test]
    fn median_loss_grows_with_distance_and_walls() {
        let model = IndoorPathLoss::default();
        let near = model.median_loss_db(2.0, 0);
        let far = model.median_loss_db(20.0, 0);
        let far_walls = model.median_loss_db(20.0, 3);
        assert!(far > near);
        // 10x distance with exponent 3 adds 30 dB.
        assert!((far - near - 30.0).abs() < 0.1);
        assert!((far_walls - far - 15.0).abs() < 1e-9);
    }

    #[test]
    fn distances_below_reference_clamp_to_reference() {
        let model = IndoorPathLoss::default();
        assert_eq!(model.median_loss_db(0.1, 0), model.median_loss_db(1.0, 0));
    }

    #[test]
    fn shadowing_statistics_match_sigma() {
        let model = IndoorPathLoss {
            shadowing_sigma_db: 4.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| model.sample_shadowing_db(&mut rng))
            .collect();
        let mean = netscatter_dsp::stats::mean(&samples);
        let sd = netscatter_dsp::stats::std_dev(&samples);
        assert!(mean.abs() < 0.1);
        assert!((sd - 4.0).abs() < 0.15);
    }

    #[test]
    fn downlink_budget_reaches_envelope_detector_across_office() {
        // A tag 25 m away through 3 walls must still hear the query:
        // PL ≈ 31.5 + 30·log10(25) + 15 ≈ 88.4 dB -> RSSI ≈ 30+5-88.4 ≈ -53 dBm.
        // That is below a -49 dBm envelope detector, so such a tag would be
        // out of downlink range — while a tag 15 m / 2 walls away is in range.
        let budget = LinkBudget::default();
        let pl_model = IndoorPathLoss::default();
        let far = budget.downlink_rssi_dbm(pl_model.median_loss_db(25.0, 3));
        let near = budget.downlink_rssi_dbm(pl_model.median_loss_db(15.0, 2));
        assert!(far < -49.0);
        assert!(near > -49.0);
        assert!(budget.max_downlink_path_loss_db(-49.0) > 80.0);
    }

    #[test]
    fn uplink_budget_is_round_trip() {
        let budget = LinkBudget::default();
        let pl = 70.0;
        let up = budget.uplink_rssi_dbm(pl, 0.0);
        let down = budget.downlink_rssi_dbm(pl);
        // The uplink suffers the path loss twice plus conversion loss.
        assert!(
            (down
                - up
                - (pl + budget.backscatter_conversion_loss_db
                    - budget.ap_antenna_gain_dbi
                    - budget.tag_antenna_gain_dbi))
                .abs()
                < 1e-9
        );
        // Backscatter gain scales the uplink dB-for-dB.
        assert!((budget.uplink_rssi_dbm(pl, -10.0) - (up - 10.0)).abs() < 1e-12);
    }

    #[test]
    fn uplink_lands_below_noise_floor_at_range() {
        // A tag ~12 m away through 2 walls backscatters at roughly
        // -100..-120 dBm — below the -111 dBm noise floor of a 500 kHz
        // channel, which is exactly the regime CSS coding gain targets.
        let budget = LinkBudget::default();
        let pl_model = IndoorPathLoss::default();
        let pl = pl_model.median_loss_db(12.0, 2);
        let rssi = budget.uplink_rssi_dbm(pl, 0.0);
        let noise_floor = netscatter_dsp::units::thermal_noise_dbm(500e3, 6.0);
        assert!(
            rssi < noise_floor,
            "uplink {rssi} dBm should be below the {noise_floor} dBm floor"
        );
        assert!(
            rssi > -135.0,
            "uplink {rssi} dBm should still be within CSS sensitivity reach"
        );
    }
}

//! Indoor multipath: exponential power-delay profiles and their effect on a
//! narrowband CSS receiver.
//!
//! §3.2.1 of the paper argues that indoor delay spreads of 50–300 ns are
//! negligible for a 500 kHz chirp (< 0.15 FFT bins). At critical sampling the
//! sample period is 2 µs, so multipath is *frequency-flat* for the chirp: its
//! net effect is (a) a composite complex channel gain and (b) a small excess
//! group delay that adds to the timing offset budget. This module provides
//! both views: a tapped-delay-line generator (for analysis at arbitrary
//! sampling rates) and the narrowband summary used by the packet-level
//! simulator.

use crate::noise::standard_normal;
use netscatter_dsp::Complex64;
use rand::Rng;

/// An exponential power-delay profile with a configurable RMS delay spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDelayProfile {
    /// RMS delay spread in seconds (indoor offices: 50–300 ns).
    pub rms_delay_spread_s: f64,
    /// Number of discrete taps used when realizing the profile.
    pub num_taps: usize,
    /// Spacing between taps in seconds.
    pub tap_spacing_s: f64,
}

impl PowerDelayProfile {
    /// An indoor office profile with the given RMS delay spread (seconds).
    /// The realization uses 16 taps spanning four times the delay spread so
    /// the exponential tail is represented faithfully.
    pub fn indoor(rms_delay_spread_s: f64) -> Self {
        let rms = rms_delay_spread_s.max(1e-9);
        Self {
            rms_delay_spread_s: rms,
            num_taps: 16,
            tap_spacing_s: rms / 4.0,
        }
    }

    /// An outdoor profile with the given RMS delay spread (seconds;
    /// suburban/rural deployments: 0.5–2 µs). Outdoor scatterers produce a
    /// longer, sparser tail than office reflections, so the realization uses
    /// 24 taps spanning six times the delay spread.
    pub fn outdoor(rms_delay_spread_s: f64) -> Self {
        let rms = rms_delay_spread_s.max(1e-9);
        Self {
            rms_delay_spread_s: rms,
            num_taps: 24,
            tap_spacing_s: rms / 4.0,
        }
    }

    /// Mean power of tap `k` under the exponential profile (unnormalized).
    fn tap_power(&self, k: usize) -> f64 {
        (-(k as f64) * self.tap_spacing_s / self.rms_delay_spread_s).exp()
    }

    /// Draws a channel realization: complex tap gains (Rayleigh per tap) with
    /// total mean power normalized to one, along with each tap's delay.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MultipathChannel {
        let raw_powers: Vec<f64> = (0..self.num_taps).map(|k| self.tap_power(k)).collect();
        let total: f64 = raw_powers.iter().sum();
        let taps: Vec<(f64, Complex64)> = raw_powers
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let sigma = (p / total / 2.0).sqrt();
                let gain =
                    Complex64::new(sigma * standard_normal(rng), sigma * standard_normal(rng));
                (k as f64 * self.tap_spacing_s, gain)
            })
            .collect();
        MultipathChannel { taps }
    }
}

/// One realization of a multipath channel: a list of `(delay_s, complex gain)`
/// taps.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipathChannel {
    /// The taps as `(delay in seconds, complex gain)` pairs.
    pub taps: Vec<(f64, Complex64)>,
}

impl MultipathChannel {
    /// The narrowband composite gain: the coherent sum of all taps. For
    /// signals whose bandwidth is much smaller than `1/delay spread` (the CSS
    /// case), the channel acts as this single complex multiplier.
    pub fn flat_gain(&self) -> Complex64 {
        self.taps.iter().map(|(_, g)| *g).sum()
    }

    /// Power-weighted mean excess delay in seconds — the contribution
    /// multipath makes to the link's timing offset.
    pub fn mean_excess_delay_s(&self) -> f64 {
        let total: f64 = self.taps.iter().map(|(_, g)| g.norm_sqr()).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.taps.iter().map(|(d, g)| d * g.norm_sqr()).sum::<f64>() / total
    }

    /// RMS delay spread of this realization in seconds.
    pub fn rms_delay_spread_s(&self) -> f64 {
        let total: f64 = self.taps.iter().map(|(_, g)| g.norm_sqr()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let mean = self.mean_excess_delay_s();
        let second: f64 = self
            .taps
            .iter()
            .map(|(d, g)| (d - mean) * (d - mean) * g.norm_sqr())
            .sum::<f64>()
            / total;
        second.sqrt()
    }

    /// Applies the channel to a signal sampled at `sample_rate_hz` by
    /// convolving with the tap response. The output has the same length as
    /// the input.
    ///
    /// Each tap delay is split into an integer sample shift plus a residual
    /// fractional delay. The fractional part is realized with a first-order
    /// (linear-interpolation) fractional-delay filter, so sub-sample delays
    /// survive instead of rounding to zero: at critical CSS sampling (2 µs
    /// period) every indoor tap (50–300 ns) used to collapse onto shift 0,
    /// silently degenerating the tapped-delay line into a scalar gain with
    /// no group delay. For a narrowband signal the interpolated tap is
    /// phase-accurate: a tone at frequency `f` picks up the expected
    /// `−2π·f·τ` phase for the residual delay `τ`. Taps whose integer shift
    /// falls past the end of the buffer contribute nothing.
    pub fn apply(&self, signal: &[Complex64], sample_rate_hz: f64) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; signal.len()];
        for (delay_s, gain) in &self.taps {
            let delay_samples = (delay_s * sample_rate_hz).max(0.0);
            let shift = delay_samples.floor() as usize;
            if shift >= out.len() {
                continue;
            }
            let frac = delay_samples - delay_samples.floor();
            for (i, o) in out.iter_mut().enumerate().skip(shift) {
                let current = signal[i - shift];
                let previous = if i - shift > 0 {
                    signal[i - shift - 1]
                } else {
                    Complex64::ZERO
                };
                *o += (current.scale(1.0 - frac) + previous.scale(frac)) * *gain;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_dsp::stats::mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn realized_channel_has_unit_mean_power() {
        let mut rng = StdRng::seed_from_u64(11);
        let profile = PowerDelayProfile::indoor(150e-9);
        let mean_gain: Vec<f64> = (0..20_000)
            .map(|_| {
                profile
                    .realize(&mut rng)
                    .taps
                    .iter()
                    .map(|(_, g)| g.norm_sqr())
                    .sum::<f64>()
            })
            .collect();
        assert!((mean(&mean_gain) - 1.0).abs() < 0.05);
    }

    #[test]
    fn rms_delay_spread_tracks_profile_parameter() {
        let mut rng = StdRng::seed_from_u64(12);
        for target in [50e-9, 150e-9, 300e-9] {
            let profile = PowerDelayProfile::indoor(target);
            let spreads: Vec<f64> = (0..5_000)
                .map(|_| profile.realize(&mut rng).rms_delay_spread_s())
                .collect();
            let avg = mean(&spreads);
            // The realized spread is of the same order as the target (the
            // 8-tap realization truncates the exponential tail).
            assert!(
                avg > 0.2 * target && avg < 1.5 * target,
                "target {target}, got {avg}"
            );
        }
    }

    #[test]
    fn excess_delay_is_negligible_in_fft_bins_at_500khz() {
        // §3.2.1: indoor delay spreads of 50–300 ns translate to well under
        // one FFT bin at 500 kHz (the paper quotes < 0.15 bins for the
        // spread itself); the mean excess delay stays in the same ballpark.
        let mut rng = StdRng::seed_from_u64(13);
        let profile = PowerDelayProfile::indoor(300e-9);
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let trials = 1000;
        for _ in 0..trials {
            let ch = profile.realize(&mut rng);
            let bins = ch.mean_excess_delay_s() * 500e3;
            worst = worst.max(bins);
            sum += bins;
        }
        assert!(
            sum / (trials as f64) < 0.2,
            "average excess delay too large"
        );
        assert!(
            worst < 0.6,
            "worst-case excess delay {worst} bins is implausibly large"
        );
    }

    #[test]
    fn flat_gain_is_sum_of_taps() {
        let ch = MultipathChannel {
            taps: vec![
                (0.0, Complex64::new(0.5, 0.0)),
                (25e-9, Complex64::new(0.0, 0.5)),
            ],
        };
        assert_eq!(ch.flat_gain(), Complex64::new(0.5, 0.5));
        assert!((ch.mean_excess_delay_s() - 12.5e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_or_zero_channel_is_degenerate_but_safe() {
        let ch = MultipathChannel { taps: vec![] };
        assert_eq!(ch.flat_gain(), Complex64::ZERO);
        assert_eq!(ch.mean_excess_delay_s(), 0.0);
        assert_eq!(ch.rms_delay_spread_s(), 0.0);
    }

    #[test]
    fn apply_at_narrowband_rate_approximates_flat_gain() {
        // At 500 kHz sampling all sub-µs taps are a small fraction of one
        // sample, so applying the channel stays close to multiplying by the
        // flat gain — but no longer *exactly* equal: the fractional delays
        // are preserved instead of rounded away.
        let mut rng = StdRng::seed_from_u64(14);
        let profile = PowerDelayProfile::indoor(200e-9);
        let ch = profile.realize(&mut rng);
        let signal: Vec<Complex64> = (0..64).map(|i| Complex64::cis(i as f64 * 0.1)).collect();
        let out = ch.apply(&signal, 500e3);
        let flat = ch.flat_gain();
        for (o, s) in out.iter().zip(&signal).skip(1) {
            assert!((*o - *s * flat).abs() < 0.05 * flat.abs().max(1e-6));
        }
    }

    #[test]
    fn apply_preserves_sub_sample_group_delay() {
        // A single tap delayed by a fraction of a sample must impose the
        // narrowband delay signature: a tone at frequency f acquires a phase
        // of −2π·f·τ. Before the fractional-delay fix the tap rounded to
        // shift 0 and the phase was identically that of the gain.
        let fs = 500e3;
        let tau = 0.3 / fs; // 0.3 samples of delay
        let ch = MultipathChannel {
            taps: vec![(tau, Complex64::ONE)],
        };
        let f = 20e3; // well inside the band
        let n = 256;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * f * i as f64 / fs))
            .collect();
        let out = ch.apply(&signal, fs);
        // Compare steady-state phase (skip the first sample edge effect).
        let expected = -2.0 * std::f64::consts::PI * f * tau;
        for (o, s) in out.iter().zip(&signal).skip(1) {
            let phase = (*o * s.conj()).arg();
            assert!(
                (phase - expected).abs() < 0.02,
                "phase {phase} vs expected {expected}"
            );
        }
    }

    #[test]
    fn taps_beyond_buffer_length_are_ignored() {
        // A 10 µs tap at 40 MHz is a 400-sample shift; on a 32-sample buffer
        // it must contribute nothing (and not panic or wrap).
        let ch = MultipathChannel {
            taps: vec![
                (0.0, Complex64::new(0.5, 0.0)),
                (10e-6, Complex64::new(100.0, 0.0)),
            ],
        };
        let signal = vec![Complex64::ONE; 32];
        let out = ch.apply(&signal, 40e6);
        for o in &out {
            assert!((*o - Complex64::new(0.5, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_at_high_rate_spreads_energy_over_taps() {
        // At 40 MHz sampling the 25 ns tap spacing is one sample, so an
        // impulse is spread across multiple output samples.
        let mut rng = StdRng::seed_from_u64(15);
        let profile = PowerDelayProfile::indoor(200e-9);
        let ch = profile.realize(&mut rng);
        let mut impulse = vec![Complex64::ZERO; 32];
        impulse[0] = Complex64::ONE;
        let out = ch.apply(&impulse, 40e6);
        let nonzero = out.iter().filter(|c| c.abs() > 1e-12).count();
        assert!(
            nonzero >= 2,
            "expected echoes, got {nonzero} non-zero samples"
        );
    }
}

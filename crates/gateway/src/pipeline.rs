//! The chunked stream-processing pipeline.
//!
//! Two entry points drive the [`crate::detect::StreamDetector`]:
//!
//! * [`StreamGateway`] — the synchronous, single-threaded facade: feed
//!   chunks, get decoded packets back. This is the deterministic core the
//!   equivalence tests pin against the batch receiver.
//! * [`run_stream`] — the real-time topology, a run-to-completion session
//!   over the reusable [`crate::engine::StreamEngine`]: the calling thread
//!   pulls chunks from a [`StreamSource`] and feeds them through the
//!   lock-free ring; the engine's detection thread locates packets in
//!   stream order and `workers` decode threads handle them round-robin;
//!   results are reassembled in packet order. The report carries the
//!   measured throughput and the real-time factor (throughput over the
//!   source's sample rate) — the number that says whether this gateway
//!   keeps up with the radio.
//!
//! Packet decode reuses the existing batch path unchanged
//! ([`ConcurrentReceiver::decode_round`] → `DemodWorkspace` → pruned
//! zero-padded FFT), so every performance property of the per-symbol hot
//! path carries over to the streaming receiver.

use crate::detect::{GatewayConfig, PacketSpan, StreamDetector};
use crate::engine::{EngineError, MultiChannelEngine, StreamEngine};
use crate::source::StreamSource;
use netscatter::receiver::{ConcurrentReceiver, DecodedRound};
use netscatter_dsp::fft::FftError;
use netscatter_dsp::Complex64;
use netscatter_obs::HistogramSnapshot;

/// One decoded packet of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPacket {
    /// Sequence number in stream order (0-based).
    pub index: usize,
    /// Absolute stream index of the packet's first sample.
    pub start_sample: u64,
    /// The concurrent-round decode (per detected device: bin, preamble
    /// power, payload bits).
    pub round: DecodedRound,
}

/// The outcome of one [`run_stream`] session.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Decoded packets in stream order.
    pub packets: Vec<DecodedPacket>,
    /// Total samples consumed from the source.
    pub samples_in: u64,
    /// Packets dropped because the stream ended mid-packet.
    pub truncated: usize,
    /// Wall-clock duration of the session in seconds.
    pub elapsed_s: f64,
    /// Measured processing throughput in samples per second.
    pub samples_per_sec: f64,
    /// `samples_per_sec` over the source's sample rate: ≥ 1 means the
    /// gateway keeps up with the radio in real time.
    pub real_time_factor: f64,
    /// Chunks displaced by the ring's drop-oldest overflow policy (always 0
    /// under [`crate::engine::OverflowPolicy::Block`], the `run_stream`
    /// default).
    pub ring_dropped: u64,
    /// Per-stage latency telemetry accumulated over the session (empty
    /// for the synchronous [`StreamGateway`] facade, which has no queues
    /// or worker pool to measure).
    pub telemetry: PipelineTelemetry,
}

/// Per-stage latency/pressure distributions for one pipeline session,
/// as plain mergeable data (see [`crate::engine::EngineTelemetry`] for
/// the live atomics these are snapshotted from).
///
/// All histogram snapshots are log2-bucket ([`netscatter_obs::hist`]);
/// the `_ns` ones record wall nanoseconds, the `_samples` one records
/// sample counts at the stream's native rate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTelemetry {
    /// Highest ring occupancy (queued chunks) observed at any push.
    pub ring_occupancy_hwm: u64,
    /// Pushes that found the ring full (then blocked or displaced).
    pub ring_full_events: u64,
    /// Wait endured by blocking pushes, per full event, in nanoseconds.
    pub ring_block_wait_ns: HistogramSnapshot,
    /// Energy-gate fire → preamble anchor lock, in stream samples.
    pub detect_gate_to_anchor_samples: HistogramSnapshot,
    /// Energy-gate fire → preamble anchor lock, in wall nanoseconds.
    pub detect_gate_to_anchor_ns: HistogramSnapshot,
    /// Span dispatch → decode start (worker queue wait), nanoseconds.
    pub queue_wait_ns: HistogramSnapshot,
    /// Decode service time per span (worker busy time), nanoseconds.
    pub decode_ns: HistogramSnapshot,
}

impl PipelineTelemetry {
    /// Folds another session's telemetry into this one (the per-channel →
    /// per-gateway rollup): histograms merge bucket-wise, the occupancy
    /// high-water mark takes the max, event counts add.
    pub fn merge(&mut self, other: &PipelineTelemetry) {
        self.ring_occupancy_hwm = self.ring_occupancy_hwm.max(other.ring_occupancy_hwm);
        self.ring_full_events += other.ring_full_events;
        self.ring_block_wait_ns.merge(&other.ring_block_wait_ns);
        self.detect_gate_to_anchor_samples
            .merge(&other.detect_gate_to_anchor_samples);
        self.detect_gate_to_anchor_ns
            .merge(&other.detect_gate_to_anchor_ns);
        self.queue_wait_ns.merge(&other.queue_wait_ns);
        self.decode_ns.merge(&other.decode_ns);
    }
}

impl GatewayReport {
    /// Packets whose decode detected at least one device (an energy-gate
    /// trigger that decodes to zero devices is a false alarm, not a round).
    pub fn detected_rounds(&self) -> usize {
        self.packets
            .iter()
            .filter(|p| !p.round.devices.is_empty())
            .count()
    }
}

/// The outcome of one multi-channel session: per-channel reports plus the
/// aggregate counters a capacity planner actually reads.
///
/// Produced by [`crate::engine::MultiChannelEngine::shutdown`] and
/// [`run_multi_stream`]. The per-channel [`GatewayReport`]s keep their own
/// packets, sequence numbers and throughput; the aggregate fields sum the
/// shards over the *shared* wall-clock window, so
/// [`MultiChannelReport::aggregate_samples_per_sec`] is the whole
/// gateway's ingest capacity, not an average of the shards.
#[derive(Debug, Clone)]
pub struct MultiChannelReport {
    /// Per-channel session reports, indexed by channel.
    pub channels: Vec<GatewayReport>,
    /// Wall-clock duration of the whole session in seconds (one shared
    /// window — the channels ran concurrently).
    pub elapsed_s: f64,
    /// Total samples consumed across all channels.
    pub samples_in: u64,
    /// Total packets dropped mid-stream across all channels.
    pub truncated: usize,
    /// Total chunks displaced by drop-oldest overflow across all channels.
    pub ring_dropped: u64,
    /// Aggregate processing throughput: total samples over the shared
    /// wall-clock window, in samples per second.
    pub aggregate_samples_per_sec: f64,
    /// `aggregate_samples_per_sec` over the *combined* radio rate
    /// (`channels × sample_rate`): ≥ 1 means the sharded gateway keeps up
    /// with every channel at once.
    pub aggregate_real_time_factor: f64,
}

impl MultiChannelReport {
    /// Assembles the aggregate view over per-channel reports measured in
    /// one shared wall-clock window of `elapsed_s` seconds.
    pub(crate) fn new(channels: Vec<GatewayReport>, elapsed_s: f64, sample_rate_hz: f64) -> Self {
        let samples_in: u64 = channels.iter().map(|r| r.samples_in).sum();
        let aggregate_samples_per_sec = samples_in as f64 / elapsed_s;
        let combined_rate = sample_rate_hz * channels.len() as f64;
        Self {
            samples_in,
            truncated: channels.iter().map(|r| r.truncated).sum(),
            ring_dropped: channels.iter().map(|r| r.ring_dropped).sum(),
            elapsed_s,
            aggregate_samples_per_sec,
            aggregate_real_time_factor: if combined_rate > 0.0 {
                aggregate_samples_per_sec / combined_rate
            } else {
                0.0
            },
            channels,
        }
    }

    /// Total decoded packets across all channels.
    pub fn total_packets(&self) -> usize {
        self.channels.iter().map(|r| r.packets.len()).sum()
    }

    /// Total packets that detected at least one device, across channels.
    pub fn detected_rounds(&self) -> usize {
        self.channels
            .iter()
            .map(GatewayReport::detected_rounds)
            .sum()
    }

    /// Every channel's stage telemetry merged into one distribution.
    pub fn merged_telemetry(&self) -> PipelineTelemetry {
        let mut merged = PipelineTelemetry::default();
        for channel in &self.channels {
            merged.merge(&channel.telemetry);
        }
        merged
    }
}

/// The synchronous gateway: online detection plus inline decode.
#[derive(Debug, Clone)]
pub struct StreamGateway {
    detector: StreamDetector,
    assigned_bins: Vec<usize>,
    payload_symbols: usize,
    spans: Vec<PacketSpan>,
}

impl StreamGateway {
    /// Creates a gateway for `config`.
    pub fn new(config: &GatewayConfig) -> Result<Self, FftError> {
        Ok(Self {
            detector: StreamDetector::new(config)?,
            assigned_bins: config.assigned_bins.clone(),
            payload_symbols: config.payload_symbols,
            spans: Vec::new(),
        })
    }

    /// The receiver packets are decoded with.
    pub fn receiver(&self) -> &ConcurrentReceiver {
        self.detector.receiver()
    }

    /// Feeds one chunk and returns the packets completed by it, decoded
    /// inline on the calling thread.
    pub fn feed(&mut self, chunk: &[Complex64]) -> Result<Vec<DecodedPacket>, FftError> {
        self.spans.clear();
        let mut spans = std::mem::take(&mut self.spans);
        self.detector.push(chunk, &mut spans);
        let packets = spans
            .iter()
            .map(|span| {
                decode_span(
                    self.detector.receiver(),
                    span,
                    &self.assigned_bins,
                    self.payload_symbols,
                )
            })
            .collect::<Result<Vec<_>, _>>();
        self.spans = spans;
        packets
    }

    /// Ends the stream; returns the number of truncated packets.
    pub fn finish(&mut self) -> usize {
        self.detector.finish();
        self.detector.truncated()
    }
}

/// Decodes one located span through the batch receiver path. Shared by the
/// synchronous facade here and the engine's decode workers.
pub(crate) fn decode_span(
    receiver: &ConcurrentReceiver,
    span: &PacketSpan,
    assigned_bins: &[usize],
    payload_symbols: usize,
) -> Result<DecodedPacket, FftError> {
    let round = receiver.decode_round(&span.samples, 0, assigned_bins, payload_symbols)?;
    Ok(DecodedPacket {
        index: span.index,
        start_sample: span.start_sample,
        round,
    })
}

/// Runs the full threaded pipeline over `source` until it is exhausted and
/// returns the report. Deterministic for a deterministic source: the
/// engine's detection thread runs in stream order, and decoded packets are
/// reassembled by sequence number regardless of worker scheduling. The
/// configured overflow policy applies; under the default
/// [`crate::engine::OverflowPolicy::Block`] the session is lossless.
pub fn run_stream(
    source: &mut dyn StreamSource,
    config: &GatewayConfig,
) -> Result<GatewayReport, EngineError> {
    let mut engine = StreamEngine::spawn(config, source.sample_rate_hz())?;
    let chunk_samples = config.chunk_samples.max(1);
    let mut buf = vec![Complex64::ZERO; chunk_samples];
    loop {
        let got = source.fill(&mut buf);
        if got == 0 {
            break;
        }
        if engine.feed(&buf[..got]).is_err() {
            break; // engine torn down under us; shutdown() reports why
        }
        if got < chunk_samples {
            break; // short read = end of stream
        }
    }
    engine.shutdown()
}

/// Runs the sharded pipeline over one source per channel until every
/// source is exhausted, then returns the per-channel and aggregate report.
///
/// Sources are served round-robin, one chunk per channel per lap, so no
/// channel's ring starves while another replays — the feed order a
/// multi-channel frontend's DMA would produce. Each channel keeps the
/// determinism of [`run_stream`]: detection runs in that channel's stream
/// order and packets reassemble by sequence number, so per-channel results
/// are bit-identical to a single-channel session over the same samples.
///
/// The first source's sample rate is used for the aggregate real-time
/// factor (NetScatter channels are homogeneous 500 kHz slices).
/// Returns [`EngineError::Config`] when `sources` is empty.
pub fn run_multi_stream(
    sources: &mut [Box<dyn StreamSource>],
    config: &GatewayConfig,
) -> Result<MultiChannelReport, EngineError> {
    let Some(first) = sources.first() else {
        return Err(EngineError::Config(
            "multi-channel session needs at least one source".to_string(),
        ));
    };
    let sample_rate_hz = first.sample_rate_hz();
    let mut engine = MultiChannelEngine::spawn(config, sources.len(), sample_rate_hz)?;
    let chunk_samples = config.chunk_samples.max(1);
    let mut buf = vec![Complex64::ZERO; chunk_samples];
    let mut live = vec![true; sources.len()];
    let mut remaining = sources.len();
    while remaining > 0 {
        for (channel, source) in sources.iter_mut().enumerate() {
            if !live[channel] {
                continue;
            }
            let got = source.fill(&mut buf);
            let fed = got == 0 || engine.feed(channel, &buf[..got]).is_ok();
            if got < chunk_samples || !fed {
                // Short read = end of this channel's stream; a failed feed
                // means that channel's engine was torn down (shutdown
                // reports why). Either way the channel is done.
                live[channel] = false;
                remaining -= 1;
            }
        }
    }
    engine.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplaySource;
    use netscatter_phy::distributed::OnOffModulator;
    use netscatter_phy::params::PhyProfile;
    use netscatter_phy::preamble::PreambleBuilder;

    /// A stream with `count` ideal single-device packets at varying gaps.
    fn stream_with_packets(bin: usize, bits: &[bool], count: usize) -> Vec<Complex64> {
        let params = PhyProfile::default().modulation.chirp();
        let mut pkt = PreambleBuilder::new(params, bin).build(0.0, 0.0, 1.0);
        pkt.extend(OnOffModulator::new(params, bin).modulate_payload(bits, 0.0, 0.0, 1.0));
        let mut stream = Vec::new();
        for i in 0..count {
            stream.extend(vec![Complex64::ZERO; 400 + 137 * i]);
            stream.extend(&pkt);
        }
        stream.extend(vec![Complex64::ZERO; 200]);
        stream
    }

    #[test]
    fn synchronous_gateway_decodes_every_packet() {
        let bits = vec![true, false, true, true, false, true];
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![128], bits.len());
        let stream = stream_with_packets(128, &bits, 3);
        let mut gw = StreamGateway::new(&cfg).unwrap();
        let mut packets = Vec::new();
        for chunk in stream.chunks(777) {
            packets.extend(gw.feed(chunk).unwrap());
        }
        assert_eq!(gw.finish(), 0);
        assert_eq!(packets.len(), 3);
        for p in &packets {
            assert_eq!(p.round.bits_for(128).unwrap(), &bits[..]);
        }
    }

    #[test]
    fn threaded_pipeline_matches_the_synchronous_gateway() {
        let bits = vec![true, true, false, true, false, false, true, true];
        let cfg = GatewayConfig {
            chunk_samples: 1000,
            ring_slots: 4,
            workers: 3,
            ..GatewayConfig::new(PhyProfile::default(), vec![64, 192], bits.len())
        };
        let stream = stream_with_packets(64, &bits, 4);

        let mut sync_packets = Vec::new();
        let mut gw = StreamGateway::new(&cfg).unwrap();
        for chunk in stream.chunks(cfg.chunk_samples) {
            sync_packets.extend(gw.feed(chunk).unwrap());
        }
        gw.finish();

        let mut source = ReplaySource::from_samples(stream, 500e3);
        let report = run_stream(&mut source, &cfg).unwrap();
        assert_eq!(report.packets, sync_packets);
        assert_eq!(report.samples_in, source.len() as u64);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.detected_rounds(), 4);
        assert!(report.samples_per_sec > 0.0);
        assert!(report.real_time_factor > 0.0);
    }

    #[test]
    fn multi_stream_channels_match_independent_single_channel_sessions() {
        let bits = vec![true, false, false, true, true];
        let cfg = GatewayConfig {
            chunk_samples: 900,
            workers: 2,
            ..GatewayConfig::new(PhyProfile::default(), vec![32, 160], bits.len())
        };
        let ch0 = stream_with_packets(32, &bits, 3);
        let ch1 = stream_with_packets(160, &bits, 2);

        // Reference: each channel alone through the single-channel session.
        let mut solo = Vec::new();
        for stream in [&ch0, &ch1] {
            let mut source = ReplaySource::from_samples(stream.clone(), 500e3);
            solo.push(run_stream(&mut source, &cfg).unwrap());
        }

        let mut sources: Vec<Box<dyn StreamSource>> = vec![
            Box::new(ReplaySource::from_samples(ch0.clone(), 500e3)),
            Box::new(ReplaySource::from_samples(ch1.clone(), 500e3)),
        ];
        let report = run_multi_stream(&mut sources, &cfg).unwrap();
        assert_eq!(report.channels.len(), 2);
        for (channel, reference) in report.channels.iter().zip(solo.iter()) {
            assert_eq!(
                channel.packets, reference.packets,
                "sharding must not change any channel's decode"
            );
            assert_eq!(channel.samples_in, reference.samples_in);
            assert_eq!(channel.truncated, reference.truncated);
        }
        assert_eq!(report.samples_in, (ch0.len() + ch1.len()) as u64);
        assert_eq!(report.total_packets(), 5);
        assert_eq!(report.detected_rounds(), 5);
        assert!(report.aggregate_samples_per_sec > 0.0);
        assert!(report.aggregate_real_time_factor > 0.0);
    }

    #[test]
    fn multi_stream_rejects_an_empty_source_list() {
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![0], 4);
        let mut sources: Vec<Box<dyn StreamSource>> = Vec::new();
        assert!(matches!(
            run_multi_stream(&mut sources, &cfg),
            Err(EngineError::Config(_))
        ));
    }

    #[test]
    fn empty_stream_yields_an_empty_report() {
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![0], 4);
        let mut source = ReplaySource::from_samples(Vec::new(), 500e3);
        let report = run_stream(&mut source, &cfg).unwrap();
        assert!(report.packets.is_empty());
        assert_eq!(report.samples_in, 0);
    }
}

//! The chunked stream-processing pipeline.
//!
//! Two entry points drive the [`crate::detect::StreamDetector`]:
//!
//! * [`StreamGateway`] — the synchronous, single-threaded facade: feed
//!   chunks, get decoded packets back. This is the deterministic core the
//!   equivalence tests pin against the batch receiver.
//! * [`run_stream`] — the real-time topology, a run-to-completion session
//!   over the reusable [`crate::engine::StreamEngine`]: the calling thread
//!   pulls chunks from a [`StreamSource`] and feeds them through the
//!   lock-free ring; the engine's detection thread locates packets in
//!   stream order and `workers` decode threads handle them round-robin;
//!   results are reassembled in packet order. The report carries the
//!   measured throughput and the real-time factor (throughput over the
//!   source's sample rate) — the number that says whether this gateway
//!   keeps up with the radio.
//!
//! Packet decode reuses the existing batch path unchanged
//! ([`ConcurrentReceiver::decode_round`] → `DemodWorkspace` → pruned
//! zero-padded FFT), so every performance property of the per-symbol hot
//! path carries over to the streaming receiver.

use crate::detect::{GatewayConfig, PacketSpan, StreamDetector};
use crate::engine::{EngineError, StreamEngine};
use crate::source::StreamSource;
use netscatter::receiver::{ConcurrentReceiver, DecodedRound};
use netscatter_dsp::fft::FftError;
use netscatter_dsp::Complex64;

/// One decoded packet of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPacket {
    /// Sequence number in stream order (0-based).
    pub index: usize,
    /// Absolute stream index of the packet's first sample.
    pub start_sample: u64,
    /// The concurrent-round decode (per detected device: bin, preamble
    /// power, payload bits).
    pub round: DecodedRound,
}

/// The outcome of one [`run_stream`] session.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Decoded packets in stream order.
    pub packets: Vec<DecodedPacket>,
    /// Total samples consumed from the source.
    pub samples_in: u64,
    /// Packets dropped because the stream ended mid-packet.
    pub truncated: usize,
    /// Wall-clock duration of the session in seconds.
    pub elapsed_s: f64,
    /// Measured processing throughput in samples per second.
    pub samples_per_sec: f64,
    /// `samples_per_sec` over the source's sample rate: ≥ 1 means the
    /// gateway keeps up with the radio in real time.
    pub real_time_factor: f64,
    /// Chunks displaced by the ring's drop-oldest overflow policy (always 0
    /// under [`crate::engine::OverflowPolicy::Block`], the `run_stream`
    /// default).
    pub ring_dropped: u64,
}

impl GatewayReport {
    /// Packets whose decode detected at least one device (an energy-gate
    /// trigger that decodes to zero devices is a false alarm, not a round).
    pub fn detected_rounds(&self) -> usize {
        self.packets
            .iter()
            .filter(|p| !p.round.devices.is_empty())
            .count()
    }
}

/// The synchronous gateway: online detection plus inline decode.
#[derive(Debug, Clone)]
pub struct StreamGateway {
    detector: StreamDetector,
    assigned_bins: Vec<usize>,
    payload_symbols: usize,
    spans: Vec<PacketSpan>,
}

impl StreamGateway {
    /// Creates a gateway for `config`.
    pub fn new(config: &GatewayConfig) -> Result<Self, FftError> {
        Ok(Self {
            detector: StreamDetector::new(config)?,
            assigned_bins: config.assigned_bins.clone(),
            payload_symbols: config.payload_symbols,
            spans: Vec::new(),
        })
    }

    /// The receiver packets are decoded with.
    pub fn receiver(&self) -> &ConcurrentReceiver {
        self.detector.receiver()
    }

    /// Feeds one chunk and returns the packets completed by it, decoded
    /// inline on the calling thread.
    pub fn feed(&mut self, chunk: &[Complex64]) -> Result<Vec<DecodedPacket>, FftError> {
        self.spans.clear();
        let mut spans = std::mem::take(&mut self.spans);
        self.detector.push(chunk, &mut spans);
        let packets = spans
            .iter()
            .map(|span| {
                decode_span(
                    self.detector.receiver(),
                    span,
                    &self.assigned_bins,
                    self.payload_symbols,
                )
            })
            .collect::<Result<Vec<_>, _>>();
        self.spans = spans;
        packets
    }

    /// Ends the stream; returns the number of truncated packets.
    pub fn finish(&mut self) -> usize {
        self.detector.finish();
        self.detector.truncated()
    }
}

/// Decodes one located span through the batch receiver path. Shared by the
/// synchronous facade here and the engine's decode workers.
pub(crate) fn decode_span(
    receiver: &ConcurrentReceiver,
    span: &PacketSpan,
    assigned_bins: &[usize],
    payload_symbols: usize,
) -> Result<DecodedPacket, FftError> {
    let round = receiver.decode_round(&span.samples, 0, assigned_bins, payload_symbols)?;
    Ok(DecodedPacket {
        index: span.index,
        start_sample: span.start_sample,
        round,
    })
}

/// Runs the full threaded pipeline over `source` until it is exhausted and
/// returns the report. Deterministic for a deterministic source: the
/// engine's detection thread runs in stream order, and decoded packets are
/// reassembled by sequence number regardless of worker scheduling. The
/// configured overflow policy applies; under the default
/// [`crate::engine::OverflowPolicy::Block`] the session is lossless.
pub fn run_stream(
    source: &mut dyn StreamSource,
    config: &GatewayConfig,
) -> Result<GatewayReport, EngineError> {
    let mut engine = StreamEngine::spawn(config, source.sample_rate_hz())?;
    let chunk_samples = config.chunk_samples.max(1);
    let mut buf = vec![Complex64::ZERO; chunk_samples];
    loop {
        let got = source.fill(&mut buf);
        if got == 0 {
            break;
        }
        if engine.feed(&buf[..got]).is_err() {
            break; // engine torn down under us; shutdown() reports why
        }
        if got < chunk_samples {
            break; // short read = end of stream
        }
    }
    engine.shutdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplaySource;
    use netscatter_phy::distributed::OnOffModulator;
    use netscatter_phy::params::PhyProfile;
    use netscatter_phy::preamble::PreambleBuilder;

    /// A stream with `count` ideal single-device packets at varying gaps.
    fn stream_with_packets(bin: usize, bits: &[bool], count: usize) -> Vec<Complex64> {
        let params = PhyProfile::default().modulation.chirp();
        let mut pkt = PreambleBuilder::new(params, bin).build(0.0, 0.0, 1.0);
        pkt.extend(OnOffModulator::new(params, bin).modulate_payload(bits, 0.0, 0.0, 1.0));
        let mut stream = Vec::new();
        for i in 0..count {
            stream.extend(vec![Complex64::ZERO; 400 + 137 * i]);
            stream.extend(&pkt);
        }
        stream.extend(vec![Complex64::ZERO; 200]);
        stream
    }

    #[test]
    fn synchronous_gateway_decodes_every_packet() {
        let bits = vec![true, false, true, true, false, true];
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![128], bits.len());
        let stream = stream_with_packets(128, &bits, 3);
        let mut gw = StreamGateway::new(&cfg).unwrap();
        let mut packets = Vec::new();
        for chunk in stream.chunks(777) {
            packets.extend(gw.feed(chunk).unwrap());
        }
        assert_eq!(gw.finish(), 0);
        assert_eq!(packets.len(), 3);
        for p in &packets {
            assert_eq!(p.round.bits_for(128).unwrap(), &bits[..]);
        }
    }

    #[test]
    fn threaded_pipeline_matches_the_synchronous_gateway() {
        let bits = vec![true, true, false, true, false, false, true, true];
        let cfg = GatewayConfig {
            chunk_samples: 1000,
            ring_slots: 4,
            workers: 3,
            ..GatewayConfig::new(PhyProfile::default(), vec![64, 192], bits.len())
        };
        let stream = stream_with_packets(64, &bits, 4);

        let mut sync_packets = Vec::new();
        let mut gw = StreamGateway::new(&cfg).unwrap();
        for chunk in stream.chunks(cfg.chunk_samples) {
            sync_packets.extend(gw.feed(chunk).unwrap());
        }
        gw.finish();

        let mut source = ReplaySource::from_samples(stream, 500e3);
        let report = run_stream(&mut source, &cfg).unwrap();
        assert_eq!(report.packets, sync_packets);
        assert_eq!(report.samples_in, source.len() as u64);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.detected_rounds(), 4);
        assert!(report.samples_per_sec > 0.0);
        assert!(report.real_time_factor > 0.0);
    }

    #[test]
    fn empty_stream_yields_an_empty_report() {
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![0], 4);
        let mut source = ReplaySource::from_samples(Vec::new(), 500e3);
        let report = run_stream(&mut source, &cfg).unwrap();
        assert!(report.packets.is_empty());
        assert_eq!(report.samples_in, 0);
    }
}

//! A lock-free single-producer/single-consumer ring buffer.
//!
//! The gateway pipeline moves sample chunks from the producer thread (which
//! owns the [`crate::source::StreamSource`]) to the detector without taking
//! a lock on the hot path: the ring is a fixed array of slots indexed by two
//! monotonically increasing counters, `tail` (written only by the producer)
//! and `head` (written only by the consumer). Each side reads the other's
//! counter with `Acquire` ordering and publishes its own with `Release`, so
//! a slot is only ever touched by the side that provably owns it:
//!
//! * the producer may write slot `tail % capacity` iff `tail - head <
//!   capacity` (the ring is not full);
//! * the consumer may read slot `head % capacity` iff `head < tail` (the
//!   ring is not empty).
//!
//! Those two invariants are the entire safety argument for the two `unsafe`
//! blocks below. When its counterpart is not ready, a side spins with
//! [`std::thread::yield_now`] — the ring carries multi-kilobyte sample
//! chunks, so the handoff rate is a few thousand per second and the spin is
//! never hot. Dropping the producer closes the ring; the consumer drains
//! whatever was already published and then observes the end of stream.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one SPSC ring.
struct RingInner<T> {
    /// Slot storage; `Option` so drops of undrained items are handled by the
    /// normal `Drop` of the `Box` without any unsafe bookkeeping.
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Index of the next item to pop. Written only by the consumer.
    head: AtomicUsize,
    /// Index of the next free slot to push into. Written only by the
    /// producer.
    tail: AtomicUsize,
    /// Set when the producer is dropped or closes the stream explicitly.
    closed: AtomicBool,
}

// SAFETY: the head/tail ownership protocol documented on the module ensures
// a slot is never accessed by both sides at once, so sharing the ring across
// the two threads is sound whenever the items themselves may cross threads.
unsafe impl<T: Send> Sync for RingInner<T> {}
unsafe impl<T: Send> Send for RingInner<T> {}

/// The producing half of a ring created by [`spsc_ring`].
pub struct RingProducer<T> {
    ring: Arc<RingInner<T>>,
}

/// The consuming half of a ring created by [`spsc_ring`].
pub struct RingConsumer<T> {
    ring: Arc<RingInner<T>>,
}

/// Creates a bounded lock-free SPSC ring with `capacity` slots (≥ 1).
pub fn spsc_ring<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let capacity = capacity.max(1);
    let slots: Box<[UnsafeCell<Option<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(None)).collect();
    let ring = Arc::new(RingInner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (RingProducer { ring: ring.clone() }, RingConsumer { ring })
}

impl<T: Send> RingProducer<T> {
    /// Pushes `item`, spinning while the ring is full. Returns the item back
    /// if the consumer is gone (both counters frozen and the consumer handle
    /// dropped is indistinguishable from a slow consumer, so the producer
    /// instead detects closure via [`RingConsumer`] dropping its `Arc`).
    pub fn push(&self, item: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        loop {
            let head = ring.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < ring.slots.len() {
                let slot = &ring.slots[tail % ring.slots.len()];
                // SAFETY: `tail - head < capacity`, so the consumer cannot
                // be reading this slot (it only reads indices < tail), and
                // this thread is the only producer. Exclusive access holds
                // until the Release store below publishes the slot.
                unsafe { *slot.get() = Some(item) };
                ring.tail.store(tail.wrapping_add(1), Ordering::Release);
                return Ok(());
            }
            if Arc::strong_count(&self.ring) == 1 {
                // Consumer dropped its handle: nobody will ever drain us.
                return Err(item);
            }
            std::thread::yield_now();
        }
    }

    /// Marks the stream as finished. Also done implicitly on drop.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> RingConsumer<T> {
    /// Pops the next item, spinning while the ring is empty. Returns `None`
    /// once the producer has closed the ring *and* every published item has
    /// been drained.
    pub fn pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        loop {
            let tail = ring.tail.load(Ordering::Acquire);
            if head != tail {
                let slot = &ring.slots[head % ring.slots.len()];
                // SAFETY: `head < tail`, so the producer has published this
                // slot and will not touch it again until the Release store
                // below hands it back; this thread is the only consumer.
                let item = unsafe { (*slot.get()).take() };
                ring.head.store(head.wrapping_add(1), Ordering::Release);
                return Some(item.expect("published slot holds an item"));
            }
            if ring.closed.load(Ordering::Acquire) {
                // Re-check emptiness after observing the close flag: the
                // producer publishes items before closing.
                if ring.tail.load(Ordering::Acquire) == head {
                    return None;
                }
                continue;
            }
            std::thread::yield_now();
        }
    }

    /// Pops without blocking: `Ok(Some)` on an item, `Ok(None)` when closed
    /// and drained, `Err(RingEmpty)` when currently empty but still open.
    pub fn try_pop(&self) -> Result<Option<T>, RingEmpty> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head != tail {
            let slot = &ring.slots[head % ring.slots.len()];
            // SAFETY: as in `pop` — `head < tail` grants the consumer
            // exclusive access to this published slot.
            let item = unsafe { (*slot.get()).take() };
            ring.head.store(head.wrapping_add(1), Ordering::Release);
            return Ok(Some(item.expect("published slot holds an item")));
        }
        if ring.closed.load(Ordering::Acquire) && ring.tail.load(Ordering::Acquire) == head {
            return Ok(None);
        }
        Err(RingEmpty)
    }
}

/// The ring held no item at the moment of a [`RingConsumer::try_pop`], but
/// the producer is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEmpty;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_order_across_threads() {
        let (tx, rx) = spsc_ring::<u64>(4);
        let handle = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.push(i).expect("consumer alive");
            }
            // tx drops here, closing the ring.
        });
        let mut next = 0u64;
        while let Some(v) = rx.pop() {
            assert_eq!(v, next);
            next += 1;
        }
        assert_eq!(next, 10_000);
        handle.join().unwrap();
    }

    #[test]
    fn close_without_items_ends_the_stream() {
        let (tx, rx) = spsc_ring::<u8>(2);
        tx.close();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn try_pop_distinguishes_empty_from_closed() {
        let (tx, rx) = spsc_ring::<u8>(2);
        assert_eq!(rx.try_pop(), Err(RingEmpty));
        tx.push(7).unwrap();
        assert_eq!(rx.try_pop(), Ok(Some(7)));
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(None));
    }

    #[test]
    fn capacity_bounds_inflight_items_and_drains_after_close() {
        let (tx, rx) = spsc_ring::<usize>(3);
        for i in 0..3 {
            tx.push(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.pop(), Some(0));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn push_fails_once_the_consumer_is_gone() {
        let (tx, rx) = spsc_ring::<usize>(1);
        tx.push(1).unwrap();
        drop(rx);
        assert_eq!(tx.push(2), Err(2));
    }

    #[test]
    fn undrained_items_are_dropped_cleanly() {
        // An Arc payload would leak if slot drops were mishandled.
        let payload = Arc::new(42);
        let (tx, rx) = spsc_ring::<Arc<i32>>(4);
        tx.push(payload.clone()).unwrap();
        tx.push(payload.clone()).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}

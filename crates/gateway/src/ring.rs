//! A bounded lock-free ring buffer with per-slot sequence tickets.
//!
//! The gateway pipeline moves sample chunks from the producer thread (which
//! owns the [`crate::source::StreamSource`] or the daemon's socket reader)
//! to the detector without taking a lock on the hot path. The ring is a
//! fixed array of slots, each carrying an atomic *sequence ticket*, plus two
//! monotonically increasing counters, `tail` (push tickets) and `head` (pop
//! tickets):
//!
//! * slot `i % capacity` with `seq == i` is **free** and may be claimed by a
//!   pusher holding ticket `i`; after writing the item the pusher publishes
//!   `seq = i + 1`;
//! * slot `i % capacity` with `seq == i + 1` is **published** and may be
//!   claimed by a popper holding ticket `i`; after taking the item the
//!   popper recycles the slot with `seq = i + capacity`.
//!
//! Tickets are claimed by compare-and-swap on `tail`/`head`, so a slot is
//! only ever touched by the one thread that won its ticket — that is the
//! entire safety argument for the two `unsafe` blocks below. Relative to a
//! plain two-counter SPSC ring, the tickets buy one crucial extra freedom:
//! **the producer may also pop**. That is what implements the gateway's
//! drop-oldest backpressure policy ([`RingProducer::force_push`]): when the
//! ring is full, the producer dequeues (and drops) the oldest chunk instead
//! of blocking the socket reader, and the displacement is counted in a drop
//! metric both halves can read. The consumer's pop CAS makes the concurrent
//! producer-side displacement race-free.
//!
//! When its counterpart is not ready, a blocking side spins with
//! [`std::thread::yield_now`] — the ring carries multi-kilobyte sample
//! chunks, so the handoff rate is a few thousand per second and the spin is
//! never hot. Dropping the producer closes the ring; the consumer drains
//! whatever was already published and then observes the end of stream.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use netscatter_obs::{Counter, Gauge, Histogram};

/// Producer-side pressure telemetry for one ring.
///
/// Attached with [`RingProducer::set_telemetry`]; recording happens only
/// on the producer (the single thread that feels backpressure), so every
/// write is an uncontended relaxed atomic. The occupancy high-water mark
/// answers "how close did this stream come to dropping?", and the wait
/// histogram prices what the [`OverflowPolicy::Block`] policy actually
/// cost the feeder.
#[derive(Debug, Default)]
pub struct RingTelemetry {
    /// Highest queue depth observed immediately after a push.
    pub occupancy_hwm: Gauge,
    /// Pushes that found every slot taken (then either waited — Block —
    /// or displaced the oldest item — DropOldest).
    pub full_events: Counter,
    /// Nanoseconds a blocking [`RingProducer::push`] spent waiting for a
    /// free slot, one observation per full event.
    pub block_wait_ns: Histogram,
}

/// What the producer does when the ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Spin until the consumer frees a slot (lossless; backpressure
    /// propagates to the producer). The policy of [`crate::pipeline::run_stream`],
    /// where the producer owns a replayable source and may simply wait.
    #[default]
    Block,
    /// Displace the oldest queued item and count it as dropped (lossy;
    /// the producer never blocks). The policy of the daemon's socket
    /// ingest, where blocking the reader would stall the TCP peer and
    /// blow the kernel socket buffer instead.
    DropOldest,
}

/// One slot: the sequence ticket that encodes whose turn it is, plus the
/// item storage it guards.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

/// Shared state of one ring.
struct RingInner<T> {
    slots: Box<[Slot<T>]>,
    /// Next pop ticket. Claimed by CAS (consumer, or producer displacing).
    head: AtomicUsize,
    /// Next push ticket. Claimed by CAS.
    tail: AtomicUsize,
    /// Set when the producer is dropped or closes the stream explicitly.
    closed: AtomicBool,
    /// Items displaced by [`RingProducer::force_push`] since creation.
    dropped: AtomicU64,
}

// SAFETY: the ticket protocol documented on the module ensures a slot is
// never accessed by two threads at once, so sharing the ring across threads
// is sound whenever the items themselves may cross threads.
unsafe impl<T: Send> Sync for RingInner<T> {}
unsafe impl<T: Send> Send for RingInner<T> {}

impl<T> RingInner<T> {
    /// Occupied slots right now (approximate under concurrency: the two
    /// counters are loaded independently — good enough for telemetry).
    fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Claims a push ticket and stores `item`; gives `item` back when the
    /// ring is full at the moment of the attempt.
    fn try_enqueue(&self, item: T) -> Result<(), T> {
        let cap = self.slots.len();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(tail) as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: this thread won ticket `tail`, so until the
                        // Release store below publishes `seq = tail + 1` no
                        // other thread may touch this slot.
                        unsafe { *slot.value.get() = Some(item) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                // The slot still holds the item from one lap ago: full.
                return Err(item);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Claims a pop ticket and takes the item; `None` when the ring is
    /// empty at the moment of the attempt.
    fn try_dequeue(&self) -> Option<T> {
        let cap = self.slots.len();
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(head.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: this thread won ticket `head`, so it has
                        // exclusive access to this published slot until the
                        // Release store below recycles it for the producer.
                        let item = unsafe { (*slot.value.get()).take() };
                        slot.seq.store(head.wrapping_add(cap), Ordering::Release);
                        return Some(item.expect("published slot holds an item"));
                    }
                    Err(h) => head = h,
                }
            } else if dif < 0 {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

/// The producing half of a ring created by [`spsc_ring`].
pub struct RingProducer<T> {
    ring: Arc<RingInner<T>>,
    telemetry: Option<Arc<RingTelemetry>>,
}

/// The consuming half of a ring created by [`spsc_ring`].
pub struct RingConsumer<T> {
    ring: Arc<RingInner<T>>,
}

/// Creates a bounded lock-free ring with `capacity` slots (clamped to ≥ 2:
/// with a single slot the push ticket `t + 1` would collide with the
/// published ticket `t + 1` of the same slot and a full ring would look
/// free). The two halves are a single-producer/single-consumer pair in
/// ordinary use; the ticket protocol additionally lets the producer
/// displace the oldest item on overflow ([`RingProducer::force_push`]).
pub fn spsc_ring<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let capacity = capacity.max(2);
    let slots: Box<[Slot<T>]> = (0..capacity)
        .map(|i| Slot {
            seq: AtomicUsize::new(i),
            value: UnsafeCell::new(None),
        })
        .collect();
    let ring = Arc::new(RingInner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        dropped: AtomicU64::new(0),
    });
    (
        RingProducer {
            ring: ring.clone(),
            telemetry: None,
        },
        RingConsumer { ring },
    )
}

impl<T: Send> RingProducer<T> {
    /// Attaches pressure telemetry; subsequent pushes record into it.
    /// Recording stays producer-thread-only, so attach before handing the
    /// producer to the feeder.
    pub fn set_telemetry(&mut self, telemetry: Arc<RingTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Records a successful push (and the preceding wait, if any).
    #[inline]
    fn note_pushed(&self, wait_started: Option<Instant>) {
        if let Some(t) = &self.telemetry {
            t.occupancy_hwm.record_max(self.ring.len() as u64);
            if let Some(started) = wait_started {
                t.block_wait_ns.record_duration(started.elapsed());
            }
        }
    }

    /// Pushes `item`, spinning while the ring is full. Returns the item back
    /// if the consumer handle has been dropped (nobody will ever drain us).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut item = item;
        let mut wait_started = None;
        loop {
            match self.ring.try_enqueue(item) {
                Ok(()) => {
                    self.note_pushed(wait_started);
                    return Ok(());
                }
                Err(back) => item = back,
            }
            // First full attempt on an instrumented ring: count the event
            // and start the wait clock (off the hot path — we are blocked).
            if wait_started.is_none() {
                if let Some(t) = &self.telemetry {
                    t.full_events.incr();
                    wait_started = Some(Instant::now());
                }
            }
            if Arc::strong_count(&self.ring) == 1 {
                return Err(item);
            }
            std::thread::yield_now();
        }
    }

    /// Pushes without blocking; gives the item back inside [`RingFull`] when
    /// no slot is free.
    pub fn try_push(&self, item: T) -> Result<(), RingFull<T>> {
        match self.ring.try_enqueue(item) {
            Ok(()) => {
                self.note_pushed(None);
                Ok(())
            }
            Err(back) => Err(RingFull(back)),
        }
    }

    /// Pushes `item`, displacing (and dropping) the oldest queued items as
    /// needed instead of blocking — the ring's drop-oldest overflow policy.
    /// Returns how many items were displaced (0 when a slot was free); the
    /// same count accumulates in [`RingProducer::dropped`].
    pub fn force_push(&self, item: T) -> u64 {
        let mut displaced = 0u64;
        let mut item = item;
        loop {
            match self.ring.try_enqueue(item) {
                Ok(()) => {
                    if displaced > 0 {
                        self.ring.dropped.fetch_add(displaced, Ordering::Relaxed);
                        if let Some(t) = &self.telemetry {
                            t.full_events.incr();
                        }
                    }
                    self.note_pushed(None);
                    return displaced;
                }
                Err(back) => {
                    item = back;
                    // Dequeue-and-drop the oldest item; the consumer may win
                    // the race and drain it first, in which case a slot is
                    // now free anyway and the retry succeeds.
                    if self.ring.try_dequeue().is_some() {
                        displaced += 1;
                    }
                }
            }
        }
    }

    /// Items displaced by [`RingProducer::force_push`] since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }

    /// Marks the stream as finished. Also done implicitly on drop.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> RingConsumer<T> {
    /// Pops the next item, spinning while the ring is empty. Returns `None`
    /// once the producer has closed the ring *and* every published item has
    /// been drained.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Some(item) = self.ring.try_dequeue() {
                return Some(item);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // Re-check emptiness after observing the close flag: the
                // producer publishes items before closing, and the Acquire
                // load above synchronizes with that publication order.
                return self.ring.try_dequeue();
            }
            std::thread::yield_now();
        }
    }

    /// Pops without blocking: `Ok(Some)` on an item, `Ok(None)` when closed
    /// and drained, `Err(RingEmpty)` when currently empty but still open.
    pub fn try_pop(&self) -> Result<Option<T>, RingEmpty> {
        if let Some(item) = self.ring.try_dequeue() {
            return Ok(Some(item));
        }
        if self.ring.closed.load(Ordering::Acquire) {
            return Ok(self.ring.try_dequeue());
        }
        Err(RingEmpty)
    }

    /// Items displaced by [`RingProducer::force_push`] since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }
}

/// The ring held no item at the moment of a [`RingConsumer::try_pop`], but
/// the producer is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEmpty;

/// The ring had no free slot at the moment of a [`RingProducer::try_push`];
/// carries the rejected item back to the caller.
#[derive(Debug)]
pub struct RingFull<T>(pub T);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_order_across_threads() {
        let (tx, rx) = spsc_ring::<u64>(4);
        let handle = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.push(i).expect("consumer alive");
            }
            // tx drops here, closing the ring.
        });
        let mut next = 0u64;
        while let Some(v) = rx.pop() {
            assert_eq!(v, next);
            next += 1;
        }
        assert_eq!(next, 10_000);
        handle.join().unwrap();
    }

    #[test]
    fn close_without_items_ends_the_stream() {
        let (tx, rx) = spsc_ring::<u8>(2);
        tx.close();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn try_pop_distinguishes_empty_from_closed() {
        let (tx, rx) = spsc_ring::<u8>(2);
        assert_eq!(rx.try_pop(), Err(RingEmpty));
        tx.push(7).unwrap();
        assert_eq!(rx.try_pop(), Ok(Some(7)));
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(None));
    }

    #[test]
    fn capacity_bounds_inflight_items_and_drains_after_close() {
        let (tx, rx) = spsc_ring::<usize>(3);
        for i in 0..3 {
            tx.push(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.pop(), Some(0));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn push_fails_once_the_consumer_is_gone() {
        let (tx, rx) = spsc_ring::<usize>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(rx);
        assert_eq!(tx.push(3), Err(3));
    }

    #[test]
    fn try_push_reports_a_full_ring_without_blocking() {
        let (tx, rx) = spsc_ring::<usize>(2);
        tx.try_push(0).unwrap();
        tx.try_push(1).unwrap();
        let RingFull(back) = tx.try_push(2).unwrap_err();
        assert_eq!(back, 2);
        assert_eq!(rx.pop(), Some(0));
        tx.try_push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn force_push_displaces_the_oldest_and_counts_the_drops() {
        // The full-ring producer: with every slot taken, force_push drops
        // the *oldest* queued item (never the incoming one), and the
        // displacement is counted on both halves.
        let (tx, rx) = spsc_ring::<usize>(3);
        for i in 0..3 {
            assert_eq!(tx.force_push(i), 0, "room left, nothing displaced");
        }
        assert_eq!(tx.force_push(3), 1, "full ring displaces one");
        assert_eq!(tx.force_push(4), 1);
        assert_eq!(tx.dropped(), 2);
        assert_eq!(rx.dropped(), 2);
        drop(tx);
        // The two oldest items (0, 1) are gone; the newest survive in order.
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn force_push_races_a_draining_consumer_without_loss_or_dup() {
        // Producer force-pushing into a tiny ring while the consumer drains
        // flat out: every popped value must be strictly increasing (no
        // duplicates, no reordering), and pops + drops must account for
        // every push exactly once.
        let (tx, rx) = spsc_ring::<u64>(2);
        let producer = std::thread::spawn(move || {
            let mut displaced = 0u64;
            for i in 0..50_000u64 {
                displaced += tx.force_push(i);
            }
            displaced
        });
        let mut got = 0u64;
        let mut last: Option<u64> = None;
        while let Some(v) = rx.pop() {
            if let Some(prev) = last {
                assert!(v > prev, "out of order: {v} after {prev}");
            }
            last = Some(v);
            got += 1;
        }
        let displaced = producer.join().unwrap();
        assert_eq!(
            got + displaced,
            50_000,
            "pops + drops must cover every push"
        );
        assert_eq!(rx.dropped(), displaced);
    }

    #[test]
    fn telemetry_records_high_water_and_full_events() {
        let (mut tx, rx) = spsc_ring::<usize>(3);
        let t = Arc::new(RingTelemetry::default());
        tx.set_telemetry(t.clone());
        tx.push(0).unwrap();
        tx.push(1).unwrap();
        assert_eq!(t.occupancy_hwm.get(), 2);
        assert_eq!(tx.force_push(2), 0, "room left");
        assert_eq!(t.occupancy_hwm.get(), 3);
        assert_eq!(t.full_events.get(), 0);
        assert_eq!(tx.force_push(3), 1, "full ring displaces");
        assert_eq!(t.full_events.get(), 1);
        // Consumer gone + full ring: the blocking push counts the full
        // event before giving up.
        drop(rx);
        assert_eq!(tx.push(9), Err(9));
        assert_eq!(t.full_events.get(), 2);
        assert_eq!(
            t.block_wait_ns.snapshot().count(),
            0,
            "no successful waited push"
        );
    }

    #[test]
    fn undrained_items_are_dropped_cleanly() {
        // An Arc payload would leak if slot drops were mishandled.
        let payload = Arc::new(42);
        let (tx, rx) = spsc_ring::<Arc<i32>>(4);
        tx.push(payload.clone()).unwrap();
        tx.push(payload.clone()).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn displaced_items_are_dropped_cleanly() {
        let payload = Arc::new(7);
        let (tx, rx) = spsc_ring::<Arc<i32>>(2);
        tx.push(payload.clone()).unwrap();
        tx.push(payload.clone()).unwrap();
        assert_eq!(tx.force_push(payload.clone()), 1);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}

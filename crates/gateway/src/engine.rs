//! The reusable per-stream pipeline engine.
//!
//! [`StreamEngine`] is the threaded detection/decode topology of the
//! gateway, factored out of the one-shot [`crate::pipeline::run_stream`]
//! session so a long-lived daemon can run one engine per ingest stream with
//! an explicit lifecycle:
//!
//! * **spawn** — [`StreamEngine::spawn`] starts the detection thread (pops
//!   the ring, runs the [`crate::detect::StreamDetector`] in stream order,
//!   deals completed spans round-robin) and the decode worker pool (each
//!   worker owns a receiver clone and reuses the batch
//!   `ConcurrentReceiver::decode_round` path);
//! * **feed** — [`StreamEngine::feed`] copies a chunk of samples into the
//!   lock-free ring. Backpressure follows the configured
//!   [`OverflowPolicy`]: `Block` spins until the detector frees a slot
//!   (lossless replay), `DropOldest` displaces the oldest queued chunk and
//!   counts it (the daemon's socket ingest — the TCP reader is never
//!   blocked);
//! * **drain** — [`StreamEngine::drain`] collects decoded packets *in
//!   stream order* without blocking, so a serving loop can publish frames
//!   while the stream is still flowing;
//! * **shutdown** — [`StreamEngine::shutdown`] closes the ring, joins the
//!   detection thread and every worker (no detached threads, no lost
//!   in-flight rounds), and returns the final [`GatewayReport`] carrying
//!   whatever packets were not already drained plus the session counters
//!   (samples, truncated packets, ring drops, throughput).
//!
//! Dropping an engine without calling `shutdown` performs the same join —
//! worker threads are never leaked past the producer's lifetime.
//!
//! # Supervision
//!
//! The detection thread and every decode worker run under
//! [`std::panic::catch_unwind`] at their thread roots. A panic anywhere in
//! the decode path therefore cannot wedge the engine: the panicking
//! thread's channel endpoints drop (disconnecting its peers), the
//! detection loop stops cleanly when a worker's job queue goes away, and
//! `shutdown` joins every remaining thread before converting the recorded
//! panic into a typed [`EngineError::WorkerPanic`] carrying the partial
//! [`GatewayReport`] — everything decoded before the failure is preserved,
//! and no caller ever re-panics on `join`.

use crate::detect::{DetectTelemetry, GatewayConfig, PacketSpan, StreamDetector};
use crate::pipeline::{decode_span, DecodedPacket, GatewayReport, PipelineTelemetry};
use crate::ring::{spsc_ring, RingConsumer, RingProducer, RingTelemetry};
use netscatter_dsp::fft::FftError;
use netscatter_dsp::Complex64;
use netscatter_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

pub use crate::ring::OverflowPolicy;

/// A chunk in flight between the feeder and the detector.
struct Chunk {
    samples: Vec<Complex64>,
    /// When [`StreamEngine::feed`] accepted these samples — the start of
    /// the ingest→emit latency clock for every packet this chunk
    /// completes.
    ingested_at: Instant,
}

/// One located span on its way to a decode worker, with the timestamps
/// the worker needs to price its queue.
struct Job {
    span: PacketSpan,
    /// Ingest time of the chunk whose samples completed this span.
    ingested_at: Instant,
    /// When the detection thread dispatched the span to the worker queue.
    enqueued_at: Instant,
}

/// A decoded packet plus its ingest timestamp, as handed out by
/// [`StreamEngine::drain_timed`] — the serving layer subtracts
/// `ingested_at` from its own emit time to get the end-to-end
/// ingest→publish frame latency.
#[derive(Debug, Clone)]
pub struct TimedPacket {
    /// The decoded packet.
    pub packet: DecodedPacket,
    /// When the feed accepted the chunk that completed this packet.
    pub ingested_at: Instant,
}

/// Counters shared between the engine handle and its detection thread.
#[derive(Debug, Default)]
struct EngineStats {
    /// Samples the detector has consumed from the ring.
    samples_processed: AtomicU64,
}

/// The live per-stage telemetry of one [`StreamEngine`]: the handles its
/// ring, detector, and decode workers record into, shareable (via
/// [`StreamEngine::telemetry`]) with a metrics endpoint that scrapes
/// mid-stream. Snapshots into the plain-data
/// [`crate::pipeline::PipelineTelemetry`] carried by every
/// [`GatewayReport`].
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// Ring pressure (occupancy high-water mark, full events, block waits).
    pub ring: Arc<RingTelemetry>,
    /// Detection latency (energy gate → preamble anchor).
    pub detect: Arc<DetectTelemetry>,
    /// Span dispatch → decode start, per span, in nanoseconds.
    pub queue_wait_ns: Histogram,
    /// Decode service time per span, in nanoseconds.
    pub decode_ns: Histogram,
}

impl EngineTelemetry {
    /// A plain-data copy of the current distributions.
    pub fn snapshot(&self) -> PipelineTelemetry {
        PipelineTelemetry {
            ring_occupancy_hwm: self.ring.occupancy_hwm.get(),
            ring_full_events: self.ring.full_events.get(),
            ring_block_wait_ns: self.ring.block_wait_ns.snapshot(),
            detect_gate_to_anchor_samples: self.detect.gate_to_anchor_samples.snapshot(),
            detect_gate_to_anchor_ns: self.detect.gate_to_anchor_ns.snapshot(),
            queue_wait_ns: self.queue_wait_ns.snapshot(),
            decode_ns: self.decode_ns.snapshot(),
        }
    }
}

/// What the detection thread hands back when it exits.
struct DetectorExit {
    truncated: usize,
    /// Panic message when the detection loop died instead of draining.
    panic: Option<String>,
}

/// Renders a caught panic payload as a message (panics carry `&str` or
/// `String` payloads in practice; anything else is labeled as opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a supervised engine failed: a decode error, a panic in one of its
/// threads (converted by the supervision layer — never re-raised), or an
/// invalid engine configuration.
#[derive(Debug)]
pub enum EngineError {
    /// The decode path reported an FFT error.
    Fft(FftError),
    /// A supervised thread panicked; the engine was torn down cleanly
    /// (every other thread joined) and the partial report preserved.
    WorkerPanic(Box<PanicReport>),
    /// The engine configuration is invalid (e.g. zero channels).
    Config(String),
}

/// The details of a supervised panic, including everything the engine had
/// decoded before the failing thread died.
#[derive(Debug)]
pub struct PanicReport {
    /// Which thread died: `"detector"` or `"decode-worker"`.
    pub role: &'static str,
    /// The panic payload, rendered as text.
    pub message: String,
    /// The partial session report: packets decoded before the panic,
    /// counters up to teardown.
    pub report: GatewayReport,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Fft(e) => write!(f, "{e}"),
            EngineError::WorkerPanic(p) => {
                write!(f, "{} thread panicked: {}", p.role, p.message)
            }
            EngineError::Config(message) => write!(f, "invalid engine configuration: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FftError> for EngineError {
    fn from(e: FftError) -> Self {
        EngineError::Fft(e)
    }
}

/// The engine died before the feed could be accepted — its detection thread
/// is gone (shutdown already started, or a decode panic tore it down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl std::fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream engine is shut down")
    }
}

impl std::error::Error for EngineClosed {}

/// One live per-stream pipeline: ring → detector thread → decode worker
/// pool → in-order reassembly. See the module docs for the lifecycle.
pub struct StreamEngine {
    producer: Option<RingProducer<Chunk>>,
    detector: Option<JoinHandle<DetectorExit>>,
    workers: Vec<JoinHandle<Option<String>>>,
    results: mpsc::Receiver<Result<TimedPacket, FftError>>,
    stats: Arc<EngineStats>,
    telemetry: Arc<EngineTelemetry>,
    policy: OverflowPolicy,
    sample_rate_hz: f64,
    started: Instant,
    /// Samples accepted by `feed` (dropped chunks included).
    samples_fed: u64,
    /// Out-of-order decoded packets waiting for their predecessors.
    reorder: Vec<TimedPacket>,
    /// Sequence number the next in-order packet must carry.
    next_emit: usize,
    /// First decode error observed (reported at shutdown).
    error: Option<FftError>,
    /// First supervised panic observed at join time (role, message).
    panic: Option<(&'static str, String)>,
    /// Detector-exit data once joined.
    truncated: usize,
    /// Ring-drop total cached when the producer handle is released.
    final_dropped: u64,
}

impl StreamEngine {
    /// Spawns the detection thread and decode worker pool for `config`.
    /// `sample_rate_hz` is the ingest stream's sample rate, used for the
    /// report's real-time factor.
    pub fn spawn(config: &GatewayConfig, sample_rate_hz: f64) -> Result<Self, FftError> {
        Self::spawn_inner(config, sample_rate_hz, None)
    }

    /// As [`StreamEngine::spawn`], with an optional gate the detection
    /// thread spins on before its first pop — lets tests stall the consumer
    /// deterministically to exercise the overflow policy.
    fn spawn_inner(
        config: &GatewayConfig,
        sample_rate_hz: f64,
        hold: Option<Arc<std::sync::atomic::AtomicBool>>,
    ) -> Result<Self, FftError> {
        let mut detector = StreamDetector::new(config)?;
        let telemetry = Arc::new(EngineTelemetry::default());
        detector.set_telemetry(telemetry.detect.clone());
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let (mut ring_tx, ring_rx) = spsc_ring::<Chunk>(config.ring_slots.max(1));
        ring_tx.set_telemetry(telemetry.ring.clone());
        let (result_tx, result_rx) = mpsc::channel::<Result<TimedPacket, FftError>>();
        let stats = Arc::new(EngineStats::default());

        // Decode workers: each owns a receiver clone and drains its private
        // job queue; spans are dealt round-robin by sequence number.
        let mut job_txs: Vec<mpsc::Sender<Job>> = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            job_txs.push(job_tx);
            let result_tx = result_tx.clone();
            let receiver = detector.receiver().clone();
            let bins = config.assigned_bins.clone();
            let payload_symbols = config.payload_symbols;
            let fault_span = config.fault_panic_span;
            let telemetry = telemetry.clone();
            // Supervised thread root: a panic in the decode path unwinds to
            // here, drops the worker's channel endpoints (disconnecting the
            // detector and the reassembly side cleanly) and is handed back
            // as a message for join-time conversion into EngineError.
            worker_handles.push(std::thread::spawn(move || -> Option<String> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    while let Ok(job) = job_rx.recv() {
                        let Job {
                            span,
                            ingested_at,
                            enqueued_at,
                        } = job;
                        if fault_span == Some(span.index) {
                            panic!("injected decode fault (chaos): span {}", span.index);
                        }
                        let started = Instant::now();
                        telemetry
                            .queue_wait_ns
                            .record_duration(started.saturating_duration_since(enqueued_at));
                        let decoded = decode_span(&receiver, &span, &bins, payload_symbols);
                        telemetry.decode_ns.record_duration(started.elapsed());
                        let timed = decoded.map(|packet| TimedPacket {
                            packet,
                            ingested_at,
                        });
                        if result_tx.send(timed).is_err() {
                            break;
                        }
                    }
                }))
                .err()
                .map(|p| panic_message(p.as_ref()))
            }));
        }
        drop(result_tx);

        let det_stats = stats.clone();
        let detector_handle = std::thread::spawn(move || {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                detection_loop(detector, ring_rx, job_txs, det_stats, hold)
            })) {
                Ok(exit) => exit,
                Err(p) => DetectorExit {
                    truncated: 0,
                    panic: Some(panic_message(p.as_ref())),
                },
            }
        });

        Ok(Self {
            producer: Some(ring_tx),
            detector: Some(detector_handle),
            workers: worker_handles,
            results: result_rx,
            stats,
            telemetry,
            policy: config.overflow,
            sample_rate_hz,
            started: Instant::now(),
            samples_fed: 0,
            reorder: Vec::new(),
            next_emit: 0,
            error: None,
            panic: None,
            truncated: 0,
            final_dropped: 0,
        })
    }

    /// The ingest stream's sample rate the engine was spawned with.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Samples accepted by [`StreamEngine::feed`] so far (samples inside
    /// chunks later displaced by the overflow policy included).
    pub fn samples_fed(&self) -> u64 {
        self.samples_fed
    }

    /// Samples the detection thread has consumed from the ring so far.
    pub fn samples_processed(&self) -> u64 {
        self.stats.samples_processed.load(Ordering::Relaxed)
    }

    /// Chunks displaced by the drop-oldest overflow policy so far.
    pub fn ring_dropped(&self) -> u64 {
        self.producer
            .as_ref()
            .map_or(self.final_dropped, |p| p.dropped())
    }

    /// The engine's live stage telemetry — share with a metrics endpoint
    /// to expose per-stage histograms while the stream is still flowing.
    pub fn telemetry(&self) -> Arc<EngineTelemetry> {
        self.telemetry.clone()
    }

    /// Copies `samples` into the ring as one chunk, applying the overflow
    /// policy. Returns how many chunks the push displaced (always 0 under
    /// [`OverflowPolicy::Block`]).
    pub fn feed(&mut self, samples: &[Complex64]) -> Result<u64, EngineClosed> {
        if samples.is_empty() {
            return Ok(0);
        }
        let producer = self.producer.as_ref().ok_or(EngineClosed)?;
        self.samples_fed += samples.len() as u64;
        let chunk = Chunk {
            samples: samples.to_vec(),
            ingested_at: Instant::now(),
        };
        match self.policy {
            OverflowPolicy::Block => producer.push(chunk).map(|()| 0).map_err(|_| EngineClosed),
            OverflowPolicy::DropOldest => Ok(producer.force_push(chunk)),
        }
    }

    /// Collects every packet decoded so far, in stream order, without
    /// blocking. Packets whose predecessors are still in flight are held
    /// back until the gap fills.
    pub fn drain(&mut self) -> Vec<DecodedPacket> {
        self.drain_timed().into_iter().map(|t| t.packet).collect()
    }

    /// As [`StreamEngine::drain`], keeping each packet's ingest timestamp
    /// so a serving loop can stamp end-to-end ingest→emit frame latency.
    pub fn drain_timed(&mut self) -> Vec<TimedPacket> {
        while let Ok(decoded) = self.results.try_recv() {
            self.stash(decoded);
        }
        self.emit_ready()
    }

    /// Ends the stream: closes the ring, joins the detection thread and the
    /// worker pool, drains the in-flight remainder and returns the final
    /// report. `packets` carries only what was not already handed out by
    /// [`StreamEngine::drain`]. A supervised panic comes back as
    /// [`EngineError::WorkerPanic`] *after* every remaining thread has been
    /// joined, with the partial report inside — shutdown never hangs and
    /// never re-panics.
    pub fn shutdown(mut self) -> Result<GatewayReport, EngineError> {
        self.teardown();
        let elapsed_s = self.started.elapsed().as_secs_f64().max(1e-12);
        let samples_in = self.samples_processed();
        let samples_per_sec = samples_in as f64 / elapsed_s;
        let packets = self.emit_ready().into_iter().map(|t| t.packet).collect();
        let report = GatewayReport {
            packets,
            samples_in,
            truncated: self.truncated,
            elapsed_s,
            samples_per_sec,
            real_time_factor: samples_per_sec / self.sample_rate_hz,
            ring_dropped: self.final_dropped,
            telemetry: self.telemetry.snapshot(),
        };
        if let Some((role, message)) = self.panic.take() {
            return Err(EngineError::WorkerPanic(Box::new(PanicReport {
                role,
                message,
                report,
            })));
        }
        if let Some(e) = self.error.take() {
            return Err(EngineError::Fft(e));
        }
        Ok(report)
    }

    /// Closes the ring and joins every thread, folding the remaining decode
    /// results into the reorder buffer and recording (not re-raising) any
    /// panic a supervised thread died with. Idempotent.
    fn teardown(&mut self) {
        if let Some(producer) = self.producer.take() {
            self.final_dropped = producer.dropped();
            drop(producer); // closes the ring; the detector drains and exits
        }
        if let Some(detector) = self.detector.take() {
            match detector.join() {
                Ok(exit) => {
                    self.truncated = exit.truncated;
                    if let Some(message) = exit.panic {
                        self.note_panic("detector", message);
                    }
                }
                // The catch_unwind root makes this unreachable in practice;
                // record it rather than re-panic if it ever happens.
                Err(p) => self.note_panic("detector", panic_message(p.as_ref())),
            }
        }
        for worker in std::mem::take(&mut self.workers) {
            match worker.join() {
                Ok(Some(message)) => self.note_panic("decode-worker", message),
                Ok(None) => {}
                Err(p) => self.note_panic("decode-worker", panic_message(p.as_ref())),
            }
        }
        // All senders are gone: drain the channel to the end.
        while let Ok(decoded) = self.results.try_recv() {
            self.stash(decoded);
        }
    }

    /// Records the first supervised panic; later ones are redundant (one
    /// dead thread disconnects its peers, which then exit cleanly).
    fn note_panic(&mut self, role: &'static str, message: String) {
        if self.panic.is_none() {
            self.panic = Some((role, message));
        }
    }

    /// Buffers one decode result, recording the first error.
    fn stash(&mut self, decoded: Result<TimedPacket, FftError>) {
        match decoded {
            Ok(packet) => self.reorder.push(packet),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
    }

    /// Moves the in-order prefix out of the reorder buffer: packets
    /// `next_emit, next_emit + 1, …` up to the first gap.
    fn emit_ready(&mut self) -> Vec<TimedPacket> {
        self.reorder.sort_by_key(|t| t.packet.index);
        let ready = self
            .reorder
            .iter()
            .enumerate()
            .take_while(|(i, t)| t.packet.index == self.next_emit + i)
            .count();
        self.next_emit += ready;
        self.reorder.drain(..ready).collect()
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// The detection thread: pops chunks in stream order, advances the state
/// machine, deals completed spans to the workers round-robin.
fn detection_loop(
    mut detector: StreamDetector,
    ring: RingConsumer<Chunk>,
    job_txs: Vec<mpsc::Sender<Job>>,
    stats: Arc<EngineStats>,
    hold: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> DetectorExit {
    if let Some(gate) = hold {
        while gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
    let workers = job_txs.len();
    let mut spans = Vec::new();
    'stream: while let Some(chunk) = ring.pop() {
        stats
            .samples_processed
            .fetch_add(chunk.samples.len() as u64, Ordering::Relaxed);
        detector.push(&chunk.samples, &mut spans);
        for span in spans.drain(..) {
            let worker = span.index % workers;
            let job = Job {
                span,
                // The chunk whose samples completed this span is the one
                // being processed right now, so its ingest time starts the
                // packet's end-to-end latency clock.
                ingested_at: chunk.ingested_at,
                enqueued_at: Instant::now(),
            };
            if job_txs[worker].send(job).is_err() {
                // That worker died (panicked): stop consuming — dropping
                // the ring consumer unblocks the feeder, and teardown will
                // surface the worker's panic as EngineError::WorkerPanic.
                break 'stream;
            }
        }
    }
    detector.finish();
    DetectorExit {
        truncated: detector.truncated(),
        panic: None,
    }
}

/// A sharded gateway: `K` independent 500 kHz channels, each served by its
/// own [`StreamEngine`] (one detector thread plus a private decode worker
/// pool), under one shared thread budget.
///
/// NetScatter's gateway listens to several adjacent 500 kHz channels at
/// once (§5: three channels triple the device population). The channels
/// are fully independent at the PHY level — separate detectors, separate
/// noise-floor estimates, separate packet sequence numbers — so the shard
/// boundary is exactly the channel boundary and no cross-channel
/// synchronization exists anywhere on the hot path.
///
/// **Thread budget.** `config.workers` is interpreted as the *total*
/// decode-worker budget across all channels (`0` resolves to the available
/// parallelism, as for a single engine). Each channel receives its fair
/// share, never less than one worker; the first `budget % channels`
/// channels absorb the remainder. Each channel additionally owns its
/// detection thread, mirroring how a multi-channel SDR frontend dedicates
/// a DDC per channel.
///
/// The lifecycle mirrors [`StreamEngine`]: `spawn` → `feed`/`drain` (now
/// channel-indexed) → `shutdown`, which returns per-channel
/// [`GatewayReport`]s plus aggregate counters via
/// [`crate::pipeline::MultiChannelReport`].
pub struct MultiChannelEngine {
    engines: Vec<StreamEngine>,
    sample_rate_hz: f64,
    started: Instant,
}

impl MultiChannelEngine {
    /// Spawns `channels` independent per-channel engines for `config`,
    /// splitting the worker budget as described on the type.
    ///
    /// Returns [`EngineError::Config`] when `channels` is zero.
    pub fn spawn(
        config: &GatewayConfig,
        channels: usize,
        sample_rate_hz: f64,
    ) -> Result<Self, EngineError> {
        if channels == 0 {
            return Err(EngineError::Config(
                "channel count must be at least 1".to_string(),
            ));
        }
        let budget = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let mut engines = Vec::with_capacity(channels);
        for channel in 0..channels {
            let mut per_channel = config.clone();
            per_channel.workers =
                (budget / channels + usize::from(channel < budget % channels)).max(1);
            engines.push(StreamEngine::spawn(&per_channel, sample_rate_hz)?);
        }
        Ok(Self {
            engines,
            sample_rate_hz,
            started: Instant::now(),
        })
    }

    /// Number of channels this engine was spawned with (≥ 1).
    pub fn channels(&self) -> usize {
        self.engines.len()
    }

    /// The per-channel ingest sample rate the engine was spawned with.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Decode workers serving `channel` (the shard's slice of the budget).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range; validate against
    /// [`Self::channels`] when the index comes from the wire.
    pub fn channel_workers(&self, channel: usize) -> usize {
        self.engines[channel].workers.len()
    }

    /// Live telemetry handle for `channel`'s engine; see
    /// [`StreamEngine::telemetry`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range; validate against
    /// [`Self::channels`] when the index comes from the wire.
    pub fn channel_telemetry(&self, channel: usize) -> Arc<EngineTelemetry> {
        self.engines[channel].telemetry()
    }

    /// Feeds one chunk into `channel`'s ring, applying that channel's
    /// overflow policy. Returns how many chunks the push displaced.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range; validate against
    /// [`Self::channels`] when the index comes from the wire.
    pub fn feed(&mut self, channel: usize, samples: &[Complex64]) -> Result<u64, EngineClosed> {
        self.engines[channel].feed(samples)
    }

    /// Collects `channel`'s packets decoded so far, in that channel's
    /// stream order, without blocking.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn drain(&mut self, channel: usize) -> Vec<DecodedPacket> {
        self.engines[channel].drain()
    }

    /// Drains every channel, tagging each packet with its channel index.
    /// Within one channel the packets are in stream order.
    pub fn drain_all(&mut self) -> Vec<(usize, DecodedPacket)> {
        let mut out = Vec::new();
        for (channel, engine) in self.engines.iter_mut().enumerate() {
            out.extend(engine.drain().into_iter().map(|p| (channel, p)));
        }
        out
    }

    /// Total samples consumed from all channel rings so far.
    pub fn samples_processed(&self) -> u64 {
        self.engines
            .iter()
            .map(StreamEngine::samples_processed)
            .sum()
    }

    /// Shuts every channel down (closing rings, joining all detection and
    /// worker threads) and returns the per-channel reports plus aggregate
    /// counters. The first channel error — a supervised panic or decode
    /// error — is returned after *all* channels are torn down, so no
    /// thread outlives the call.
    pub fn shutdown(self) -> Result<crate::pipeline::MultiChannelReport, EngineError> {
        let mut reports = Vec::with_capacity(self.engines.len());
        let mut first_error = None;
        for engine in self.engines {
            match engine.shutdown() {
                Ok(report) => reports.push(report),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(crate::pipeline::MultiChannelReport::new(
            reports,
            self.started.elapsed().as_secs_f64().max(1e-12),
            self.sample_rate_hz,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_phy::distributed::OnOffModulator;
    use netscatter_phy::params::PhyProfile;
    use netscatter_phy::preamble::PreambleBuilder;
    use std::sync::atomic::AtomicBool;

    /// A stream with `count` ideal single-device packets at varying gaps.
    fn stream_with_packets(bin: usize, bits: &[bool], count: usize) -> Vec<Complex64> {
        let params = PhyProfile::default().modulation.chirp();
        let mut pkt = PreambleBuilder::new(params, bin).build(0.0, 0.0, 1.0);
        pkt.extend(OnOffModulator::new(params, bin).modulate_payload(bits, 0.0, 0.0, 1.0));
        let mut stream = Vec::new();
        for i in 0..count {
            stream.extend(vec![Complex64::ZERO; 400 + 137 * i]);
            stream.extend(&pkt);
        }
        stream.extend(vec![Complex64::ZERO; 200]);
        stream
    }

    #[test]
    fn shutdown_drains_every_in_flight_round() {
        // Feed the whole stream and shut down immediately: every packet the
        // detector saw must come back in the report — joined workers, no
        // lost in-flight rounds.
        let bits = vec![true, false, true, true, false, true];
        let cfg = GatewayConfig {
            workers: 3,
            ..GatewayConfig::new(PhyProfile::default(), vec![128], bits.len())
        };
        let stream = stream_with_packets(128, &bits, 5);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        for chunk in stream.chunks(1000) {
            engine.feed(chunk).unwrap();
        }
        let report = engine.shutdown().unwrap();
        assert_eq!(report.packets.len(), 5);
        assert_eq!(report.truncated, 0);
        assert_eq!(report.ring_dropped, 0);
        assert_eq!(report.samples_in, stream.len() as u64);
        for (i, p) in report.packets.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.round.bits_for(128).unwrap(), &bits[..]);
        }
    }

    #[test]
    fn drain_hands_out_packets_in_stream_order() {
        let bits = vec![true, true, false, true];
        let cfg = GatewayConfig {
            workers: 2,
            ..GatewayConfig::new(PhyProfile::default(), vec![64], bits.len())
        };
        let stream = stream_with_packets(64, &bits, 4);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        let mut drained = Vec::new();
        for chunk in stream.chunks(777) {
            engine.feed(chunk).unwrap();
            drained.extend(engine.drain());
        }
        // Whatever was still in flight at the end arrives with the report.
        let report = engine.shutdown().unwrap();
        drained.extend(report.packets);
        assert_eq!(drained.len(), 4);
        for (i, p) in drained.iter().enumerate() {
            assert_eq!(p.index, i, "drain must preserve stream order");
        }
    }

    #[test]
    fn telemetry_tracks_every_pipeline_stage() {
        let bits = vec![true, false, false, true, true];
        let cfg = GatewayConfig {
            workers: 2,
            ..GatewayConfig::new(PhyProfile::default(), vec![96], bits.len())
        };
        let stream = stream_with_packets(96, &bits, 4);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        let live = engine.telemetry();
        for chunk in stream.chunks(900) {
            engine.feed(chunk).unwrap();
        }
        let report = engine.shutdown().unwrap();
        assert_eq!(report.packets.len(), 4);

        let t = &report.telemetry;
        // One gate → anchor measurement per detected packet, each covering
        // at least the sync search it took to anchor.
        assert_eq!(t.detect_gate_to_anchor_samples.count(), 4);
        assert_eq!(t.detect_gate_to_anchor_ns.count(), 4);
        assert!(t.detect_gate_to_anchor_samples.min > 0);
        // Every span passed through the decode queue exactly once.
        assert_eq!(t.queue_wait_ns.count(), 4);
        assert_eq!(t.decode_ns.count(), 4);
        assert!(t.decode_ns.sum > 0, "decode work takes measurable time");
        // The producer pushed chunks, so the ring held at least one. The
        // feeder may outrun the detector, so full events are allowed — but
        // under the blocking policy each one must have timed its wait.
        assert!(t.ring_occupancy_hwm >= 1);
        assert_eq!(t.ring_block_wait_ns.count(), t.ring_full_events);
        // The shutdown snapshot and the live handle agree.
        assert_eq!(live.decode_ns.snapshot().count(), 4);
    }

    #[test]
    fn drain_timed_reports_monotone_ingest_stamps() {
        let bits = vec![false, true, true];
        let cfg = GatewayConfig {
            workers: 1,
            ..GatewayConfig::new(PhyProfile::default(), vec![32], bits.len())
        };
        let stream = stream_with_packets(32, &bits, 3);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        let spawned = Instant::now();
        let mut timed = Vec::new();
        for chunk in stream.chunks(512) {
            engine.feed(chunk).unwrap();
            timed.extend(engine.drain_timed());
        }
        loop {
            timed.extend(engine.drain_timed());
            if timed.len() == 3 {
                break;
            }
            std::thread::yield_now();
        }
        for (i, t) in timed.iter().enumerate() {
            assert_eq!(t.packet.index, i);
            assert!(t.ingested_at >= spawned);
            assert!(t.ingested_at <= Instant::now());
        }
        // Later packets finish on later (or equal) chunks.
        for pair in timed.windows(2) {
            assert!(pair[0].ingested_at <= pair[1].ingested_at);
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn stalled_consumer_overflow_drops_surface_in_the_report() {
        // Deterministic overflow: the detection thread is gated before its
        // first pop, so every chunk beyond the ring capacity must displace
        // the oldest queued one. The drop count surfaces in the
        // GatewayReport, and only the surviving chunks are processed.
        let cfg = GatewayConfig {
            ring_slots: 2,
            workers: 1,
            overflow: OverflowPolicy::DropOldest,
            ..GatewayConfig::new(PhyProfile::default(), vec![0], 4)
        };
        let hold = Arc::new(AtomicBool::new(true));
        let mut engine = StreamEngine::spawn_inner(&cfg, 500e3, Some(hold.clone())).unwrap();
        let chunk = vec![Complex64::ZERO; 256];
        for _ in 0..10 {
            engine.feed(&chunk).unwrap();
        }
        assert_eq!(engine.ring_dropped(), 8, "2 of 10 chunks fit a 2-slot ring");
        assert_eq!(engine.samples_fed(), 10 * 256);
        hold.store(false, Ordering::Release);
        let report = engine.shutdown().unwrap();
        assert_eq!(report.ring_dropped, 8);
        assert_eq!(
            report.samples_in,
            2 * 256,
            "only surviving chunks reach the detector"
        );
        assert!(report.packets.is_empty());
    }

    #[test]
    fn injected_worker_panic_tears_down_cleanly_with_a_partial_report() {
        // Span 2 detonates its decode worker. The engine must neither hang
        // nor re-panic: shutdown joins every thread and returns a typed
        // WorkerPanic carrying whatever was decoded before the failure.
        let bits = vec![true, false, true, true];
        let cfg = GatewayConfig {
            workers: 2,
            fault_panic_span: Some(2),
            ..GatewayConfig::new(PhyProfile::default(), vec![128], bits.len())
        };
        let stream = stream_with_packets(128, &bits, 5);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        for chunk in stream.chunks(1000) {
            // Feeding may start failing once the dead worker disconnects
            // the detection loop — that is the clean refusal, not a hang.
            if engine.feed(chunk).is_err() {
                break;
            }
        }
        match engine.shutdown() {
            Err(EngineError::WorkerPanic(p)) => {
                assert_eq!(p.role, "decode-worker");
                assert!(p.message.contains("injected decode fault"), "{}", p.message);
                // Everything decoded before the panic is preserved, in
                // stream order, and none of it is the poisoned span.
                for packet in &p.report.packets {
                    assert_ne!(packet.index, 2);
                    assert_eq!(packet.round.bits_for(128).unwrap(), &bits[..]);
                }
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn panicked_engine_drop_does_not_repanic() {
        // Drop (no shutdown call) after an injected panic: teardown must
        // swallow the recorded panic — a Drop that re-panics would abort.
        let cfg = GatewayConfig {
            workers: 1,
            fault_panic_span: Some(0),
            ..GatewayConfig::new(PhyProfile::default(), vec![64], 4)
        };
        let bits = vec![true, false, true, false];
        let stream = stream_with_packets(64, &bits, 2);
        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        for chunk in stream.chunks(500) {
            if engine.feed(chunk).is_err() {
                break;
            }
        }
        drop(engine); // must not propagate the worker's panic
    }

    #[test]
    fn multi_channel_rejects_zero_channels() {
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![0], 4);
        match MultiChannelEngine::spawn(&cfg, 0, 500e3) {
            Err(EngineError::Config(message)) => {
                assert!(message.contains("at least 1"), "{message}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn multi_channel_splits_the_worker_budget_fairly() {
        let cfg = GatewayConfig {
            workers: 5,
            ..GatewayConfig::new(PhyProfile::default(), vec![0], 4)
        };
        let engine = MultiChannelEngine::spawn(&cfg, 3, 500e3).unwrap();
        // 5 workers over 3 channels: 2 + 2 + 1, never less than one.
        assert_eq!(engine.channels(), 3);
        let split: Vec<usize> = (0..3).map(|c| engine.channel_workers(c)).collect();
        assert_eq!(split, vec![2, 2, 1]);
        assert!(engine.shutdown().is_ok());

        // More channels than budgeted workers: every channel still gets one.
        let engine = MultiChannelEngine::spawn(&cfg, 8, 500e3).unwrap();
        assert!((0..8).all(|c| engine.channel_workers(c) == 1));
        assert!(engine.shutdown().is_ok());
    }

    #[test]
    fn channels_are_independent_and_reports_stay_per_channel() {
        // Different packet populations per channel: each channel's report
        // must carry exactly its own packets with its own sequence numbers,
        // with nothing leaking across the shard boundary.
        let bits = vec![true, false, true, true];
        let cfg = GatewayConfig {
            workers: 2,
            ..GatewayConfig::new(PhyProfile::default(), vec![64, 192], bits.len())
        };
        let ch0 = stream_with_packets(64, &bits, 3);
        let ch1 = stream_with_packets(192, &bits, 1);
        let mut engine = MultiChannelEngine::spawn(&cfg, 2, 500e3).unwrap();
        for chunk in ch0.chunks(900) {
            engine.feed(0, chunk).unwrap();
        }
        for chunk in ch1.chunks(700) {
            engine.feed(1, chunk).unwrap();
        }
        let report = engine.shutdown().unwrap();
        assert_eq!(report.channels.len(), 2);
        assert_eq!(report.channels[0].packets.len(), 3);
        assert_eq!(report.channels[1].packets.len(), 1);
        for (i, p) in report.channels[0].packets.iter().enumerate() {
            assert_eq!(p.index, i, "per-channel sequence numbers restart at 0");
            assert_eq!(p.round.bits_for(64).unwrap(), &bits[..]);
        }
        assert_eq!(
            report.channels[1].packets[0].round.bits_for(192).unwrap(),
            &bits[..]
        );
        assert_eq!(
            report.samples_in,
            (ch0.len() + ch1.len()) as u64,
            "aggregate counters sum the shards"
        );
        assert_eq!(report.total_packets(), 4);
        assert!(report.aggregate_samples_per_sec > 0.0);
    }

    #[test]
    fn multi_channel_worker_panic_still_tears_down_every_channel() {
        // Channel 0's worker detonates on its first span; channel 1 is
        // healthy. Shutdown must join *all* threads across *all* channels
        // before surfacing the panic as a typed error.
        let bits = vec![true, false, true, false];
        let cfg = GatewayConfig {
            workers: 2,
            fault_panic_span: Some(0),
            ..GatewayConfig::new(PhyProfile::default(), vec![64], bits.len())
        };
        let stream = stream_with_packets(64, &bits, 1);
        let mut engine = MultiChannelEngine::spawn(&cfg, 2, 500e3).unwrap();
        for chunk in stream.chunks(800) {
            let _ = engine.feed(0, chunk);
        }
        // Channel 1 sees only silence (no span, so its fault hook never fires).
        engine.feed(1, &vec![Complex64::ZERO; 4096]).unwrap();
        match engine.shutdown() {
            Err(EngineError::WorkerPanic(p)) => {
                assert_eq!(p.role, "decode-worker");
                assert!(p.message.contains("injected decode fault"), "{}", p.message);
            }
            other => panic!("expected WorkerPanic, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn feed_after_shutdown_is_rejected_cleanly() {
        let cfg = GatewayConfig::new(PhyProfile::default(), vec![0], 4);
        let engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        // Drop without shutdown: the Drop impl joins every thread.
        drop(engine);

        let mut engine = StreamEngine::spawn(&cfg, 500e3).unwrap();
        engine.teardown();
        assert_eq!(engine.feed(&[Complex64::ZERO]), Err(EngineClosed));
    }
}

//! Sample-stream sources for the gateway.
//!
//! A [`StreamSource`] produces the continuous complex-baseband stream the
//! gateway consumes — the role the SDR front-end plays for the paper's AP.
//! Three families of implementations exist:
//!
//! * [`ReplaySource`] (here) — a deterministic in-memory / file replay used
//!   by the equivalence tests and benches;
//! * [`Cf32FileSource`] (here) — a buffered streaming reader over a `.cf32`
//!   capture that never loads the file whole, so the daemon can replay
//!   captures much larger than memory;
//! * the live round synthesizer in the simulator crate
//!   (`netscatter_sim::stream`), which replays channel-realized rounds as an
//!   asynchronous stream with Poisson arrivals.
//!
//! [`PacedSource`] composes over any of them, throttling delivery to the
//! source's sample rate so a replay behaves like a live radio.

use netscatter_dsp::Complex64;
use std::io::{BufReader, Read};

/// Bytes per complex sample in the `.cf32` layout (two little-endian f32s).
const CF32_SAMPLE_BYTES: usize = 8;

/// Decodes one interleaved little-endian `f32` I/Q sample.
fn cf32_sample(bytes: &[u8]) -> Complex64 {
    let re = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as f64;
    let im = f32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as f64;
    Complex64::new(re, im)
}

/// A pull-based source of contiguous baseband samples.
///
/// Sources are consumed on the producer thread of
/// [`crate::pipeline::run_stream`], hence the `Send` bound.
pub trait StreamSource: Send {
    /// Fills `out` with the next samples of the stream and returns how many
    /// were written. Writing fewer than `out.len()` samples — in particular
    /// zero — signals the end of the stream; the gateway never calls `fill`
    /// again after a short read.
    fn fill(&mut self, out: &mut [Complex64]) -> usize;

    /// The stream's sample rate in Hz (complex baseband, so equal to the
    /// occupied bandwidth). Used to compute the real-time factor.
    fn sample_rate_hz(&self) -> f64;
}

/// A deterministic source replaying a fixed sample buffer.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    samples: Vec<Complex64>,
    cursor: usize,
    sample_rate_hz: f64,
}

impl ReplaySource {
    /// Replays `samples` at `sample_rate_hz`.
    pub fn from_samples(samples: Vec<Complex64>, sample_rate_hz: f64) -> Self {
        Self {
            samples,
            cursor: 0,
            sample_rate_hz,
        }
    }

    /// Reads an interleaved little-endian `f32` I/Q capture (the common SDR
    /// `.cf32` layout) and replays it at `sample_rate_hz`. Trailing partial
    /// samples (a truncated capture) are ignored.
    ///
    /// The file is streamed through [`Cf32FileSource`]'s [`BufReader`] and
    /// converted incrementally — peak memory is the sample vector alone,
    /// not the sample vector plus a second full byte copy as with a
    /// whole-file read (a 50% overhead on top of the f32→f64 widening for
    /// large captures).
    pub fn read_cf32le(path: &std::path::Path, sample_rate_hz: f64) -> std::io::Result<Self> {
        let mut file = Cf32FileSource::open(path, sample_rate_hz)?;
        let expected = file.expected_samples();
        let mut samples = Vec::with_capacity(expected);
        let mut buf = vec![Complex64::ZERO; 1 << 14];
        loop {
            let got = file.fill(&mut buf);
            samples.extend_from_slice(&buf[..got]);
            if got < buf.len() {
                break;
            }
        }
        file.take_error().map_or(Ok(()), Err)?;
        Ok(Self::from_samples(samples, sample_rate_hz))
    }

    /// Writes `samples` as an interleaved little-endian `f32` I/Q file that
    /// [`Self::read_cf32le`] round-trips.
    pub fn write_cf32le(path: &std::path::Path, samples: &[Complex64]) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(samples.len() * 8);
        for s in samples {
            bytes.extend_from_slice(&(s.re as f32).to_le_bytes());
            bytes.extend_from_slice(&(s.im as f32).to_le_bytes());
        }
        std::fs::write(path, bytes)
    }

    /// Total number of samples the replay will produce.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the replay holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl StreamSource for ReplaySource {
    fn fill(&mut self, out: &mut [Complex64]) -> usize {
        let n = out.len().min(self.samples.len() - self.cursor);
        out[..n].copy_from_slice(&self.samples[self.cursor..self.cursor + n]);
        self.cursor += n;
        n
    }

    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

/// Wraps a source and paces delivery at its own sample rate, emulating a
/// radio front-end that produces samples in real time: after handing out a
/// chunk, [`StreamSource::fill`] sleeps until the wall clock reaches the
/// instant the chunk's last sample would have arrived over the air.
///
/// Deadlines are absolute — anchored at the first fill — so sleep jitter
/// never accumulates drift, and a consumer that falls behind real time
/// simply stops sleeping until it catches back up. The multi-channel
/// sustained-ingest measurements in the perf snapshot use this to ask the
/// deployment question directly: how many 500 kHz channels does the
/// sharded gateway keep up with at radio rate?
#[derive(Debug)]
pub struct PacedSource<S> {
    inner: S,
    delivered: u64,
    started: Option<std::time::Instant>,
}

impl<S: StreamSource> PacedSource<S> {
    /// Paces `inner` at its reported [`StreamSource::sample_rate_hz`].
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            delivered: 0,
            started: None,
        }
    }
}

impl<S: StreamSource> StreamSource for PacedSource<S> {
    fn fill(&mut self, out: &mut [Complex64]) -> usize {
        let started = *self.started.get_or_insert_with(std::time::Instant::now);
        let n = self.inner.fill(out);
        self.delivered += n as u64;
        let rate = self.inner.sample_rate_hz();
        if n > 0 && rate > 0.0 {
            let deadline = std::time::Duration::from_secs_f64(self.delivered as f64 / rate);
            let elapsed = started.elapsed();
            if deadline > elapsed {
                std::thread::sleep(deadline - elapsed);
            }
        }
        n
    }

    fn sample_rate_hz(&self) -> f64 {
        self.inner.sample_rate_hz()
    }
}

/// A streaming `.cf32` file source: reads lazily through a [`BufReader`]
/// during [`StreamSource::fill`], so replaying a capture costs constant
/// memory regardless of the file size. The daemon's replay feeders use this
/// to push arbitrarily large captures over TCP.
#[derive(Debug)]
pub struct Cf32FileSource {
    reader: BufReader<std::fs::File>,
    sample_rate_hz: f64,
    /// Samples implied by the file length at open time (informational).
    expected_samples: usize,
    /// Byte scratch a fill reads into before converting.
    scratch: Vec<u8>,
    /// Carry of a partial trailing sample between fills.
    carry: [u8; CF32_SAMPLE_BYTES],
    carry_len: usize,
    /// Set at EOF or on the first I/O error (fills return 0 from then on).
    done: bool,
    /// The I/O error that ended the stream early, if any.
    error: Option<std::io::Error>,
}

impl Cf32FileSource {
    /// Opens `path` for streaming replay at `sample_rate_hz`.
    pub fn open(path: &std::path::Path, sample_rate_hz: f64) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let expected_samples = file
            .metadata()
            .map(|m| m.len() as usize / CF32_SAMPLE_BYTES)
            .unwrap_or(0);
        Ok(Self {
            reader: BufReader::with_capacity(1 << 16, file),
            sample_rate_hz,
            expected_samples,
            scratch: Vec::new(),
            carry: [0u8; CF32_SAMPLE_BYTES],
            carry_len: 0,
            done: false,
            error: None,
        })
    }

    /// Samples implied by the file length when the source was opened.
    pub fn expected_samples(&self) -> usize {
        self.expected_samples
    }

    /// Takes the I/O error that ended the stream early, if one occurred
    /// ([`StreamSource::fill`] has no error channel, so a read failure is
    /// surfaced as end-of-stream plus this flag).
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }
}

impl StreamSource for Cf32FileSource {
    fn fill(&mut self, out: &mut [Complex64]) -> usize {
        if self.done || out.is_empty() {
            return 0;
        }
        let want = out.len() * CF32_SAMPLE_BYTES;
        self.scratch.resize(want, 0);
        self.scratch[..self.carry_len].copy_from_slice(&self.carry[..self.carry_len]);
        let mut have = self.carry_len;
        while have < want {
            match self.reader.read(&mut self.scratch[have..want]) {
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(n) => have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    break;
                }
            }
        }
        let samples = have / CF32_SAMPLE_BYTES;
        for (slot, bytes) in out[..samples]
            .iter_mut()
            .zip(self.scratch[..samples * CF32_SAMPLE_BYTES].chunks_exact(CF32_SAMPLE_BYTES))
        {
            *slot = cf32_sample(bytes);
        }
        let rem = have - samples * CF32_SAMPLE_BYTES;
        self.carry[..rem].copy_from_slice(&self.scratch[samples * CF32_SAMPLE_BYTES..have]);
        self.carry_len = rem;
        samples
    }

    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_fills_in_order_and_signals_end() {
        let samples: Vec<Complex64> = (0..10).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut src = ReplaySource::from_samples(samples.clone(), 500e3);
        assert_eq!(src.len(), 10);
        assert!(!src.is_empty());
        let mut buf = vec![Complex64::ZERO; 4];
        assert_eq!(src.fill(&mut buf), 4);
        assert_eq!(buf, samples[..4]);
        assert_eq!(src.fill(&mut buf), 4);
        assert_eq!(buf, samples[4..8]);
        assert_eq!(src.fill(&mut buf), 2);
        assert_eq!(buf[..2], samples[8..]);
        assert_eq!(src.fill(&mut buf), 0);
        assert_eq!(src.sample_rate_hz(), 500e3);
    }

    #[test]
    fn paced_source_holds_delivery_to_the_sample_rate() {
        // 2000 samples at 100 kHz = 20 ms of air time: the paced wrapper
        // must take at least that long and still deliver every sample in
        // order, while the raw replay finishes effectively instantly.
        let samples: Vec<Complex64> = (0..2000).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut src = PacedSource::new(ReplaySource::from_samples(samples.clone(), 100e3));
        assert_eq!(src.sample_rate_hz(), 100e3);
        let start = std::time::Instant::now();
        let mut got = Vec::new();
        let mut buf = vec![Complex64::ZERO; 512];
        loop {
            let n = src.fill(&mut buf);
            got.extend_from_slice(&buf[..n]);
            if n < buf.len() {
                break;
            }
        }
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(20),
            "paced replay ran faster than real time: {:?}",
            start.elapsed()
        );
        assert_eq!(got, samples);
        assert_eq!(src.fill(&mut buf), 0, "exhausted source stays exhausted");
    }

    #[test]
    fn cf32_file_source_streams_large_files_identically_to_replay() {
        // A "large" capture relative to every internal buffer: ~1.5M
        // samples (12 MB) with a truncated trailing partial sample, read
        // through fill sizes that are never a multiple of the 64 KiB
        // BufReader capacity, so carries and buffer refills all trigger.
        let n = 1_500_000usize;
        let samples: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 8191) as f64 / 8191.0, -((i % 127) as f64) / 127.0))
            .collect();
        let path = std::env::temp_dir().join("netscatter_gateway_cf32_large_test.cf32");
        ReplaySource::write_cf32le(&path, &samples).unwrap();
        // Truncate mid-sample: append 5 stray bytes.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        }

        let whole = ReplaySource::read_cf32le(&path, 500e3).unwrap();
        let mut streaming = Cf32FileSource::open(&path, 500e3).unwrap();
        assert_eq!(streaming.expected_samples(), n); // 5 stray bytes < one sample
        let mut got = Vec::new();
        let mut buf = vec![Complex64::ZERO; 4097];
        loop {
            let k = streaming.fill(&mut buf);
            got.extend_from_slice(&buf[..k]);
            if k < buf.len() {
                break;
            }
        }
        let _ = std::fs::remove_file(&path);
        assert!(streaming.take_error().is_none());
        assert_eq!(got.len(), n);
        assert_eq!(whole.len(), n);
        assert_eq!(got, whole.samples);
        assert_eq!(streaming.fill(&mut buf), 0, "done source stays done");
    }

    #[test]
    fn cf32_files_round_trip() {
        let samples: Vec<Complex64> = (0..257)
            .map(|i| Complex64::new(i as f64 / 31.0, -(i as f64) / 17.0))
            .collect();
        let path = std::env::temp_dir().join("netscatter_gateway_cf32_test.cf32");
        ReplaySource::write_cf32le(&path, &samples).unwrap();
        let replay = ReplaySource::read_cf32le(&path, 250e3).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(replay.len(), samples.len());
        for (a, b) in replay.samples.iter().zip(&samples) {
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }
}

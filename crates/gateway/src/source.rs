//! Sample-stream sources for the gateway.
//!
//! A [`StreamSource`] produces the continuous complex-baseband stream the
//! gateway consumes — the role the SDR front-end plays for the paper's AP.
//! Two families of implementations exist:
//!
//! * [`ReplaySource`] (here) — a deterministic in-memory / file replay used
//!   by the equivalence tests and benches;
//! * the live round synthesizer in the simulator crate
//!   (`netscatter_sim::stream`), which replays channel-realized rounds as an
//!   asynchronous stream with Poisson arrivals.

use netscatter_dsp::Complex64;

/// A pull-based source of contiguous baseband samples.
///
/// Sources are consumed on the producer thread of
/// [`crate::pipeline::run_stream`], hence the `Send` bound.
pub trait StreamSource: Send {
    /// Fills `out` with the next samples of the stream and returns how many
    /// were written. Writing fewer than `out.len()` samples — in particular
    /// zero — signals the end of the stream; the gateway never calls `fill`
    /// again after a short read.
    fn fill(&mut self, out: &mut [Complex64]) -> usize;

    /// The stream's sample rate in Hz (complex baseband, so equal to the
    /// occupied bandwidth). Used to compute the real-time factor.
    fn sample_rate_hz(&self) -> f64;
}

/// A deterministic source replaying a fixed sample buffer.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    samples: Vec<Complex64>,
    cursor: usize,
    sample_rate_hz: f64,
}

impl ReplaySource {
    /// Replays `samples` at `sample_rate_hz`.
    pub fn from_samples(samples: Vec<Complex64>, sample_rate_hz: f64) -> Self {
        Self {
            samples,
            cursor: 0,
            sample_rate_hz,
        }
    }

    /// Reads an interleaved little-endian `f32` I/Q capture (the common SDR
    /// `.cf32` layout) and replays it at `sample_rate_hz`. Trailing partial
    /// samples (a truncated capture) are ignored.
    pub fn read_cf32le(path: &std::path::Path, sample_rate_hz: f64) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let samples = bytes
            .chunks_exact(8)
            .map(|c| {
                let re = f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64;
                let im = f32::from_le_bytes([c[4], c[5], c[6], c[7]]) as f64;
                Complex64::new(re, im)
            })
            .collect();
        Ok(Self::from_samples(samples, sample_rate_hz))
    }

    /// Writes `samples` as an interleaved little-endian `f32` I/Q file that
    /// [`Self::read_cf32le`] round-trips.
    pub fn write_cf32le(path: &std::path::Path, samples: &[Complex64]) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(samples.len() * 8);
        for s in samples {
            bytes.extend_from_slice(&(s.re as f32).to_le_bytes());
            bytes.extend_from_slice(&(s.im as f32).to_le_bytes());
        }
        std::fs::write(path, bytes)
    }

    /// Total number of samples the replay will produce.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the replay holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl StreamSource for ReplaySource {
    fn fill(&mut self, out: &mut [Complex64]) -> usize {
        let n = out.len().min(self.samples.len() - self.cursor);
        out[..n].copy_from_slice(&self.samples[self.cursor..self.cursor + n]);
        self.cursor += n;
        n
    }

    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_fills_in_order_and_signals_end() {
        let samples: Vec<Complex64> = (0..10).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut src = ReplaySource::from_samples(samples.clone(), 500e3);
        assert_eq!(src.len(), 10);
        assert!(!src.is_empty());
        let mut buf = vec![Complex64::ZERO; 4];
        assert_eq!(src.fill(&mut buf), 4);
        assert_eq!(buf, samples[..4]);
        assert_eq!(src.fill(&mut buf), 4);
        assert_eq!(buf, samples[4..8]);
        assert_eq!(src.fill(&mut buf), 2);
        assert_eq!(buf[..2], samples[8..]);
        assert_eq!(src.fill(&mut buf), 0);
        assert_eq!(src.sample_rate_hz(), 500e3);
    }

    #[test]
    fn cf32_files_round_trip() {
        let samples: Vec<Complex64> = (0..257)
            .map(|i| Complex64::new(i as f64 / 31.0, -(i as f64) / 17.0))
            .collect();
        let path = std::env::temp_dir().join("netscatter_gateway_cf32_test.cf32");
        ReplaySource::write_cf32le(&path, &samples).unwrap();
        let replay = ReplaySource::read_cf32le(&path, 250e3).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(replay.len(), samples.len());
        for (a, b) in replay.samples.iter().zip(&samples) {
            assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }
}

//! Streaming gateway receiver for NetScatter.
//!
//! The batch pipeline in `netscatter` decodes pre-aligned, whole-round
//! sample buffers; a real AP listens to a *continuous* RF stream and must
//! detect, synchronize and decode concurrent backscatter rounds whose
//! arrivals it does not control. This crate is that missing subsystem:
//!
//! * [`source`] — the [`source::StreamSource`] abstraction the gateway
//!   consumes (deterministic replay here; the live Poisson round
//!   synthesizer lives in `netscatter_sim::stream`);
//! * [`ring`] — the lock-free sequence-ticket ring buffer carrying sample
//!   chunks from the producer thread into the detector, with a drop-oldest
//!   overflow mode ([`ring::OverflowPolicy`]) for live ingest;
//! * [`detect`] — the online detection state machine (energy gate →
//!   preamble cross-correlation sync → payload handoff) with overlap-save
//!   chunk stitching, making the decode chunk-size invariant;
//! * [`engine`] — the reusable per-stream [`engine::StreamEngine`]
//!   (spawn / feed / drain / shutdown lifecycle) the `netscatterd` daemon
//!   runs one of per ingest stream;
//! * [`pipeline`] — the synchronous [`pipeline::StreamGateway`] facade and
//!   the threaded [`pipeline::run_stream`] session (a run-to-completion
//!   engine lifecycle) with N decode workers, reporting measured
//!   throughput and the real-time factor.
//!
//! The gate needs at least one full noise-only gate window
//! ([`detect::GATE_WINDOW`] samples) at the head of the stream to calibrate
//! its floor before the first packet; every practical source (and the
//! stream synthesizer) starts with an idle gap.
//!
//! Every stage records latency telemetry into lock-free `netscatter_obs`
//! histograms as it runs — ring occupancy and producer block waits, energy
//! gate → anchor detection latency, decode queue wait and service time —
//! surfaced live via [`engine::EngineTelemetry`] and folded into each
//! [`pipeline::GatewayReport`] as a [`pipeline::PipelineTelemetry`]
//! snapshot. Recording never changes detection or decode decisions, so
//! decoded output is bit-identical with telemetry on.

pub mod detect;
pub mod engine;
pub mod pipeline;
pub mod ring;
pub mod source;

pub use detect::{DetectTelemetry, GatewayConfig, PacketSpan, StreamDetector};
pub use engine::{
    EngineClosed, EngineError, EngineTelemetry, MultiChannelEngine, OverflowPolicy, PanicReport,
    StreamEngine, TimedPacket,
};
pub use pipeline::{
    run_multi_stream, run_stream, DecodedPacket, GatewayReport, MultiChannelReport,
    PipelineTelemetry, StreamGateway,
};
pub use ring::RingTelemetry;
pub use source::{Cf32FileSource, PacedSource, ReplaySource, StreamSource};

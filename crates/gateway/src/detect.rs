//! The online packet-detection state machine.
//!
//! The batch receiver is handed a pre-aligned round buffer; the gateway is
//! not. [`StreamDetector`] consumes an unbounded stream chunk by chunk and
//! finds the packets on its own, in three stages (one per state):
//!
//! 1. **Energy gate** (`Hunting`) — a sliding [`GATE_WINDOW`]-sample power
//!    average is compared against a gate derived from a running noise-floor
//!    estimate. Cheap (one multiply-add per sample), so the idle stream
//!    costs almost nothing.
//! 2. **Preamble sync** (`Syncing`) — around the gated onset, the packet
//!    start is located by cross-correlating candidate offsets against the
//!    *assigned-bin comb over the up/down preamble structure*: each
//!    candidate's six upchirps are correlated against every assigned
//!    cyclic-shift upchirp template, its two downchirps against each
//!    shift's mirrored downchirp template, and the candidate maximizing
//!    the summed *per-device minimum* of the two measurements wins.
//!
//!    The comb is evaluated through the FFT correlator core in
//!    `netscatter_dsp::correlator`, picking per sync whichever of its two
//!    mathematically identical fast paths costs fewer butterflies:
//!
//!    * **chirp bank** (`ChirpBank`): dechirp each candidate symbol and
//!      take one critically-sampled `n`-point FFT — bin `b` *is* the
//!      correlation against the shift-`b` template, so one transform
//!      scores every device at once. Cheapest for populated combs
//!      (`pad×` smaller than the old per-candidate padded transform).
//!    * **overlap-save** (`Correlator`): one shared forward transform of
//!      the sync span per segment, then a pointwise-multiply/inverse per
//!      device template yields that correlation at *every* candidate lag
//!      simultaneously. Cheapest for sparse populations, whose template
//!      count is small while the bank would still pay per candidate.
//!
//!    Both paths compute exactly the quantity the original padded-spectrum
//!    comb measured (the integer assigned bins of the dechirped symbols),
//!    so detection decisions are unchanged; a test pins all three
//!    evaluations against each other. Each comb ingredient kills one
//!    ambiguity a blind dechirp-sharpness metric cannot resolve:
//!
//!    * the preamble repeats identical upchirps, so any window offset into
//!      the repetition is just another cyclic shift at full peak power —
//!      but a one-sample offset moves every tone one whole chirp bin off
//!      its assignment (critical sampling), collapsing the on-bin comb to
//!      its orthogonal-DFT zeros;
//!    * at full SKIP-`k` occupancy a `k`-sample offset permutes the tones
//!      *onto other assigned bins*, leaving every power-sum comb almost
//!      unchanged — the permutation travels with the devices, the up/down
//!      mirror symmetry cancels, and the power-aware allocator makes
//!      spectral neighbours deliberately similar in strength, so no
//!      preamble-interior statistic can tell the lattice shifts apart. The
//!      comb therefore only *shortlists* the shift lattice, and the winner
//!      is the shortlisted candidate **nearest the leading-edge anchor**:
//!      the first sample of the sync range whose individual power clears
//!      [`EDGE_ANCHOR_DB`] over the noise floor. A changepoint pinned by a
//!      single strong sample errs only when the packet's opening samples
//!      are exponentially unlucky (≈ 10⁻³ per sample at the SNRs where
//!      dense rounds decode at all) — orders of magnitude more reliable
//!      than windowed energy contrast, whose √δ-sample statistics cannot
//!      resolve shifts of a couple of samples.
//!
//!    The energy gate bounds the uncertainty to `GATE_WINDOW` samples
//!    (plus [`SYNC_SLACK`] for hardware timing offsets), so only a few
//!    dozen candidates are evaluated instead of the unbounded search a
//!    blind receiver would need.
//! 3. **Payload handoff** (`Decoding`) — once the stitched window covers
//!    the full packet, its samples are emitted as a [`PacketSpan`] for the
//!    decode stage (CFO/timing sync happens inside the existing
//!    preamble-detection path: each device's `observed_bin` absorbs its
//!    residual offset, §3.3.1).
//!
//! **Overlap-save stitching.** The detector keeps a rolling window of the
//! stream with an absolute sample index for its first element. Chunks are
//! appended, decisions are made purely in absolute-index terms, and only
//! the provably consumed prefix is discarded — so a chirp window spanning
//! any number of chunk boundaries is decoded from exactly the same samples
//! as in a single contiguous buffer. This is what makes the streaming
//! decode *chunk-size invariant*: the equivalence tests pin streaming
//! output to the batch receiver bit for bit under randomized chunk sizes.

use netscatter::receiver::ConcurrentReceiver;
use netscatter_dsp::correlator::{shift_template, ChirpBank, Correlator, Template};
use netscatter_dsp::fft::FftError;
use netscatter_dsp::{kernels, ChirpSynthesizer, Complex64};
use netscatter_obs::{Counter, Histogram};
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::{PREAMBLE_DOWNCHIRPS, PREAMBLE_SYMBOLS, PREAMBLE_UPCHIRPS};
use std::sync::Arc;
use std::time::Instant;

/// Detection-stage telemetry: how long the detector takes to turn an
/// energy-gate fire into a locked preamble anchor.
///
/// Attached with [`StreamDetector::set_telemetry`]; recording happens on
/// the detection thread only, once per gate event — far off the
/// per-sample hot path. Both clocks matter and they answer different
/// questions: the *samples* histogram is deterministic (how much more
/// stream the sync stage needed, dominated by the candidate range plus
/// the 8-symbol preamble) while the *wall* histogram includes waiting for
/// those samples to arrive and the correlation compute itself.
#[derive(Debug, Default)]
pub struct DetectTelemetry {
    /// Energy-gate fires (state left `Hunting`), decoded or not.
    pub gate_events: Counter,
    /// Stream samples ingested between the gate fire and the anchor lock.
    pub gate_to_anchor_samples: Histogram,
    /// Wall nanoseconds between the gate fire and the anchor lock.
    pub gate_to_anchor_ns: Histogram,
}

/// Sliding-window length (samples) of the energy gate. Short enough to
/// localize the packet onset tightly (it bounds the sync search), long
/// enough to average over noise.
pub const GATE_WINDOW: usize = 16;

/// Extra samples searched on both sides of the energy-gated onset interval
/// during preamble sync, covering the one-sided hardware timing offsets
/// (≲ 2 samples for the COTS population) with margin.
pub const SYNC_SLACK: usize = 4;

/// Per-sample power threshold of the leading-edge anchor, in dB over the
/// noise floor: high enough that idle noise rarely crosses it
/// (`e^{-10} ≈ 5·10⁻⁵` per sample), low enough that a decodable dense
/// round's opening samples almost surely do.
pub const EDGE_ANCHOR_DB: f64 = 10.0;

/// Comb fraction (of the best candidate) a candidate must reach to stay on
/// the edge-anchor shortlist. Lattice-ambiguous candidates sit within
/// ~±15% of each other under fading; off-lattice candidates collapse to a
/// few percent, so the cut sits between with wide margin on both sides.
const COMB_SHORTLIST_FRACTION: f64 = 0.7;

/// Streaming-gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The PHY profile (modulation, zero padding, SKIP) of the population.
    pub profile: PhyProfile,
    /// The cyclic shifts assigned to the population, in deployment order.
    pub assigned_bins: Vec<usize>,
    /// Payload symbols per packet (the round's payload bit count).
    pub payload_symbols: usize,
    /// Samples per producer chunk.
    pub chunk_samples: usize,
    /// Ring-buffer capacity in chunks.
    pub ring_slots: usize,
    /// Decode worker threads (0 resolves to the available parallelism).
    pub workers: usize,
    /// What the feed side does when the ring is full: block (lossless
    /// replay) or displace the oldest queued chunk with a counted drop
    /// (live socket ingest — never stall the reader).
    pub overflow: crate::ring::OverflowPolicy,
    /// Energy gate in dB over the running noise-floor estimate.
    pub energy_gate_db: f64,
    /// Override for the receiver's detection floor fraction (`None` keeps
    /// the [`ConcurrentReceiver`] default).
    pub detection_floor_fraction: Option<f64>,
    /// Chaos/test hook: a decode worker panics when handed the span with
    /// this sequence number, exercising the engine's panic supervision
    /// (`EngineError::WorkerPanic`). Always `None` in production; the
    /// daemon only honors a header-carried value when started with
    /// `--enable-fault-injection`.
    pub fault_panic_span: Option<usize>,
}

impl GatewayConfig {
    /// A gateway for `assigned_bins` under `profile` with the defaults the
    /// experiments use: 4096-sample chunks, 8 ring slots, auto workers,
    /// 6 dB energy gate.
    pub fn new(profile: PhyProfile, assigned_bins: Vec<usize>, payload_symbols: usize) -> Self {
        Self {
            profile,
            assigned_bins,
            payload_symbols,
            chunk_samples: 4096,
            ring_slots: 8,
            workers: 0,
            overflow: crate::ring::OverflowPolicy::Block,
            energy_gate_db: 6.0,
            detection_floor_fraction: None,
            fault_panic_span: None,
        }
    }

    /// Samples in one full packet (preamble plus payload).
    pub fn packet_samples(&self) -> usize {
        (PREAMBLE_SYMBOLS + self.payload_symbols) * self.profile.modulation.num_bins()
    }
}

/// Where the detection state machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorState {
    /// Scanning the stream with the energy gate.
    Hunting,
    /// Energy found; locating the packet start by preamble correlation.
    Syncing,
    /// Start located; accumulating the full packet before handoff.
    Decoding,
}

/// One located packet, ready for the decode stage.
#[derive(Debug, Clone)]
pub struct PacketSpan {
    /// Sequence number in stream order (0-based).
    pub index: usize,
    /// Absolute stream index of the packet's first sample.
    pub start_sample: u64,
    /// The packet's samples (preamble + payload), copied out of the window.
    pub samples: Vec<Complex64>,
}

/// Internal per-state data.
#[derive(Debug, Clone, Copy)]
enum State {
    Hunting,
    /// `lo..=hi` is the absolute candidate range for the packet start.
    Syncing {
        lo: u64,
        hi: u64,
    },
    /// Absolute packet start.
    Decoding {
        start: u64,
    },
}

/// The chunk-stitching online detector. Feed it samples with
/// [`StreamDetector::push`]; it emits [`PacketSpan`]s as packets complete.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    receiver: ConcurrentReceiver,
    /// All-shifts chirp correlation (dechirp + critically-sampled FFT) —
    /// the populated-comb sync path.
    bank: ChirpBank,
    /// Overlap-save per-template correlator — the sparse-comb sync path.
    correlator: Correlator,
    /// Chirp synthesizer the shift templates are built from (kept so the
    /// templates can be built lazily — dense populations never need them).
    synth: ChirpSynthesizer,
    /// Per-device upchirp shift templates, in `bins` order. Built on the
    /// first overlap-save sync; empty until then.
    up_templates: Vec<Template>,
    /// Per-device mirrored downchirp shift templates, in `bins` order.
    down_templates: Vec<Template>,
    /// Bank-output scratch (one symbol's correlations against all shifts).
    spec: Vec<Complex64>,
    /// Overlap-save correlation scratch (one template's lags per segment).
    corr: Vec<Complex64>,
    /// Comb values per sync candidate (scratch).
    combs: Vec<f64>,
    /// The assigned cyclic shifts the sync comb samples.
    bins: Vec<usize>,
    /// Per-candidate-per-bin upchirp-comb accumulator (sync scratch).
    up_acc: Vec<f64>,
    /// Per-candidate-per-bin downchirp-comb accumulator (sync scratch).
    down_acc: Vec<f64>,
    payload_symbols: usize,
    energy_gate_factor: f64,
    /// Rolling stream window; `window[0]` is absolute index `window_start`.
    window: Vec<Complex64>,
    /// Per-sample `|x|²` aligned with `window` (gate/anchor scratch, kept
    /// in f64 so gate decisions are bit-identical to the scalar loop).
    powers: Vec<f64>,
    window_start: u64,
    /// Next absolute sample index the energy gate will examine.
    scan: u64,
    /// Sum of `|x|²` over the last `min(run_len, GATE_WINDOW)` samples
    /// before `scan`.
    sliding_sum: f64,
    /// Consecutive samples accumulated since the gate was last reset.
    run_len: usize,
    /// Estimate of the idle-stream power the gate is relative to: seeded
    /// from the first full gate window, then an EWMA over below-gate
    /// windows. (Tracking the *minimum* window mean instead would park the
    /// floor ~5 dB under the true noise power and make a 6 dB gate fire on
    /// ordinary noise fluctuations.)
    noise_floor: f64,
    /// Whether `noise_floor` has been seeded yet.
    floor_seeded: bool,
    state: State,
    next_index: usize,
    /// Packets whose span ran past the end of the stream at `finish`.
    truncated: usize,
    /// Optional detection-latency telemetry sink.
    telemetry: Option<Arc<DetectTelemetry>>,
    /// The in-flight gate event: (absolute gate-edge sample, fire time).
    /// Present only between a gate fire and its anchor lock when
    /// telemetry is attached.
    gate_fired: Option<(u64, Instant)>,
}

/// EWMA coefficient of the noise-floor estimate (per gate window).
const NOISE_ALPHA: f64 = 1.0 / 1024.0;

/// Absolute power floor under which the gate never drops, so a noise-free
/// stream (all-zero idle) still gates correctly on the first real sample.
const GATE_EPSILON: f64 = 1e-12;

impl StreamDetector {
    /// Creates the detector for `config`.
    pub fn new(config: &GatewayConfig) -> Result<Self, FftError> {
        let mut receiver = ConcurrentReceiver::new(&config.profile)?;
        if let Some(floor) = config.detection_floor_fraction {
            receiver.detection_floor_fraction = floor;
        }
        let params = config.profile.modulation.chirp();
        let n = params.num_bins();
        // The overlap-save segment size matches the receiver's padded
        // transform (8n at the default zero padding): a comfortable
        // lags-per-segment hop without outsized template spectra.
        let correlator = Correlator::new(n, n * 8)?;
        Ok(Self {
            receiver,
            bank: ChirpBank::new(params)?,
            correlator,
            synth: ChirpSynthesizer::new(params),
            up_templates: Vec::new(),
            down_templates: Vec::new(),
            spec: Vec::new(),
            corr: Vec::new(),
            combs: Vec::new(),
            bins: config.assigned_bins.clone(),
            up_acc: Vec::new(),
            down_acc: Vec::new(),
            payload_symbols: config.payload_symbols,
            energy_gate_factor: netscatter_dsp::units::db_to_linear(config.energy_gate_db),
            window: Vec::new(),
            powers: Vec::new(),
            window_start: 0,
            scan: 0,
            sliding_sum: 0.0,
            run_len: 0,
            noise_floor: 0.0,
            floor_seeded: false,
            state: State::Hunting,
            next_index: 0,
            truncated: 0,
            telemetry: None,
            gate_fired: None,
        })
    }

    /// Attaches detection-latency telemetry; subsequent gate events record
    /// into it. Telemetry never influences any detection decision.
    pub fn set_telemetry(&mut self, telemetry: Arc<DetectTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The receiver the emitted spans should be decoded with (same PHY
    /// profile and detection floor as the detector).
    pub fn receiver(&self) -> &ConcurrentReceiver {
        &self.receiver
    }

    /// Current state of the detection machine.
    pub fn state(&self) -> DetectorState {
        match self.state {
            State::Hunting => DetectorState::Hunting,
            State::Syncing { .. } => DetectorState::Syncing,
            State::Decoding { .. } => DetectorState::Decoding,
        }
    }

    /// The running noise-floor estimate (linear power per sample).
    pub fn noise_floor(&self) -> f64 {
        self.noise_floor
    }

    /// Number of packets dropped at end of stream because their tail was
    /// never received.
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Appends a chunk of stream samples and runs the state machine as far
    /// as the stitched window allows, pushing completed packets into `out`.
    pub fn push(&mut self, chunk: &[Complex64], out: &mut Vec<PacketSpan>) {
        self.window.extend_from_slice(chunk);
        // Keep the per-sample power buffer aligned with the window; the
        // gate and anchor read from it instead of recomputing `norm_sqr`
        // sample by sample (the values are bit-identical).
        kernels::power_append(chunk, &mut self.powers);
        self.advance(out);
        self.trim();
    }

    /// Ends the stream: anything still syncing or mid-packet is counted as
    /// truncated.
    pub fn finish(&mut self) {
        if !matches!(self.state, State::Hunting) {
            self.truncated += 1;
            self.state = State::Hunting;
        }
        self.gate_fired = None;
    }

    /// Absolute index one past the last sample currently in the window.
    fn window_end(&self) -> u64 {
        self.window_start + self.window.len() as u64
    }

    /// The power `|x|²` of the sample at absolute index `abs` (must be
    /// within the window).
    fn power(&self, abs: u64) -> f64 {
        self.powers[(abs - self.window_start) as usize]
    }

    /// The current energy gate (linear power).
    fn gate(&self) -> f64 {
        (self.noise_floor * self.energy_gate_factor).max(GATE_EPSILON)
    }

    /// Runs the state machine until no further transition is possible with
    /// the samples currently in the window.
    fn advance(&mut self, out: &mut Vec<PacketSpan>) {
        let n = self.receiver.profile().modulation.num_bins();
        let sync_len = PREAMBLE_SYMBOLS * n;
        let packet_len = ((PREAMBLE_SYMBOLS + self.payload_symbols) * n) as u64;
        loop {
            match self.state {
                State::Hunting => {
                    let mut gated = false;
                    while self.scan < self.window_end() {
                        let p = self.power(self.scan);
                        self.sliding_sum += p;
                        self.run_len += 1;
                        if self.run_len > GATE_WINDOW {
                            self.sliding_sum -= self.power(self.scan - GATE_WINDOW as u64);
                            self.run_len = GATE_WINDOW;
                        }
                        self.scan += 1;
                        if self.run_len < GATE_WINDOW {
                            continue;
                        }
                        let mean = self.sliding_sum / GATE_WINDOW as f64;
                        if !self.floor_seeded {
                            // The first full window calibrates the floor;
                            // gating starts with the next one.
                            self.noise_floor = mean;
                            self.floor_seeded = true;
                            continue;
                        }
                        if mean > self.gate() {
                            // The first above-gate sample lies within the
                            // current window; search it plus slack on both
                            // sides for the exact start.
                            let edge = self.scan - 1;
                            let lo = edge
                                .saturating_sub((GATE_WINDOW - 1 + SYNC_SLACK) as u64)
                                .max(self.window_start);
                            let hi = edge + SYNC_SLACK as u64;
                            self.state = State::Syncing { lo, hi };
                            if let Some(t) = &self.telemetry {
                                t.gate_events.incr();
                                self.gate_fired = Some((edge, Instant::now()));
                            }
                            gated = true;
                            break;
                        }
                        // Below-gate window: feed the noise estimate.
                        self.noise_floor += NOISE_ALPHA * (mean - self.noise_floor);
                    }
                    if !gated {
                        return;
                    }
                }
                State::Syncing { lo, hi } => {
                    // Need the whole candidate range plus the full 8-symbol
                    // preamble before the correlation can run.
                    if self.window_end() < hi + sync_len as u64 {
                        return;
                    }
                    // Stage one: when the leading-edge anchor fired, the true
                    // start lies within a couple of samples of it, so the
                    // comb only needs to score the candidates around the
                    // anchor (9 instead of ~24 — the comb's eight spectra
                    // per candidate dominate the whole sync cost). The
                    // anchor-less fallback (weak aggregate, where the comb
                    // is sharp on its own) scores the full range.
                    let anchor = self.edge_anchor(lo, hi);
                    let (comb_lo, comb_hi) = if anchor < hi {
                        (
                            anchor.saturating_sub(SYNC_SLACK as u64).max(lo),
                            (anchor + SYNC_SLACK as u64).min(hi),
                        )
                    } else {
                        (lo, hi)
                    };
                    self.compute_combs(comb_lo, comb_hi, n);
                    let best_comb = self.combs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    // Stage two: among the shortlisted (possibly
                    // lattice-ambiguous) candidates, the one nearest the
                    // anchor wins; ties keep the earliest offset.
                    let mut best = comb_lo;
                    let mut best_distance = u64::MAX;
                    for (i, &comb) in self.combs.iter().enumerate() {
                        if comb < best_comb * COMB_SHORTLIST_FRACTION {
                            continue;
                        }
                        let candidate = comb_lo + i as u64;
                        let distance = candidate.abs_diff(anchor);
                        if distance < best_distance {
                            best_distance = distance;
                            best = candidate;
                        }
                    }
                    self.state = State::Decoding { start: best };
                    if let Some((edge, fired_at)) = self.gate_fired.take() {
                        if let Some(t) = &self.telemetry {
                            t.gate_to_anchor_samples.record(self.window_end() - edge);
                            t.gate_to_anchor_ns.record_duration(fired_at.elapsed());
                        }
                    }
                }
                State::Decoding { start } => {
                    if self.window_end() < start + packet_len {
                        return;
                    }
                    let s = (start - self.window_start) as usize;
                    let samples = self.window[s..s + packet_len as usize].to_vec();
                    out.push(PacketSpan {
                        index: self.next_index,
                        start_sample: start,
                        samples,
                    });
                    self.next_index += 1;
                    // Resume hunting right after the packet, with a fresh
                    // gate window (the sliding sum would otherwise straddle
                    // the skipped span).
                    self.scan = start + packet_len;
                    self.sliding_sum = 0.0;
                    self.run_len = 0;
                    self.state = State::Hunting;
                }
            }
        }
    }

    /// Fills `self.combs` with the up/down consistency comb for every
    /// candidate packet start in `comb_lo..=comb_hi`: average assigned-bin
    /// correlation power over the six upchirps, average mirrored-bin power
    /// over the two downchirps, summed per-device minimum of the two. See
    /// the module docs for why both combs are needed.
    ///
    /// Picks whichever correlator path does less transform work for this
    /// candidate count and population size (`size · log₂ size` butterfly
    /// model); both compute identical quantities.
    fn compute_combs(&mut self, comb_lo: u64, comb_hi: u64, n: usize) {
        let candidates = (comb_hi - comb_lo + 1) as usize;
        let devices = self.bins.len();
        let m = self.correlator.fft_size();
        let hop = self.correlator.lags_per_segment();
        // Overlap-save needs every lag in [0, candidates + 7n); each
        // segment costs one shared forward plus one inverse per template
        // (up and down, hence 2 per device).
        let total_lags = candidates + (PREAMBLE_SYMBOLS - 1) * n;
        let segments = total_lags.div_ceil(hop);
        let os_work = segments * (1 + 2 * devices) * m * m.trailing_zeros() as usize;
        // The bank pays one n-point transform per candidate per preamble
        // symbol, scoring all devices at once.
        let bank_work = candidates * PREAMBLE_SYMBOLS * n * n.trailing_zeros() as usize;
        if devices > 0 && os_work < bank_work {
            self.build_templates();
            self.combs_overlap_save(comb_lo, candidates, n);
        } else {
            self.combs_bank(comb_lo, candidates, n);
        }
    }

    /// Builds the per-device shift templates on first overlap-save use
    /// (dense populations always take the bank path and never pay for
    /// them).
    fn build_templates(&mut self) {
        if self.up_templates.len() == self.bins.len() {
            return;
        }
        let n = self.synth.params().num_bins();
        self.up_templates.clear();
        self.down_templates.clear();
        for &bin in &self.bins {
            let up = shift_template(&self.synth, bin, false);
            // A shift-`a` downchirp dechirps to the mirrored bin
            // `(n − a) mod n`, so the downchirp template carries that shift.
            let down = shift_template(&self.synth, (n - bin % n) % n, true);
            self.up_templates.push(
                self.correlator
                    .template(&up)
                    .expect("shift templates match the correlator geometry"),
            );
            self.down_templates.push(
                self.correlator
                    .template(&down)
                    .expect("shift templates match the correlator geometry"),
            );
        }
    }

    /// Chirp-bank comb evaluation: per candidate and preamble symbol, one
    /// critically-sampled FFT of the dechirped symbol scores every assigned
    /// shift at once.
    fn combs_bank(&mut self, comb_lo: u64, candidates: usize, n: usize) {
        let devices = self.bins.len();
        self.combs.clear();
        for c in 0..candidates {
            let at = (comb_lo - self.window_start) as usize + c;
            self.up_acc.clear();
            self.up_acc.resize(devices, 0.0);
            self.down_acc.clear();
            self.down_acc.resize(devices, 0.0);
            for s in 0..PREAMBLE_UPCHIRPS {
                self.bank
                    .upchirp_bank_into(&self.window[at + s * n..at + (s + 1) * n], &mut self.spec)
                    .expect("sync window is one symbol long");
                for (acc, &bin) in self.up_acc.iter_mut().zip(&self.bins) {
                    *acc += self.spec[bin].norm_sqr();
                }
            }
            for s in 0..PREAMBLE_DOWNCHIRPS {
                let o = at + (PREAMBLE_UPCHIRPS + s) * n;
                self.bank
                    .downchirp_bank_into(&self.window[o..o + n], &mut self.spec)
                    .expect("sync window is one symbol long");
                for (acc, &bin) in self.down_acc.iter_mut().zip(&self.bins) {
                    // A shift-`a` downchirp dechirps to the mirrored bin
                    // `(n − a) mod n`.
                    *acc += self.spec[(n - bin) % n].norm_sqr();
                }
            }
            self.combs.push(Self::comb_of(&self.up_acc, &self.down_acc));
        }
    }

    /// Overlap-save comb evaluation: one shared forward transform of the
    /// sync span per segment, then each device's up/down template is
    /// correlated across *all* candidate lags with a single
    /// multiply-inverse pass.
    fn combs_overlap_save(&mut self, comb_lo: u64, candidates: usize, n: usize) {
        let devices = self.bins.len();
        let at = (comb_lo - self.window_start) as usize;
        let span = candidates - 1 + PREAMBLE_SYMBOLS * n;
        let signal = &self.window[at..at + span];
        let total_lags = span - n + 1;
        let hop = self.correlator.lags_per_segment();
        // Flat [candidate][device] accumulators.
        self.up_acc.clear();
        self.up_acc.resize(candidates * devices, 0.0);
        self.down_acc.clear();
        self.down_acc.resize(candidates * devices, 0.0);
        let mut produced = 0;
        while produced < total_lags {
            let seg_end = (produced + self.correlator.fft_size()).min(span);
            self.correlator
                .load_segment(&signal[produced..seg_end])
                .expect("sync segment fits the correlator transform");
            let lag_hi = (produced + hop).min(total_lags);
            for (d, template) in self.up_templates.iter().enumerate() {
                self.correlator
                    .correlate_loaded_into(template, &mut self.corr)
                    .expect("sync templates match the correlator geometry");
                for s in 0..PREAMBLE_UPCHIRPS {
                    Self::accumulate_lattice(
                        &self.corr,
                        &mut self.up_acc,
                        s * n,
                        produced,
                        lag_hi,
                        candidates,
                        devices,
                        d,
                    );
                }
            }
            for (d, template) in self.down_templates.iter().enumerate() {
                self.correlator
                    .correlate_loaded_into(template, &mut self.corr)
                    .expect("sync templates match the correlator geometry");
                for s in 0..PREAMBLE_DOWNCHIRPS {
                    Self::accumulate_lattice(
                        &self.corr,
                        &mut self.down_acc,
                        (PREAMBLE_UPCHIRPS + s) * n,
                        produced,
                        lag_hi,
                        candidates,
                        devices,
                        d,
                    );
                }
            }
            produced = lag_hi;
        }
        self.combs.clear();
        for c in 0..candidates {
            self.combs.push(Self::comb_of(
                &self.up_acc[c * devices..(c + 1) * devices],
                &self.down_acc[c * devices..(c + 1) * devices],
            ));
        }
    }

    /// Adds `|corr[candidate + offset]|²` into `acc[candidate·devices + d]`
    /// for every candidate whose lattice lag falls inside the current
    /// segment's lag range `[seg_lo, seg_hi)`.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_lattice(
        corr: &[Complex64],
        acc: &mut [f64],
        offset: usize,
        seg_lo: usize,
        seg_hi: usize,
        candidates: usize,
        devices: usize,
        d: usize,
    ) {
        let first = seg_lo.saturating_sub(offset);
        let last = seg_hi.saturating_sub(offset).min(candidates);
        for c in first..last {
            acc[c * devices + d] += corr[c + offset - seg_lo].norm_sqr();
        }
    }

    /// The summed per-device minimum of the normalized up/down comb powers.
    fn comb_of(up: &[f64], down: &[f64]) -> f64 {
        up.iter()
            .zip(down)
            .map(|(&up, &down)| {
                (up / PREAMBLE_UPCHIRPS as f64).min(down / PREAMBLE_DOWNCHIRPS as f64)
            })
            .sum()
    }

    /// The leading-edge anchor of a sync range: the first sample whose
    /// individual power clears [`EDGE_ANCHOR_DB`] over the noise floor —
    /// the changepoint a single strong sample pins. Falls back to `hi`
    /// when nothing crosses (weak aggregate; the comb is then sharp on its
    /// own and the anchor is moot).
    fn edge_anchor(&self, lo: u64, hi: u64) -> u64 {
        let threshold = (self.noise_floor * netscatter_dsp::units::db_to_linear(EDGE_ANCHOR_DB))
            .max(GATE_EPSILON);
        (lo..=hi)
            .find(|&abs| self.power(abs) > threshold)
            .unwrap_or(hi)
    }

    /// Discards the window prefix no state can ever revisit.
    fn trim(&mut self) {
        let hold = match self.state {
            // The gate may retro-locate a start up to
            // GATE_WINDOW - 1 + SYNC_SLACK samples before `scan`.
            State::Hunting => self.scan.saturating_sub((GATE_WINDOW + SYNC_SLACK) as u64),
            State::Syncing { lo, .. } => lo,
            State::Decoding { start } => start,
        };
        if hold > self.window_start {
            let drop = (hold - self.window_start) as usize;
            self.window.drain(..drop);
            self.powers.drain(..drop);
            self.window_start = hold;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netscatter_phy::distributed::OnOffModulator;
    use netscatter_phy::preamble::PreambleBuilder;

    fn config(bins: Vec<usize>, payload: usize) -> GatewayConfig {
        GatewayConfig::new(PhyProfile::default(), bins, payload)
    }

    /// One ideal packet on `bin` with the given payload bits.
    fn packet(bin: usize, bits: &[bool]) -> Vec<Complex64> {
        let params = PhyProfile::default().modulation.chirp();
        let mut out = PreambleBuilder::new(params, bin).build(0.0, 0.0, 1.0);
        out.extend(OnOffModulator::new(params, bin).modulate_payload(bits, 0.0, 0.0, 1.0));
        out
    }

    #[test]
    fn detector_finds_an_offset_packet_sample_exactly() {
        let bits = [true, false, true, true];
        let cfg = config(vec![100], bits.len());
        let mut det = StreamDetector::new(&cfg).unwrap();
        let mut stream = vec![Complex64::ZERO; 777];
        stream.extend(packet(100, &bits));
        stream.extend(vec![Complex64::ZERO; 300]);
        let mut spans = Vec::new();
        det.push(&stream, &mut spans);
        det.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_sample, 777);
        assert_eq!(spans[0].samples.len(), cfg.packet_samples());
        assert_eq!(det.truncated(), 0);
        assert_eq!(det.state(), DetectorState::Hunting);
    }

    #[test]
    fn single_sample_chunks_give_the_same_span() {
        let bits = [true, true, false, true, false];
        let cfg = config(vec![64], bits.len());
        let mut stream = vec![Complex64::ZERO; 123];
        stream.extend(packet(64, &bits));
        stream.extend(vec![Complex64::ZERO; 50]);

        let mut whole = Vec::new();
        let mut det = StreamDetector::new(&cfg).unwrap();
        det.push(&stream, &mut whole);

        let mut single = Vec::new();
        let mut det = StreamDetector::new(&cfg).unwrap();
        for s in &stream {
            det.push(std::slice::from_ref(s), &mut single);
        }

        assert_eq!(whole.len(), 1);
        assert_eq!(single.len(), 1);
        assert_eq!(whole[0].start_sample, single[0].start_sample);
        assert_eq!(whole[0].samples, single[0].samples);
    }

    #[test]
    fn mid_packet_stream_end_counts_as_truncated() {
        let bits = [true; 8];
        let cfg = config(vec![32], bits.len());
        let mut det = StreamDetector::new(&cfg).unwrap();
        let mut stream = vec![Complex64::ZERO; 40];
        let pkt = packet(32, &bits);
        stream.extend(&pkt[..pkt.len() / 2]);
        let mut spans = Vec::new();
        det.push(&stream, &mut spans);
        det.finish();
        assert!(spans.is_empty());
        assert_eq!(det.truncated(), 1);
    }

    #[test]
    fn window_stays_bounded_over_a_long_idle_stream() {
        let cfg = config(vec![0], 4);
        let mut det = StreamDetector::new(&cfg).unwrap();
        let idle = vec![Complex64::ZERO; 4096];
        let mut spans = Vec::new();
        for _ in 0..64 {
            det.push(&idle, &mut spans);
        }
        assert!(spans.is_empty());
        assert!(
            det.window.len() <= 2 * (GATE_WINDOW + SYNC_SLACK) + 4096,
            "window grew to {} samples",
            det.window.len()
        );
    }

    #[test]
    fn sparse_population_takes_overlap_save_and_stays_sample_exact() {
        // One device: the transform-work model must pick overlap-save, and
        // detection must stay sample-exact on that path.
        let bits = [true, false, true, true];
        let cfg = config(vec![37], bits.len());
        let mut det = StreamDetector::new(&cfg).unwrap();
        // The anchored sync range holds 2·SYNC_SLACK + 1 candidates; one
        // device correlates cheaper via overlap-save there.
        let n = cfg.profile.modulation.num_bins();
        let candidates = 2 * SYNC_SLACK + 1;
        let hop = det.correlator.lags_per_segment();
        let total_lags = candidates + (PREAMBLE_SYMBOLS - 1) * n;
        let segments = total_lags.div_ceil(hop);
        let m = det.correlator.fft_size();
        let os_work = segments * 3 * m * m.trailing_zeros() as usize;
        let bank_work = candidates * PREAMBLE_SYMBOLS * n * n.trailing_zeros() as usize;
        assert!(
            os_work < bank_work,
            "one-device sync should favor overlap-save ({os_work} vs {bank_work})"
        );
        let mut stream = vec![Complex64::ZERO; 901];
        stream.extend(packet(37, &bits));
        stream.extend(vec![Complex64::ZERO; 200]);
        let mut spans = Vec::new();
        det.push(&stream, &mut spans);
        det.finish();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_sample, 901);
    }

    #[test]
    fn fast_comb_paths_agree_with_padded_spectrum_reference() {
        use netscatter_phy::distributed::{ConcurrentDemodulator, DemodWorkspace};

        // Three devices, impaired superposed packet at a known offset: the
        // bank path, the overlap-save path, and the original padded-
        // spectrum comb must agree on every candidate within fp tolerance.
        let profile = PhyProfile::default();
        let params = profile.modulation.chirp();
        let n = params.num_bins();
        let bins = vec![100usize, 102, 250];
        let cfg = config(bins.clone(), 4);
        let mut det = StreamDetector::new(&cfg).unwrap();

        let offset = 300usize;
        let mut stream = vec![Complex64::ZERO; offset];
        let mut body = vec![Complex64::ZERO; cfg.packet_samples()];
        for (i, &bin) in bins.iter().enumerate() {
            let pkt = PreambleBuilder::new(params, bin).build(
                0.05 * i as f64,
                30.0 * i as f64,
                0.6 + 0.2 * i as f64,
            );
            for (acc, s) in body.iter_mut().zip(pkt.iter()) {
                *acc += *s;
            }
        }
        stream.extend_from_slice(&body);
        stream.extend(vec![Complex64::ZERO; 64]);

        // Load the stream as the detector's window directly.
        det.window = stream.clone();
        netscatter_dsp::kernels::power_into(&det.window, &mut det.powers);
        det.window_start = 0;

        let comb_lo = offset as u64 - 5;
        let candidates = 11usize;
        det.combs_bank(comb_lo, candidates, n);
        let bank = det.combs.clone();
        det.build_templates();
        det.combs_overlap_save(comb_lo, candidates, n);
        let os = det.combs.clone();

        // Reference: the original per-candidate padded-spectrum comb.
        let demod = ConcurrentDemodulator::new(params, profile.zero_padding).unwrap();
        let mut ws = DemodWorkspace::new();
        let mut reference = Vec::new();
        for c in 0..candidates {
            let at = comb_lo as usize + c;
            let mut up = vec![0.0f64; bins.len()];
            let mut down = vec![0.0f64; bins.len()];
            for s in 0..PREAMBLE_UPCHIRPS {
                let spec = demod
                    .padded_spectrum_into(&stream[at + s * n..at + (s + 1) * n], &mut ws)
                    .unwrap();
                for (acc, &bin) in up.iter_mut().zip(&bins) {
                    *acc += demod.device_power_at(spec, bin as f64, 0.0).0;
                }
            }
            for s in 0..PREAMBLE_DOWNCHIRPS {
                let o = at + (PREAMBLE_UPCHIRPS + s) * n;
                let spec = demod
                    .padded_spectrum_downchirp_into(&stream[o..o + n], &mut ws)
                    .unwrap();
                for (acc, &bin) in down.iter_mut().zip(&bins) {
                    *acc += demod.device_power_at(spec, ((n - bin) % n) as f64, 0.0).0;
                }
            }
            reference.push(StreamDetector::comb_of(&up, &down));
        }

        let scale = reference.iter().cloned().fold(0.0f64, f64::max);
        for c in 0..candidates {
            assert!(
                (bank[c] - reference[c]).abs() < 1e-9 * scale,
                "bank comb {c}: {} != {}",
                bank[c],
                reference[c]
            );
            assert!(
                (os[c] - reference[c]).abs() < 1e-9 * scale,
                "overlap-save comb {c}: {} != {}",
                os[c],
                reference[c]
            );
        }
    }

    #[test]
    fn noise_floor_tracks_the_idle_power() {
        let cfg = config(vec![0], 4);
        let mut det = StreamDetector::new(&cfg).unwrap();
        // Constant-power idle at |x|² = 0.25 (deterministic, below any
        // plausible packet power).
        let idle = vec![Complex64::new(0.5, 0.0); 1 << 15];
        let mut spans = Vec::new();
        det.push(&idle, &mut spans);
        assert!(spans.is_empty());
        assert!((det.noise_floor() - 0.25).abs() < 0.02);
    }
}

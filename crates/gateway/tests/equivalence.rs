//! Streaming/batch equivalence: the gateway's chunked decode must be
//! **bit-identical** to the batch [`ConcurrentReceiver`] decoding the same
//! round from a contiguous buffer — for randomized chunk sizes (from one
//! sample to four symbols), randomized packet offsets, and packets
//! straddling chunk boundaries. The overlap-save window stitching makes
//! every decision a function of absolute sample positions only, so the
//! exact same FFTs run over the exact same samples and even the f64
//! preamble powers match exactly.

use netscatter::receiver::{ConcurrentReceiver, DecodedRound};
use netscatter_coding::frame::FrameCodec;
use netscatter_coding::CodingScheme;
use netscatter_dsp::Complex64;
use netscatter_gateway::{
    run_stream, DecodedPacket, GatewayConfig, MultiChannelEngine, ReplaySource, StreamGateway,
};
use netscatter_phy::distributed::OnOffModulator;
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::PreambleBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthesized concurrent round plus everything needed to check it.
struct Round {
    /// Contiguous stream: `offset` idle samples, the round, idle tail.
    stream: Vec<Complex64>,
    /// Where the round starts.
    offset: usize,
    /// The population's assigned bins.
    bins: Vec<usize>,
    /// Payload bits per device (same length for every device).
    payload_bits: usize,
}

/// Synthesizes a concurrent round of `devices` impaired transmitters at
/// SKIP-spaced bins, preceded by `offset` idle samples.
fn build_round(rng: &mut StdRng, devices: usize, offset: usize, payload_bits: usize) -> Round {
    let profile = PhyProfile::default();
    let params = profile.modulation.chirp();
    let n = params.num_bins();
    let spacing = (n / devices.max(1)).max(profile.skip);
    let bins: Vec<usize> = (0..devices).map(|i| (i * spacing) % n).collect();
    let mut body = vec![Complex64::ZERO; (8 + payload_bits) * n];
    for &bin in &bins {
        // Post-compensation COTS offsets: one-sided sub-sample timing,
        // sub-bin CFO, a spread of receive amplitudes. The combined
        // residual stays safely under half a bin, so the sync comb's
        // argmax is unambiguous (exactly the §3.2.1 invariant the batch
        // receiver itself relies on).
        let timing_s = rng.gen_range(0.0..0.3) * params.sample_period_s();
        let freq_hz = rng.gen_range(-80.0..80.0);
        let amp = rng.gen_range(0.5..1.5);
        let pre = PreambleBuilder::new(params, bin).build(timing_s, freq_hz, amp);
        let bits: Vec<bool> = (0..payload_bits).map(|_| rng.gen_bool(0.5)).collect();
        let pay = OnOffModulator::new(params, bin).modulate_payload(&bits, timing_s, freq_hz, amp);
        for (acc, s) in body.iter_mut().zip(pre.iter().chain(pay.iter())) {
            *acc += *s;
        }
    }
    let mut stream = vec![Complex64::ZERO; offset];
    stream.extend(body);
    stream.extend(vec![Complex64::ZERO; 1024]);
    Round {
        stream,
        offset,
        bins,
        payload_bits,
    }
}

/// Like [`build_round`] but every device transmits a caller-provided bit
/// vector (a coded link-layer frame) instead of random payload bits.
fn build_round_with_frames(rng: &mut StdRng, offset: usize, frames: &[Vec<bool>]) -> Round {
    let profile = PhyProfile::default();
    let params = profile.modulation.chirp();
    let n = params.num_bins();
    let devices = frames.len();
    let spacing = (n / devices.max(1)).max(profile.skip);
    let bins: Vec<usize> = (0..devices).map(|i| (i * spacing) % n).collect();
    let payload_bits = frames[0].len();
    let mut body = vec![Complex64::ZERO; (8 + payload_bits) * n];
    for (&bin, bits) in bins.iter().zip(frames) {
        let timing_s = rng.gen_range(0.0..0.3) * params.sample_period_s();
        let freq_hz = rng.gen_range(-80.0..80.0);
        let amp = rng.gen_range(0.5..1.5);
        let pre = PreambleBuilder::new(params, bin).build(timing_s, freq_hz, amp);
        let pay = OnOffModulator::new(params, bin).modulate_payload(bits, timing_s, freq_hz, amp);
        for (acc, s) in body.iter_mut().zip(pre.iter().chain(pay.iter())) {
            *acc += *s;
        }
    }
    let mut stream = vec![Complex64::ZERO; offset];
    stream.extend(body);
    stream.extend(vec![Complex64::ZERO; 1024]);
    Round {
        stream,
        offset,
        bins,
        payload_bits,
    }
}

/// The batch reference: [`ConcurrentReceiver::decode_round`] on the
/// contiguous buffer at the true packet start.
fn batch_decode(round: &Round) -> DecodedRound {
    let rx = ConcurrentReceiver::new(&PhyProfile::default()).expect("valid profile");
    rx.decode_round(&round.stream, round.offset, &round.bins, round.payload_bits)
        .expect("batch decode succeeds")
}

/// Runs the synchronous gateway over `round.stream` cut into the given
/// chunk schedule (cycled until the stream is exhausted).
fn stream_decode(round: &Round, chunk_sizes: &[usize]) -> Vec<DecodedPacket> {
    let cfg = GatewayConfig::new(
        PhyProfile::default(),
        round.bins.clone(),
        round.payload_bits,
    );
    let mut gw = StreamGateway::new(&cfg).expect("gateway builds");
    let mut packets = Vec::new();
    let mut at = 0usize;
    let mut i = 0usize;
    while at < round.stream.len() {
        let len = chunk_sizes[i % chunk_sizes.len()].min(round.stream.len() - at);
        packets.extend(gw.feed(&round.stream[at..at + len]).expect("feed decodes"));
        at += len;
        i += 1;
    }
    assert_eq!(gw.finish(), 0, "no truncated packets");
    packets
}

fn assert_equivalent(round: &Round, packets: &[DecodedPacket], label: &str) {
    assert_eq!(packets.len(), 1, "{label}: exactly one packet");
    let packet = &packets[0];
    assert_eq!(
        packet.start_sample, round.offset as u64,
        "{label}: streaming sync must find the exact packet start"
    );
    let batch = batch_decode(round);
    // Full struct equality: same devices, same decoded bits, and the same
    // f64 preamble powers — the streaming path ran the identical FFTs over
    // the identical samples.
    assert_eq!(
        packet.round, batch,
        "{label}: streaming decode diverged from batch decode"
    );
    assert!(
        !batch.devices.is_empty(),
        "{label}: reference round detected nobody"
    );
}

#[test]
fn randomized_chunk_sizes_and_offsets_are_bit_identical_to_batch() {
    // The satellite contract: chunk sizes randomized in 1..4·symbol
    // (2048 samples at SF9) and randomized packet offsets, ten rounds.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for iteration in 0..10 {
        let devices = rng.gen_range(1..=8usize);
        let offset = rng.gen_range(32..1800usize);
        let payload_bits = rng.gen_range(4..=16usize);
        let round = build_round(&mut rng, devices, offset, payload_bits);
        let schedule: Vec<usize> = (0..64).map(|_| rng.gen_range(1..=2048usize)).collect();
        let packets = stream_decode(&round, &schedule);
        assert_equivalent(
            &round,
            &packets,
            &format!("iteration {iteration} (devices={devices}, offset={offset})"),
        );
    }
}

#[test]
fn boundary_straddling_chunk_schedules_are_bit_identical_to_batch() {
    // Deliberately hostile chunkings: one-sample chunks, sizes coprime to
    // the 512-sample symbol so every chirp window straddles a boundary,
    // and a chunk size just under the 4-symbol cap.
    let mut rng = StdRng::seed_from_u64(7);
    let round = build_round(&mut rng, 6, 613, 12);
    for schedule in [
        vec![1usize],
        vec![7],
        vec![511],
        vec![513],
        vec![2047],
        vec![512, 1, 511, 2],
    ] {
        let packets = stream_decode(&round, &schedule);
        assert_equivalent(&round, &packets, &format!("schedule {schedule:?}"));
    }
}

#[test]
fn high_snr_noise_floor_does_not_break_the_equivalence() {
    // The same round riding on a -40 dB noise floor: the energy gate now
    // has a nonzero floor to calibrate and the sync comb sees perturbed
    // spectra, but the located start must not move and the decode must
    // still match batch exactly (both paths see the same noisy samples).
    let mut rng = StdRng::seed_from_u64(21);
    let mut round = build_round(&mut rng, 4, 900, 10);
    let sigma = (1e-4f64 / 2.0).sqrt();
    for s in round.stream.iter_mut() {
        // Box-Muller from the test's own rng keeps the vendored-rand API
        // surface minimal.
        let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        let phi = 2.0 * std::f64::consts::PI * u2;
        *s += Complex64::new(r * phi.cos(), r * phi.sin());
    }
    let schedule: Vec<usize> = (0..32).map(|_| rng.gen_range(1..=2048usize)).collect();
    let packets = stream_decode(&round, &schedule);
    assert_equivalent(&round, &packets, "noisy stream");
}

#[test]
fn threaded_pipeline_is_bit_identical_to_batch_too() {
    // The full producer → ring → detector → worker topology over a replay
    // source, at a chunk size that straddles symbol boundaries.
    let mut rng = StdRng::seed_from_u64(99);
    let round = build_round(&mut rng, 5, 777, 8);
    let cfg = GatewayConfig {
        chunk_samples: 709,
        ring_slots: 3,
        workers: 4,
        ..GatewayConfig::new(
            PhyProfile::default(),
            round.bins.clone(),
            round.payload_bits,
        )
    };
    let mut source = ReplaySource::from_samples(round.stream.clone(), 500e3);
    let report = run_stream(&mut source, &cfg).expect("pipeline runs");
    assert_equivalent(&round, &report.packets, "threaded pipeline");
    assert_eq!(report.samples_in, round.stream.len() as u64);
}

#[test]
fn multi_channel_path_is_bit_identical_to_batch_on_every_channel() {
    // The sharded engine under *independently* randomized chunk schedules
    // per channel: three channels carrying different rounds (different
    // populations, offsets and impairments), each fed with its own
    // one-sample-to-four-symbol chunk sizes, interleaved across channels.
    // Every channel's anchors and frames must equal its own batch
    // reference exactly — sharding adds no new numerics anywhere.
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    // One payload length across channels (the deployment's round length is
    // global); populations, offsets and impairments differ per channel.
    let payload_bits = rng.gen_range(4..=12usize);
    let rounds: Vec<Round> = (0..3)
        .map(|i| {
            let offset = rng.gen_range(64..1500usize);
            build_round(&mut rng, 2 + i, offset, payload_bits)
        })
        .collect();
    // One shared config: the union population (the shards share a profile
    // and bin plan the way one gateway's channels share a deployment).
    let mut bins: Vec<usize> = rounds.iter().flat_map(|r| r.bins.clone()).collect();
    bins.sort_unstable();
    bins.dedup();
    // Per-round batch references must use the same union config.
    let rx = ConcurrentReceiver::new(&PhyProfile::default()).unwrap();
    let cfg = GatewayConfig {
        workers: 3,
        ..GatewayConfig::new(PhyProfile::default(), bins.clone(), payload_bits)
    };
    let mut engine = MultiChannelEngine::spawn(&cfg, rounds.len(), 500e3).unwrap();
    let mut cursors = vec![0usize; rounds.len()];
    let mut remaining = rounds.len();
    while remaining > 0 {
        for (channel, round) in rounds.iter().enumerate() {
            let at = cursors[channel];
            if at >= round.stream.len() {
                continue;
            }
            let len = rng.gen_range(1..=2048usize).min(round.stream.len() - at);
            engine
                .feed(channel, &round.stream[at..at + len])
                .expect("feed");
            cursors[channel] += len;
            if cursors[channel] >= round.stream.len() {
                remaining -= 1;
            }
        }
    }
    let report = engine.shutdown().expect("clean shutdown");
    assert_eq!(report.channels.len(), rounds.len());
    for (channel, (chan_report, round)) in report.channels.iter().zip(rounds.iter()).enumerate() {
        assert_eq!(
            chan_report.packets.len(),
            1,
            "channel {channel}: exactly one packet"
        );
        let packet = &chan_report.packets[0];
        assert_eq!(
            packet.start_sample, round.offset as u64,
            "channel {channel}: anchor must stay sample-exact under sharding"
        );
        let batch = rx
            .decode_round(&round.stream, round.offset, &bins, payload_bits)
            .expect("batch decode");
        assert_eq!(
            packet.round, batch,
            "channel {channel}: sharded decode diverged from batch"
        );
        assert!(!batch.devices.is_empty());
        assert_eq!(chan_report.samples_in, round.stream.len() as u64);
    }
}

#[test]
fn coded_frames_stream_bit_identically_and_decode_clean_at_any_worker_count() {
    // Link-layer frames (RS at 104 payload symbols) through the full
    // stack: the streaming decode must stay bit-identical to batch — and
    // therefore deterministic at any worker count — and the recovered bits
    // must reassemble into CRC-clean frames carrying the exact sent data.
    let mut rng = StdRng::seed_from_u64(0xFEC);
    let codec = FrameCodec::new(CodingScheme::Rs, 104).expect("valid frame geometry");
    let sent: Vec<(u8, Vec<bool>)> = (0..4u8)
        .map(|seq| {
            let data: Vec<bool> = (0..codec.data_bits()).map(|_| rng.gen_bool(0.5)).collect();
            (seq, data)
        })
        .collect();
    let frames: Vec<Vec<bool>> = sent
        .iter()
        .map(|(seq, data)| codec.encode_frame(*seq, data))
        .collect();
    let round = build_round_with_frames(&mut rng, 641, &frames);

    // Chunked synchronous path under a randomized schedule.
    let schedule: Vec<usize> = (0..48).map(|_| rng.gen_range(1..=2048usize)).collect();
    let packets = stream_decode(&round, &schedule);
    assert_equivalent(&round, &packets, "coded chunked stream");

    // Threaded pipeline: worker count must not perturb a single bit.
    for workers in [1usize, 2, 4] {
        let cfg = GatewayConfig {
            chunk_samples: 709,
            ring_slots: 4,
            workers,
            ..GatewayConfig::new(
                PhyProfile::default(),
                round.bins.clone(),
                round.payload_bits,
            )
        };
        let mut source = ReplaySource::from_samples(round.stream.clone(), 500e3);
        let report = run_stream(&mut source, &cfg).expect("pipeline runs");
        assert_equivalent(
            &round,
            &report.packets,
            &format!("coded pipeline with {workers} workers"),
        );
    }

    // The link layer rides on top of the identical bits: every device's
    // decoded payload is a CRC-clean frame with the sent seq and data.
    let decoded = &packets[0].round;
    for ((seq, data), &bin) in sent.iter().zip(&round.bins) {
        let bits = decoded.bits_for(bin).expect("device decoded");
        let out = codec.decode_frame(bits);
        assert!(out.crc_ok, "bin {bin}: frame CRC failed");
        assert_eq!(out.seq, *seq, "bin {bin}: wrong frame sequence number");
        assert_eq!(&out.data, data, "bin {bin}: frame data diverged");
    }
}

#[test]
fn back_to_back_rounds_each_match_their_batch_decode() {
    // Two rounds in one stream, the second beginning right after the
    // first's recharge-scale gap; each must match its own batch reference.
    let mut rng = StdRng::seed_from_u64(5);
    let first = build_round(&mut rng, 3, 400, 8);
    let second = build_round(&mut rng, 3, 200, 8);
    let mut stream = first.stream.clone();
    let second_offset = stream.len() + second.offset;
    stream.extend(second.stream.iter().copied());
    let combined = Round {
        stream,
        offset: first.offset,
        bins: first.bins.clone(),
        payload_bits: 8,
    };
    let schedule: Vec<usize> = (0..48).map(|_| rng.gen_range(1..=2048usize)).collect();
    let packets = stream_decode(&combined, &schedule);
    assert_eq!(packets.len(), 2, "both rounds found");
    assert_eq!(packets[0].start_sample, first.offset as u64);
    assert_eq!(packets[1].start_sample, second_offset as u64);
    assert_eq!(packets[0].round, batch_decode(&first));
    // The second round's batch reference decodes from the combined buffer
    // at its absolute offset (same bins by construction).
    let rx = ConcurrentReceiver::new(&PhyProfile::default()).unwrap();
    let batch_second = rx
        .decode_round(&combined.stream, second_offset, &second.bins, 8)
        .unwrap();
    assert_eq!(packets[1].round, batch_second);
}

//! Deterministic sharded Monte-Carlo execution.
//!
//! The BER sweeps (Figs. 12/15b) and the network sweeps (Figs. 17–19) are
//! embarrassingly parallel, but naive parallelism destroys reproducibility:
//! splitting one RNG stream across threads makes the result depend on how
//! the scheduler interleaves them. This module fixes the random structure
//! *independently of the thread count*:
//!
//! * Work is partitioned into **shards** of a fixed number of trials
//!   ([`TRIALS_PER_SHARD`]); the shard layout depends only on the total
//!   trial count, never on the machine.
//! * Each shard owns a private `StdRng` seeded `seed ⊕ shard`, so shard `s`
//!   always consumes the same random stream no matter which worker thread
//!   runs it, or in what order.
//! * Workers ([`std::thread::scope`]) claim shards round-robin and results
//!   are reassembled in shard order.
//!
//! The contract: **for a given seed and trial count, the per-shard results —
//! and therefore any aggregate computed from them in shard order — are
//! bit-identical at every thread count**, including the sequential
//! single-thread path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Number of trials each shard runs with its private RNG stream. Fixed so
/// that the random structure of an experiment is a function of `(seed,
/// trials)` alone; thread count only changes which worker runs which shard.
pub const TRIALS_PER_SHARD: usize = 64;

/// A deterministic sharded Monte-Carlo runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Base seed; shard `s` uses `seed ^ s`.
    pub seed: u64,
    /// Maximum number of worker threads. Any value ≥ 1 produces identical
    /// results; this only bounds parallelism.
    pub threads: usize,
}

impl MonteCarlo {
    /// A runner using every available core.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            threads: available_threads(),
        }
    }

    /// A runner with an explicit worker-thread bound; 0 resolves to the
    /// available parallelism (never passed through literally).
    pub fn with_threads(seed: u64, threads: usize) -> Self {
        Self {
            seed,
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// A runner for a derived sub-experiment (e.g. one sweep point): same
    /// thread bound, decorrelated seed.
    pub fn derive(&self, salt: u64) -> Self {
        Self {
            // SplitMix64-style mix so that consecutive salts produce
            // unrelated shard seeds.
            seed: self
                .seed
                .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(31),
            threads: self.threads,
        }
    }

    /// Runs `trials` independent trials, split into fixed-size shards, and
    /// returns the per-shard results in shard order.
    ///
    /// `body` receives the shard's private RNG and the half-open range of
    /// global trial indices it covers; it must not use any other source of
    /// randomness. Results are bit-identical for a given `(seed, trials)`
    /// at any thread count.
    pub fn run_shards<T, F>(&self, trials: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut StdRng, Range<usize>) -> T + Sync,
    {
        let shards = shard_ranges(trials);
        let indices: Vec<usize> = (0..shards.len()).collect();
        parallel_map(&indices, self.threads, |&s| {
            body(&mut self.shard_rng(s), shards[s].clone())
        })
    }

    /// Convenience for counting experiments (e.g. bit errors): sums the
    /// per-shard counts. Deterministic because integer addition is
    /// associative and shards are summed in shard order.
    pub fn count<F>(&self, trials: usize, body: F) -> usize
    where
        F: Fn(&mut StdRng, Range<usize>) -> usize + Sync,
    {
        self.run_shards(trials, body).into_iter().sum()
    }

    fn shard_rng(&self, shard: usize) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ shard as u64)
    }
}

/// The fixed shard layout for a trial count: consecutive chunks of
/// [`TRIALS_PER_SHARD`] trials, the last one possibly shorter.
fn shard_ranges(trials: usize) -> Vec<Range<usize>> {
    (0..trials.div_ceil(TRIALS_PER_SHARD))
        .map(|s| s * TRIALS_PER_SHARD..((s + 1) * TRIALS_PER_SHARD).min(trials))
        .collect()
}

/// Number of worker threads to use by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across worker threads, returning the
/// results in input order. `f` must be a pure function of its input for the
/// output to be thread-count-independent (which is how the Fig. 17–19
/// network sweeps use it: the deployment is generated once up front, and
/// every sweep point is a deterministic function of it).
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    let mut i = w;
                    while i < items.len() {
                        done.push((i, f(&items[i])));
                        i += workers;
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("parallel_map worker panicked") {
                results[i] = Some(value);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn shard_layout_depends_only_on_trial_count() {
        assert!(shard_ranges(0).is_empty());
        assert_eq!(shard_ranges(1), vec![0..1]);
        assert_eq!(shard_ranges(TRIALS_PER_SHARD), vec![0..TRIALS_PER_SHARD]);
        assert_eq!(
            shard_ranges(TRIALS_PER_SHARD + 1),
            vec![0..TRIALS_PER_SHARD, TRIALS_PER_SHARD..TRIALS_PER_SHARD + 1]
        );
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // A trial body whose result depends on both the rng stream and the
        // trial index, so any scheduling leak would show up.
        let body = |rng: &mut StdRng, range: Range<usize>| -> u64 {
            range
                .map(|t| rng.gen_range(0u64..1 << 40).wrapping_mul(t as u64 + 1))
                .fold(0u64, u64::wrapping_add)
        };
        let reference = MonteCarlo::with_threads(42, 1).run_shards(1000, body);
        for threads in [2usize, 3, 4, 16] {
            let got = MonteCarlo::with_threads(42, threads).run_shards(1000, body);
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn count_sums_shard_results() {
        let mc = MonteCarlo::with_threads(7, 4);
        let total = mc.count(300, |_, range| range.len());
        assert_eq!(total, 300);
    }

    #[test]
    fn derived_runners_decorrelate_seeds() {
        let mc = MonteCarlo::with_threads(1, 1);
        assert_ne!(mc.derive(0).seed, mc.derive(1).seed);
        assert_ne!(mc.derive(1).seed, mc.seed);
        // Deriving is deterministic.
        assert_eq!(mc.derive(5), mc.derive(5));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let reference: Vec<usize> = items.iter().map(|i| i * i).collect();
        for threads in [1usize, 2, 5] {
            assert_eq!(parallel_map(&items, threads, |i| i * i), reference);
        }
    }
}

//! The registered experiment drivers — one per table/figure/analysis of the
//! paper's evaluation, plus the CI perf snapshot.
//!
//! Every driver implements [`Experiment`]: `run` maps a
//! [`Scenario`] to a structured [`ExperimentResult`] (named numeric tables
//! plus named scalars), and `render_text` reproduces the pre-redesign text
//! report byte-for-byte from that structure — pinned by the golden parity
//! tests in `tests/golden_parity.rs`. The unified `netscatter` CLI and the
//! per-figure shim binaries both drive [`registry`]; the Criterion benches
//! time the same drivers through the string-returning compatibility
//! wrappers ([`fig04`], [`fig17`], …).

use crate::ber::{max_tolerable_power_difference_db_sharded, near_far_ber_sharded, NearFarConfig};
use crate::deployment::Deployment;
use crate::experiment::{Experiment, ExperimentResult, Table};
use crate::montecarlo::{available_threads, parallel_map, MonteCarlo};
use crate::network::{
    lora_backscatter_metrics_with, netscatter_metrics_with, Fidelity, NetScatterVariant,
    SchemeMetrics,
};
use crate::scenario::Scenario;
use netscatter::analysis;
use netscatter_baselines::choir::fft_bin_variation_cdf;
use netscatter_baselines::tdma::LoraScheme;
use netscatter_channel::doppler::backscatter_doppler_shift_hz;
use netscatter_channel::fading::TemporalFading;
use netscatter_channel::impairments::ImpairmentModel;
use netscatter_coding::frame::FrameCodec;
use netscatter_coding::CodingScheme;
use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::spectrogram::{spectrogram, SpectrogramConfig};
use netscatter_dsp::spectrum::sidelobe_profile_db;
use netscatter_dsp::stats::EmpiricalCdf;
use netscatter_phy::params::ModulationConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

pub use crate::scenario::Scale;

/// The registered experiments, in the order `netscatter list` prints them.
static REGISTRY: [&dyn Experiment; 17] = [
    &Table1,
    &Fig04,
    &Fig08,
    &Fig09,
    &Fig12,
    &Fig14,
    &Fig15,
    &Fig16,
    &Fig17,
    &Fig18,
    &Fig19,
    &AnalysisChoir,
    &AnalysisCapacity,
    &Gateway,
    &Goodput,
    &Latency,
    &Perf,
];

/// Every registered experiment.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks an experiment up by its registry id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().find(|e| e.id() == id).copied()
}

/// The report-header tag for a fidelity mode.
fn fidelity_tag(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Analytical => "analytical",
        Fidelity::SampleLevel => "sample-level",
    }
}

// ---------------------------------------------------------------------------
// Table 1

/// Table 1: modulation configurations and their derived properties.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table 1: modulation configurations and derived properties"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "configs",
            &[
                ("bandwidth_hz", "Hz"),
                ("spreading_factor", ""),
                ("tolerable_timing_mismatch_s", "s"),
                ("tolerable_frequency_mismatch_hz", "Hz"),
                ("per_device_bitrate_bps", "bps"),
                ("sensitivity_dbm", "dBm"),
            ],
        );
        for cfg in ModulationConfig::table1_rows() {
            t.push_row(vec![
                cfg.bandwidth_hz,
                cfg.spreading_factor as f64,
                cfg.tolerable_timing_mismatch_s(),
                cfg.tolerable_frequency_mismatch_hz(),
                cfg.per_device_bitrate_bps(),
                cfg.sensitivity_dbm(),
            ]);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from(
            "Table 1: NetScatter modulation configurations\nBW[kHz]  SF  TimeVar[us]  FreqVar[Hz]  BitRate[bps]  Sensitivity[dBm]\n",
        );
        for row in &result.table("configs").expect("configs table").rows {
            let _ = writeln!(
                out,
                "{:7.0}  {:2.0}  {:11.1}  {:11.0}  {:12.0}  {:16.1}",
                row[0] / 1e3,
                row[1],
                row[2] * 1e6,
                row[3],
                row[4],
                row[5]
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 4

/// Fig. 4: CDF of ΔFFTbin for backscatter devices vs. active LoRa radios.
pub struct Fig04;

impl Experiment for Fig04 {
    fn id(&self) -> &'static str {
        "fig04"
    }

    fn title(&self) -> &'static str {
        "Fig. 4: CDF of delta-FFT-bin, backscatter vs. active LoRa radios"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["scale", "seed"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let params = ChirpParams::new(500e3, 9).expect("paper parameters");
        let devices = scenario.scale.pick(32, 256);
        let packets = scenario.scale.pick(20, 200);
        let tags = fft_bin_variation_cdf(
            &mut rng,
            &ImpairmentModel::cots_backscatter(),
            params,
            devices,
            packets,
        );
        let radios = fft_bin_variation_cdf(
            &mut rng,
            &ImpairmentModel::active_radio(),
            params,
            devices,
            packets,
        );
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "cdf",
            &[
                ("dfft_bin", "bins"),
                ("backscatter", ""),
                ("lora_radio", ""),
            ],
        );
        for i in 0..=28 {
            let x = i as f64 * 0.25;
            t.push_row(vec![
                x,
                tags.probability_at_or_below(x),
                radios.probability_at_or_below(x),
            ]);
        }
        result.tables.push(t);
        result
            .scalars
            .push(("backscatter_p99_bins".into(), tags.quantile(0.99)));
        result
            .scalars
            .push(("radio_p99_bins".into(), radios.quantile(0.99)));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Fig. 4: CDF of delta-FFT-bin (BW=500 kHz, SF=9)\n  dFFTbin  CDF(backscatter)  CDF(LoRa radio)\n");
        for row in &result.table("cdf").expect("cdf table").rows {
            let _ = writeln!(out, "  {:7.2}  {:16.3}  {:15.3}", row[0], row[1], row[2]);
        }
        let _ = writeln!(
            out,
            "backscatter p99 = {:.3} bins, radio p99 = {:.3} bins",
            result.scalar("backscatter_p99_bins").expect("scalar"),
            result.scalar("radio_p99_bins").expect("scalar")
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 8

/// Fig. 8: normalized dechirped power spectrum side-lobe levels.
pub struct Fig08;

impl Experiment for Fig08 {
    fn id(&self) -> &'static str {
        "fig08"
    }

    fn title(&self) -> &'static str {
        "Fig. 8: dechirped-spectrum side-lobe envelope"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let profile = sidelobe_profile_db(512, 8).expect("power-of-two sizes");
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new("sidelobes", &[("offset_bins", "bins"), ("level_db", "dB")]);
        for offset in [1usize, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256] {
            t.push_row(vec![offset as f64, profile.level_at_offset(offset)]);
        }
        result.tables.push(t);
        result.scalars.push((
            "skip2_tolerable_db".into(),
            profile.tolerable_power_difference_db(2),
        ));
        result.scalars.push((
            "skip3_tolerable_db".into(),
            profile.tolerable_power_difference_db(3),
        ));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Fig. 8: side-lobe envelope vs. bin offset (SF=9, zero-padding 8x)\n  offset[bins]  level[dB]\n");
        for row in &result.table("sidelobes").expect("sidelobes table").rows {
            let _ = writeln!(out, "  {:12.0}  {:9.2}", row[0], row[1]);
        }
        let _ = writeln!(
            out,
            "SKIP=2 tolerable power difference ≈ {:.1} dB (paper: ≈13 dB); SKIP=3 ≈ {:.1} dB (paper: ≈21 dB)",
            result.scalar("skip2_tolerable_db").expect("scalar"),
            result.scalar("skip3_tolerable_db").expect("scalar")
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 9

/// Fig. 9: CDF of SNR variation for eight devices over a busy office period.
pub struct Fig09;

impl Experiment for Fig09 {
    fn id(&self) -> &'static str {
        "fig09"
    }

    fn title(&self) -> &'static str {
        "Fig. 9: CDF of SNR variation under office mobility"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["scale", "seed"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let steps = scenario.scale.pick(2_000, 20_000);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "snr_deviation",
            &[
                ("device", ""),
                ("p5_db", "dB"),
                ("p50_db", "dB"),
                ("p95_db", "dB"),
            ],
        );
        for device in 0..8 {
            let mut fading = TemporalFading::office_default();
            let series = fading.series(&mut rng, steps);
            let cdf = EmpiricalCdf::from_samples(series);
            t.push_row(vec![
                (device + 1) as f64,
                cdf.quantile(0.05),
                cdf.quantile(0.5),
                cdf.quantile(0.95),
            ]);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Fig. 9: CDF of SNR deviation (dB) per device over 30 minutes of office mobility\n  device  p5      p50     p95\n");
        for row in &result.table("snr_deviation").expect("table").rows {
            let _ = writeln!(
                out,
                "  {:6.0}  {:6.2}  {:6.2}  {:6.2}",
                row[0], row[1], row[2], row[3]
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 12

/// Interferer power advantages of the Fig. 12 sweep, in dB.
const FIG12_DELTAS_DB: [f64; 4] = [0.0, 35.0, 40.0, 45.0];

/// Fig. 12: near-far BER vs. SNR for several interferer power advantages.
///
/// Every (SNR, Δpower) cell is an independent sharded Monte-Carlo point on
/// a seed derived from the scenario seed, so the report is reproducible
/// bit-for-bit at any thread count.
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn title(&self) -> &'static str {
        "Fig. 12: near-far BER vs. SNR with a strong interferer"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["scale", "seed", "threads"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mc = scenario.monte_carlo();
        let symbols = scenario.scale.pick(200, 10_000);
        let snrs = [-20.0, -18.0, -16.0, -14.0, -12.0, -10.0];
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "ber",
            &[
                ("snr_db", "dB"),
                ("ber_delta0", ""),
                ("ber_delta35", ""),
                ("ber_delta40", ""),
                ("ber_delta45", ""),
            ],
        );
        for (i, snr) in snrs.iter().enumerate() {
            let mut row = vec![*snr];
            for (j, delta) in FIG12_DELTAS_DB.iter().enumerate() {
                let cfg = NearFarConfig::paper(*delta);
                let cell = mc.derive((i * FIG12_DELTAS_DB.len() + j) as u64);
                row.push(near_far_ber_sharded(&cell, &cfg, *snr, symbols));
            }
            t.push_row(row);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from(
            "Fig. 12: victim BER vs. SNR with a strong interferer (power-aware assignment)\n  SNR[dB]",
        );
        for d in FIG12_DELTAS_DB {
            let _ = write!(out, "  delta={d:>4.0}dB");
        }
        out.push('\n');
        for row in &result.table("ber").expect("ber table").rows {
            let _ = write!(out, "  {:7.1}", row[0]);
            for ber in &row[1..] {
                let _ = write!(out, "  {ber:12.4}");
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 14

/// Fig. 14: (a) device frequency-offset CDF and (b) residual ΔFFTbin for
/// three modulation configurations.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "Fig. 14: frequency offsets and residual delta-FFT-bin"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["scale", "seed"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let model = ImpairmentModel::cots_backscatter();
        let devices = scenario.scale.pick(64, 256);
        let packets = scenario.scale.pick(50, 1000);
        // (a) frequency offsets.
        let mut offsets = Vec::new();
        for _ in 0..devices {
            let d = model.sample_device(&mut rng);
            for _ in 0..packets / 10 {
                offsets.push(model.sample_packet(&mut rng, &d).freq_offset_hz);
            }
        }
        let cdf = EmpiricalCdf::from_samples(offsets);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        result
            .scalars
            .push(("freq_p1_hz".into(), cdf.quantile(0.01)));
        result
            .scalars
            .push(("freq_p50_hz".into(), cdf.quantile(0.5)));
        result
            .scalars
            .push(("freq_p99_hz".into(), cdf.quantile(0.99)));
        // (b) residual ΔFFTbin for the three configurations.
        let mut t = Table::new(
            "residual_bins",
            &[
                ("bandwidth_hz", "Hz"),
                ("spreading_factor", ""),
                ("above_0p5", ""),
                ("above_1p0", ""),
                ("above_1p5", ""),
                ("above_2p0", ""),
            ],
        );
        for (bw, sf) in [(500e3, 9u32), (250e3, 8), (125e3, 7)] {
            let params = ChirpParams::new(bw, sf).expect("table configs are valid");
            let mut samples = Vec::new();
            for _ in 0..devices {
                let d = model.sample_device(&mut rng);
                for _ in 0..packets / 10 {
                    let p = model.sample_packet(&mut rng, &d);
                    let bins = params.timing_offset_to_bins(p.timing_offset_s)
                        + params.frequency_offset_to_bins(p.freq_offset_hz);
                    samples.push(bins.abs());
                }
            }
            let cdf = EmpiricalCdf::from_samples(samples);
            t.push_row(vec![
                bw,
                sf as f64,
                cdf.probability_above(0.5),
                cdf.probability_above(1.0),
                cdf.probability_above(1.5),
                cdf.probability_above(2.0),
            ]);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Fig. 14a: device frequency offsets (Hz)\n");
        let _ = writeln!(
            out,
            "  p1 = {:.1} Hz, p50 = {:.1} Hz, p99 = {:.1} Hz (paper: within ±150 Hz)",
            result.scalar("freq_p1_hz").expect("scalar"),
            result.scalar("freq_p50_hz").expect("scalar"),
            result.scalar("freq_p99_hz").expect("scalar")
        );
        out.push_str("Fig. 14b: residual delta-FFT-bin (1-CDF at 0.5/1.0/1.5/2.0 bins)\n  BW[kHz] SF   >0.5    >1.0    >1.5    >2.0\n");
        for row in &result.table("residual_bins").expect("table").rows {
            let _ = writeln!(
                out,
                "  {:6.0} {:3.0}  {:6.3}  {:6.3}  {:6.3}  {:6.3}",
                row[0] / 1e3,
                row[1],
                row[2],
                row[3],
                row[4],
                row[5]
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 15

/// Fig. 15: (a) Doppler-induced ΔFFTbin for pedestrian speeds and (b) the
/// power dynamic range vs. FFT-bin separation.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }

    fn title(&self) -> &'static str {
        "Fig. 15: Doppler delta-FFT-bin and power dynamic range"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["scale", "seed", "threads"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let params = ChirpParams::new(500e3, 9).expect("paper parameters");
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut doppler = Table::new(
            "doppler",
            &[("speed_mps", "m/s"), ("shift_hz", "Hz"), ("bins", "bins")],
        );
        for speed in [0.0, 1.0, 3.0, 5.0] {
            let shift = backscatter_doppler_shift_hz(speed, 900e6);
            doppler.push_row(vec![speed, shift, params.frequency_offset_to_bins(shift)]);
        }
        result.tables.push(doppler);
        let mc = scenario.monte_carlo();
        let symbols = scenario.scale.pick(60, 400);
        // The target BER must sit above both the single-error quantum
        // (1/symbols) and the ~0.3% CFO-tail error floor, or the sweep
        // aborts on a stray noise outlier instead of actual interference
        // (see the sibling test in ber.rs): 5% at 60 quick symbols, 1% at
        // 400 full-scale symbols.
        let target_ber = f64::max(0.01, 3.0 / symbols as f64);
        let mut range = Table::new(
            "power_range",
            &[("separation_bins", "bins"), ("tolerated_db", "dB")],
        );
        for (i, sep) in [2usize, 8, 32, 64, 128, 256].into_iter().enumerate() {
            let tolerated = max_tolerable_power_difference_db_sharded(
                &mc.derive(i as u64),
                params,
                sep,
                target_ber,
                symbols,
                45.0,
            );
            range.push_row(vec![sep as f64, tolerated]);
        }
        result.tables.push(range);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from(
            "Fig. 15a: Doppler delta-FFT-bin at 900 MHz\n  speed[m/s]  shift[Hz]  bins\n",
        );
        for row in &result.table("doppler").expect("doppler table").rows {
            let _ = writeln!(out, "  {:10.1}  {:9.1}  {:5.3}", row[0], row[1], row[2]);
        }
        out.push_str("Fig. 15b: max tolerable power difference vs. bin separation\n  separation[bins]  tolerated[dB]\n");
        for row in &result.table("power_range").expect("power_range table").rows {
            let _ = writeln!(out, "  {:16.0}  {:13.0}", row[0], row[1]);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fig. 16

/// Fig. 16: spectrogram peak levels of the backscattered signal at the three
/// power gains.
pub struct Fig16;

impl Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }

    fn title(&self) -> &'static str {
        "Fig. 16: backscatter power levels via the switch network"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        use netscatter::power::BackscatterGain;
        use netscatter_dsp::chirp::ChirpSynthesizer;
        let params = ChirpParams::new(500e3, 9).expect("paper parameters");
        let synth = ChirpSynthesizer::new(params);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let reference: f64 = {
            let sig = synth.oversampled_upchirp(0, 4, BackscatterGain::Full.amplitude());
            let sg = spectrogram(&sig, SpectrogramConfig::default()).expect("valid config");
            sg.mean_profile_db()
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let mut t = Table::new("gains", &[("gain_db", "dB"), ("measured_rel_db", "dB")]);
        for gain in BackscatterGain::ALL {
            let sig = synth.oversampled_upchirp(0, 4, gain.amplitude());
            // Use absolute power of the un-normalized signal: compute mean
            // power and express vs full.
            let power_db = netscatter_dsp::linear_to_db(netscatter_dsp::complex::mean_power(&sig));
            let full_db = netscatter_dsp::linear_to_db(BackscatterGain::Full.amplitude().powi(2));
            t.push_row(vec![gain.db(), power_db - full_db]);
        }
        result.tables.push(t);
        result
            .scalars
            .push(("spectrogram_reference_db".into(), reference));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Fig. 16: backscattered-signal spectrogram peak power at each gain setting\n  gain[dB]  measured peak[dB rel. full]\n");
        for row in &result.table("gains").expect("gains table").rows {
            let _ = writeln!(out, "  {:8.0}  {:10.1}", row[0], row[1]);
        }
        let reference = result.scalar("spectrogram_reference_db").expect("scalar");
        let _ = writeln!(
            out,
            "(spectrogram reference peak, self-normalized: {reference:.1} dB)"
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Figs. 17–19 (shared sweep)

/// The Fig. 17–19 sweep over network sizes: the deployment (generated from
/// the scenario's placement/devices/seed) and the x-axis sizes, clamped to
/// the scenario's device count.
fn network_sweep(scenario: &Scenario) -> (Deployment, Vec<usize>) {
    let dep = scenario.deployment();
    let base: Vec<usize> = match scenario.scale {
        Scale::Quick => vec![1, 64, 256],
        Scale::Full => vec![1, 16, 32, 64, 96, 128, 160, 192, 224, 256],
    };
    let mut sizes: Vec<usize> = base
        .into_iter()
        .filter(|&n| n <= scenario.devices)
        .collect();
    if sizes.last() != Some(&scenario.devices) {
        sizes.push(scenario.devices);
    }
    (dep, sizes)
}

/// One network size of the Fig. 17–19 sweep: all five schemes' metrics.
struct SweepRow {
    n: usize,
    fixed: SchemeMetrics,
    adapted: SchemeMetrics,
    ideal: SchemeMetrics,
    c1: SchemeMetrics,
    c2: SchemeMetrics,
}

/// Computes every sweep row in parallel. Each row is a pure function of the
/// (already generated) deployment and of the per-size derived Monte-Carlo
/// runner, so the result is independent of the thread count and identical
/// to the sequential sweep. Under [`Fidelity::SampleLevel`] the NetScatter
/// and baseline metrics of one row share their channel realizations: both
/// derive them from the same per-size runner.
fn sweep_rows(dep: &Deployment, sizes: &[usize], scenario: &Scenario) -> Vec<SweepRow> {
    let model = scenario.channel_model();
    let fidelity = scenario.fidelity;
    let mc = scenario.monte_carlo();
    parallel_map(sizes, scenario.threads, |&n| {
        // One decorrelated runner per network size; within the row, every
        // scheme sees the same trial seeds and therefore the same draws.
        let row_mc = MonteCarlo::with_threads(mc.derive(n as u64).seed, 1);
        SweepRow {
            n,
            fixed: lora_backscatter_metrics_with(
                dep,
                n,
                scenario.payload_bits,
                LoraScheme::fixed(),
                fidelity,
                &model,
                &row_mc,
            ),
            adapted: lora_backscatter_metrics_with(
                dep,
                n,
                scenario.payload_bits,
                LoraScheme::rate_adapted(),
                fidelity,
                &model,
                &row_mc,
            ),
            ideal: netscatter_metrics_with(
                dep,
                n,
                scenario.payload_bits,
                NetScatterVariant::Ideal,
                fidelity,
                &model,
                &row_mc,
            ),
            c1: netscatter_metrics_with(
                dep,
                n,
                scenario.payload_bits,
                NetScatterVariant::Config1,
                fidelity,
                &model,
                &row_mc,
            ),
            c2: netscatter_metrics_with(
                dep,
                n,
                scenario.payload_bits,
                NetScatterVariant::Config2,
                fidelity,
                &model,
                &row_mc,
            ),
        }
    })
}

/// The scenario fields the network figures consume.
const NETWORK_FIG_FIELDS: [&str; 8] = [
    "devices",
    "placement",
    "channel",
    "fidelity",
    "scale",
    "seed",
    "threads",
    "payload_bits",
];

/// Fig. 17: network PHY rate vs. number of devices.
pub struct Fig17;

impl Experiment for Fig17 {
    fn id(&self) -> &'static str {
        "fig17"
    }

    fn title(&self) -> &'static str {
        "Fig. 17: network PHY rate vs. number of devices"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &NETWORK_FIG_FIELDS
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let (dep, sizes) = network_sweep(scenario);
        let rows = sweep_rows(&dep, &sizes, scenario);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "phy_rate",
            &[
                ("n", ""),
                ("lora_fixed_bps", "bps"),
                ("lora_adapted_bps", "bps"),
                ("netscatter_ideal_bps", "bps"),
                ("netscatter_bps", "bps"),
            ],
        );
        for row in &rows {
            t.push_row(vec![
                row.n as f64,
                row.fixed.phy_rate_bps,
                row.adapted.phy_rate_bps,
                row.ideal.phy_rate_bps,
                row.c1.phy_rate_bps,
            ]);
        }
        result.tables.push(t);
        let last = rows.last().expect("sweep has at least one size");
        result.scalars.push((
            "gain_over_fixed".into(),
            last.c1.phy_rate_bps / last.fixed.phy_rate_bps,
        ));
        result.scalars.push((
            "gain_over_adapted".into(),
            last.c1.phy_rate_bps / last.adapted.phy_rate_bps,
        ));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = format!("Fig. 17: network PHY rate [kbps] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter(Ideal)  NetScatter\n", fidelity_tag(result.scenario.fidelity));
        let t = result.table("phy_rate").expect("phy_rate table");
        for row in &t.rows {
            let _ = writeln!(
                out,
                "  {:4.0}  {:10.1}  {:15.1}  {:17.1}  {:10.1}",
                row[0],
                row[1] / 1e3,
                row[2] / 1e3,
                row[3] / 1e3,
                row[4] / 1e3
            );
        }
        let last = t.rows.last().expect("sweep has at least one size");
        let _ = writeln!(
            out,
            "PHY-rate gain at {} devices: {:.1}x over fixed-rate (paper 26.2x), {:.1}x over rate-adapted (paper 6.8x)",
            last[0],
            result.scalar("gain_over_fixed").expect("scalar"),
            result.scalar("gain_over_adapted").expect("scalar")
        );
        out
    }
}

/// Fig. 18: link-layer data rate vs. number of devices.
pub struct Fig18;

impl Experiment for Fig18 {
    fn id(&self) -> &'static str {
        "fig18"
    }

    fn title(&self) -> &'static str {
        "Fig. 18: link-layer data rate vs. number of devices"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &NETWORK_FIG_FIELDS
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let (dep, sizes) = network_sweep(scenario);
        let rows = sweep_rows(&dep, &sizes, scenario);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "link_rate",
            &[
                ("n", ""),
                ("lora_fixed_bps", "bps"),
                ("lora_adapted_bps", "bps"),
                ("netscatter_cfg1_bps", "bps"),
                ("netscatter_cfg2_bps", "bps"),
            ],
        );
        for row in &rows {
            t.push_row(vec![
                row.n as f64,
                row.fixed.link_layer_rate_bps,
                row.adapted.link_layer_rate_bps,
                row.c1.link_layer_rate_bps,
                row.c2.link_layer_rate_bps,
            ]);
        }
        result.tables.push(t);
        let last = rows.last().expect("sweep has at least one size");
        for (name, value) in [
            (
                "cfg1_gain_over_fixed",
                last.c1.link_layer_rate_bps / last.fixed.link_layer_rate_bps,
            ),
            (
                "cfg2_gain_over_fixed",
                last.c2.link_layer_rate_bps / last.fixed.link_layer_rate_bps,
            ),
            (
                "cfg1_gain_over_adapted",
                last.c1.link_layer_rate_bps / last.adapted.link_layer_rate_bps,
            ),
            (
                "cfg2_gain_over_adapted",
                last.c2.link_layer_rate_bps / last.adapted.link_layer_rate_bps,
            ),
        ] {
            result.scalars.push((name.into(), value));
        }
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = format!("Fig. 18: link-layer data rate [kbps] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter-cfg1  NetScatter-cfg2\n", fidelity_tag(result.scenario.fidelity));
        let t = result.table("link_rate").expect("link_rate table");
        for row in &t.rows {
            let _ = writeln!(
                out,
                "  {:4.0}  {:10.1}  {:15.1}  {:15.1}  {:15.1}",
                row[0],
                row[1] / 1e3,
                row[2] / 1e3,
                row[3] / 1e3,
                row[4] / 1e3
            );
        }
        let last = t.rows.last().expect("sweep has at least one size");
        let _ = writeln!(
            out,
            "link-layer gains at {}: cfg1 {:.1}x / cfg2 {:.1}x over fixed (paper 61.9x / 50.9x); cfg1 {:.1}x / cfg2 {:.1}x over rate-adapted (paper 14.1x / 11.6x)",
            last[0],
            result.scalar("cfg1_gain_over_fixed").expect("scalar"),
            result.scalar("cfg2_gain_over_fixed").expect("scalar"),
            result.scalar("cfg1_gain_over_adapted").expect("scalar"),
            result.scalar("cfg2_gain_over_adapted").expect("scalar")
        );
        out
    }
}

/// Fig. 19: network latency vs. number of devices.
pub struct Fig19;

impl Experiment for Fig19 {
    fn id(&self) -> &'static str {
        "fig19"
    }

    fn title(&self) -> &'static str {
        "Fig. 19: network latency vs. number of devices"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &NETWORK_FIG_FIELDS
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let (dep, sizes) = network_sweep(scenario);
        let rows = sweep_rows(&dep, &sizes, scenario);
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "latency",
            &[
                ("n", ""),
                ("lora_fixed_s", "s"),
                ("lora_adapted_s", "s"),
                ("netscatter_cfg1_s", "s"),
                ("netscatter_cfg2_s", "s"),
            ],
        );
        for row in &rows {
            t.push_row(vec![
                row.n as f64,
                row.fixed.latency_s,
                row.adapted.latency_s,
                row.c1.latency_s,
                row.c2.latency_s,
            ]);
        }
        result.tables.push(t);
        let last = rows.last().expect("sweep has at least one size");
        for (name, value) in [
            (
                "cfg1_speedup_vs_fixed",
                last.fixed.latency_s / last.c1.latency_s,
            ),
            (
                "cfg2_speedup_vs_fixed",
                last.fixed.latency_s / last.c2.latency_s,
            ),
            (
                "cfg1_speedup_vs_adapted",
                last.adapted.latency_s / last.c1.latency_s,
            ),
            (
                "cfg2_speedup_vs_adapted",
                last.adapted.latency_s / last.c2.latency_s,
            ),
        ] {
            result.scalars.push((name.into(), value));
        }
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = format!("Fig. 19: network latency [ms] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter-cfg1  NetScatter-cfg2\n", fidelity_tag(result.scenario.fidelity));
        let t = result.table("latency").expect("latency table");
        for row in &t.rows {
            let _ = writeln!(
                out,
                "  {:4.0}  {:10.1}  {:15.1}  {:15.1}  {:15.1}",
                row[0],
                row[1] * 1e3,
                row[2] * 1e3,
                row[3] * 1e3,
                row[4] * 1e3
            );
        }
        let last = t.rows.last().expect("sweep has at least one size");
        let _ = writeln!(
            out,
            "latency reductions at {}: cfg1 {:.1}x / cfg2 {:.1}x vs fixed (paper 67.0x / 55.1x); cfg1 {:.1}x / cfg2 {:.1}x vs rate-adapted (paper 15.3x / 12.6x)",
            last[0],
            result.scalar("cfg1_speedup_vs_fixed").expect("scalar"),
            result.scalar("cfg2_speedup_vs_fixed").expect("scalar"),
            result.scalar("cfg1_speedup_vs_adapted").expect("scalar"),
            result.scalar("cfg2_speedup_vs_adapted").expect("scalar")
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Analyses

/// §2.2 analysis: Choir collision probabilities and distinct-fraction odds.
pub struct AnalysisChoir;

impl Experiment for AnalysisChoir {
    fn id(&self) -> &'static str {
        "analysis_choir"
    }

    fn title(&self) -> &'static str {
        "§2.2 analysis: Choir / concurrent-LoRa collision probabilities"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "collisions",
            &[
                ("n", ""),
                ("p_shift_collision", ""),
                ("p_distinct_fractions", ""),
            ],
        );
        for n in [2usize, 5, 10, 20, 50] {
            t.push_row(vec![
                n as f64,
                analysis::lora_collision_probability(n, 9),
                analysis::choir_distinct_fraction_probability(n),
            ]);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Choir / concurrent-LoRa analysis (SF = 9)\n  N   P(shift collision)  P(distinct tenth-bin fractions)\n");
        for row in &result.table("collisions").expect("table").rows {
            let _ = writeln!(out, "  {:3.0}  {:18.3}  {:30.4}", row[0], row[1], row[2]);
        }
        out
    }
}

/// §3.1 analysis: throughput gain and multi-user capacity scaling.
pub struct AnalysisCapacity;

impl Experiment for AnalysisCapacity {
    fn id(&self) -> &'static str {
        "analysis_capacity"
    }

    fn title(&self) -> &'static str {
        "§3.1 analysis: distributed-CSS throughput gain and capacity scaling"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "capacity",
            &[
                ("sf", ""),
                ("gain", ""),
                ("capacity_n64_bps", "bps"),
                ("capacity_n256_bps", "bps"),
            ],
        );
        for sf in 6u32..=12 {
            t.push_row(vec![
                sf as f64,
                analysis::distributed_throughput_gain(sf),
                analysis::multiuser_capacity_bps(500e3, 64, -30.0),
                analysis::multiuser_capacity_bps(500e3, 256, -30.0),
            ]);
        }
        result.tables.push(t);
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("Distributed CSS throughput gain 2^SF/SF and multi-user capacity\n  SF  gain      capacity@N=64[-30dB, kbps]  capacity@N=256\n");
        for row in &result.table("capacity").expect("table").rows {
            let _ = writeln!(
                out,
                "  {:2.0}  {:8.1}  {:26.1}  {:14.1}",
                row[0],
                row[1],
                row[2] / 1e3,
                row[3] / 1e3
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Streaming gateway

/// The network sizes the gateway experiment and the stream perf snapshot
/// report (clamped to the scenario's population).
const GATEWAY_SIZES: [usize; 3] = [16, 64, 256];

/// Aggregate outcome of one streaming-gateway session, scored against the
/// synthesizer's ground truth.
struct GatewayOutcome {
    /// Rounds the synthesizer put on the air.
    rounds_offered: usize,
    /// Offered rounds matched by a decoded packet with ≥ 1 device.
    rounds_decoded: usize,
    /// Emitted packets matching no offered round: energy-gate triggers
    /// that decoded to zero devices, plus spurious non-empty decodes at
    /// positions where nothing was transmitted.
    false_alarms: usize,
    /// Device-rounds delivered error-free over device-rounds transmitted.
    delivery_frac: f64,
    /// Bit errors over transmitted bits (unmatched rounds count their bits
    /// as errors).
    ber: f64,
    /// Measured pipeline throughput in Msamples/s, aggregated across all
    /// channels over the shared wall-clock window (synthesis excluded —
    /// streams are pre-rendered and replayed).
    msamples_per_sec: f64,
    /// Aggregate throughput over the combined radio rate
    /// (`channels × sample_rate`).
    real_time_factor: f64,
}

/// One channel's synthesized stream plus everything scoring needs.
struct ChannelStream {
    /// The pre-rendered sample stream (taken by the replay source).
    samples: Vec<netscatter_dsp::Complex64>,
    /// Ground-truth rounds the synthesizer put on the air.
    truth: crate::stream::StreamTruth,
    /// Samples per full round, for truth/packet pairing.
    round_samples: u64,
    /// The synthesizer's matched detection floor.
    detection_floor_fraction: f64,
    /// The population's assigned bins.
    assigned_bins: Vec<usize>,
    /// Channel sample rate in Hz.
    sample_rate_hz: f64,
}

/// Renders one channel's `stream_secs` Poisson-arrival stream up front, so
/// the pipeline measurement below replays pre-synthesized samples and the
/// reported throughput is the *gateway's*, not the synthesizer's.
fn synthesize_gateway_channel(
    dep: &crate::deployment::Deployment,
    n: usize,
    model: &crate::fullround::ChannelModel,
    scenario: &Scenario,
    stream_secs: f64,
    seed: u64,
) -> ChannelStream {
    use crate::stream::{ArrivalConfig, RoundArrivalSource};
    use netscatter_gateway::StreamSource;

    let mut source = RoundArrivalSource::new(
        dep,
        n,
        model,
        ArrivalConfig {
            rate_hz: scenario.arrival_rate,
            stream_secs,
            payload_bits: scenario.payload_bits,
        },
        seed,
    );
    let mut samples = Vec::with_capacity(source.total_samples() as usize);
    let mut buf = vec![netscatter_dsp::Complex64::ZERO; 1 << 16];
    loop {
        let got = source.fill(&mut buf);
        samples.extend_from_slice(&buf[..got]);
        if got < buf.len() {
            break;
        }
    }
    ChannelStream {
        samples,
        truth: source.truth(),
        round_samples: source.round_samples(),
        detection_floor_fraction: source.detection_floor_fraction(),
        assigned_bins: source.assigned_bins().to_vec(),
        sample_rate_hz: source.sample_rate_hz(),
    }
}

/// Raw per-channel scoring tallies, summable across channels.
#[derive(Default)]
struct ChannelScore {
    rounds_offered: usize,
    rounds_decoded: usize,
    false_alarms: usize,
    transmitted_devices: usize,
    delivered_devices: usize,
    transmitted_bits: usize,
    error_bits: usize,
}

/// Scores one channel's decoded packets against its synthesis truth: pair
/// each offered round with the decoded packet whose start lies within half
/// a round of the truth start (both sequences are monotonic in stream
/// order).
fn score_gateway_channel(
    packets: &[netscatter_gateway::DecodedPacket],
    channel: &ChannelStream,
) -> ChannelScore {
    let rounds = channel.truth.lock().expect("truth lock");
    let mut score = ChannelScore {
        rounds_offered: rounds.len(),
        ..ChannelScore::default()
    };
    let mut matched = vec![false; packets.len()];
    for round in rounds.iter() {
        let packet = packets.iter().enumerate().find(|(_, p)| {
            p.start_sample.abs_diff(round.start_sample) < channel.round_samples / 2
                && !p.round.devices.is_empty()
        });
        if let Some((i, _)) = packet {
            matched[i] = true;
            score.rounds_decoded += 1;
        }
        for (device, sent) in round.sent.iter().enumerate() {
            let Some(bits) = sent else { continue };
            score.transmitted_devices += 1;
            score.transmitted_bits += bits.len();
            let decoded = packet.and_then(|(_, p)| p.round.bits_for(channel.assigned_bins[device]));
            match decoded {
                Some(decoded) => {
                    let errors = decoded.iter().zip(bits).filter(|(a, b)| a != b).count()
                        + bits.len().saturating_sub(decoded.len());
                    score.error_bits += errors;
                    if errors == 0 && decoded.len() == bits.len() {
                        score.delivered_devices += 1;
                    }
                }
                // A missed round (or missed device) loses every bit.
                None => score.error_bits += bits.len(),
            }
        }
    }
    // A false alarm is any emitted packet that corresponds to no offered
    // round: an energy-gate trigger that decoded to zero devices, or a
    // spurious non-empty decode matching no truth start.
    score.false_alarms = packets
        .iter()
        .enumerate()
        .filter(|(i, p)| !matched[*i] || p.round.devices.is_empty())
        .count();
    score
}

/// Runs one streaming-gateway session over `scenario.channels` independent
/// channels: each channel synthesizes its own `stream_secs` stream of
/// Poisson round arrivals for the first `n` devices of `dep` (its own
/// arrival realization, same population plan), the sharded engine replays
/// all channels concurrently, and each channel's decode is scored against
/// its own truth. Synthesis happens before the clock starts, so
/// `msamples_per_sec` measures the pipeline alone — aggregated across
/// channels over the shared wall-clock window.
fn run_gateway_stream(
    dep: &crate::deployment::Deployment,
    n: usize,
    model: &crate::fullround::ChannelModel,
    scenario: &Scenario,
    stream_secs: f64,
    trial_seed: u64,
) -> GatewayOutcome {
    run_gateway_session(dep, n, model, scenario, stream_secs, trial_seed, false)
}

/// [`run_gateway_stream`] with an explicit pacing mode. `paced` wraps every
/// channel's replay in a [`netscatter_gateway::PacedSource`], so sources
/// deliver at radio rate (500 ksps each) instead of as fast as the pipeline
/// drains: the measured aggregate then answers "how many channels does the
/// gateway sustain in real time" rather than "how fast can it chew a
/// capture" — the two multi-channel numbers the perf snapshot tracks.
#[allow(clippy::too_many_arguments)]
fn run_gateway_session(
    dep: &crate::deployment::Deployment,
    n: usize,
    model: &crate::fullround::ChannelModel,
    scenario: &Scenario,
    stream_secs: f64,
    trial_seed: u64,
    paced: bool,
) -> GatewayOutcome {
    use netscatter_gateway::{
        run_multi_stream, GatewayConfig, PacedSource, ReplaySource, StreamSource,
    };

    let channels = scenario.channels.max(1);
    let streams: Vec<ChannelStream> = (0..channels as u64)
        .map(|c| {
            // Channel 0 keeps the single-channel trial seed; others derive
            // disjoint arrival realizations from it.
            let seed = trial_seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            synthesize_gateway_channel(dep, n, model, scenario, stream_secs, seed)
        })
        .collect();
    let config = GatewayConfig {
        chunk_samples: scenario.chunk_samples,
        workers: scenario.threads,
        detection_floor_fraction: Some(streams[0].detection_floor_fraction),
        ..GatewayConfig::new(
            dep.config.profile,
            streams[0].assigned_bins.clone(),
            scenario.payload_bits,
        )
    };
    // Saturated replay windows are only milliseconds long, so a single
    // session is at the mercy of one scheduler hiccup: decode the same
    // streams five times and keep the fastest report (every run's decode
    // is deterministic and identical — only the clock varies, and on a
    // shared runner interference is strictly additive, so the max is the
    // least-biased estimate of the uncontended pipeline capability).
    // Paced sessions burn stream_secs of wall time each and are pinned to
    // the radio rate anyway, so one session suffices.
    let repeats = if paced { 1 } else { 5 };
    let mut reports: Vec<_> = (0..repeats)
        .map(|_| {
            let mut sources: Vec<Box<dyn StreamSource>> = streams
                .iter()
                .map(|chan| {
                    let replay =
                        ReplaySource::from_samples(chan.samples.clone(), chan.sample_rate_hz);
                    if paced {
                        Box::new(PacedSource::new(replay)) as Box<dyn StreamSource>
                    } else {
                        Box::new(replay) as Box<dyn StreamSource>
                    }
                })
                .collect();
            run_multi_stream(&mut sources, &config).expect("gateway stream decodes")
        })
        .collect();
    reports
        .sort_by(|a, b| f64::total_cmp(&a.aggregate_samples_per_sec, &b.aggregate_samples_per_sec));
    let report = reports.swap_remove(reports.len() - 1);

    let mut total = ChannelScore::default();
    for (chan_report, chan) in report.channels.iter().zip(streams.iter()) {
        let score = score_gateway_channel(&chan_report.packets, chan);
        total.rounds_offered += score.rounds_offered;
        total.rounds_decoded += score.rounds_decoded;
        total.false_alarms += score.false_alarms;
        total.transmitted_devices += score.transmitted_devices;
        total.delivered_devices += score.delivered_devices;
        total.transmitted_bits += score.transmitted_bits;
        total.error_bits += score.error_bits;
    }
    GatewayOutcome {
        rounds_offered: total.rounds_offered,
        rounds_decoded: total.rounds_decoded,
        false_alarms: total.false_alarms,
        delivery_frac: if total.transmitted_devices == 0 {
            1.0
        } else {
            total.delivered_devices as f64 / total.transmitted_devices as f64
        },
        ber: if total.transmitted_bits == 0 {
            0.0
        } else {
            total.error_bits as f64 / total.transmitted_bits as f64
        },
        msamples_per_sec: report.aggregate_samples_per_sec / 1e6,
        real_time_factor: report.aggregate_real_time_factor,
    }
}

/// The channel stack the gateway synthesizer runs under a given fidelity:
/// sample level uses the scenario's channel profile; analytical idealizes
/// the radio (no impairments, no noise) so the stream exercises only the
/// detection/decode machinery.
fn gateway_channel_model(scenario: &Scenario) -> crate::fullround::ChannelModel {
    match scenario.fidelity {
        Fidelity::SampleLevel => scenario.channel_model(),
        Fidelity::Analytical => {
            let mut model = crate::fullround::ChannelModel::pristine();
            model.noise = false;
            model
        }
    }
}

/// Streaming gateway: continuous-stream detection, sync and decode with
/// measured real-time throughput.
pub struct Gateway;

impl Experiment for Gateway {
    fn id(&self) -> &'static str {
        "gateway"
    }

    fn title(&self) -> &'static str {
        "Streaming gateway: continuous-stream detect + decode, real-time factor"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[
            "devices",
            "placement",
            "channel",
            "fidelity",
            "scale",
            "seed",
            "threads",
            "payload_bits",
            "arrival_rate",
            "stream_secs",
            "chunk_samples",
            "channels",
        ]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        /// Stream-length cap under quick scale, keeping CI and the smoke
        /// tests fast.
        const QUICK_STREAM_SECS_CAP: f64 = 0.25;
        let dep = scenario.deployment();
        let model = gateway_channel_model(scenario);
        // Quick scale caps the stream length — loudly when it overrides a
        // longer request, and the result's recorded scenario carries the
        // value that actually ran so the metadata never contradicts the
        // measurements.
        let stream_secs = if scenario.scale == Scale::Quick {
            // Warn only when the cap overrides a value the user actually
            // changed from the default — a plain `--quick` run is the
            // expected fast path, not a surprise.
            if scenario.stream_secs > QUICK_STREAM_SECS_CAP
                && scenario.stream_secs != Scenario::default().stream_secs
            {
                eprintln!(
                    "note: gateway caps stream_secs at {QUICK_STREAM_SECS_CAP} under quick scale (requested {}); use --paper for the full stream",
                    scenario.stream_secs
                );
            }
            scenario.stream_secs.min(QUICK_STREAM_SECS_CAP)
        } else {
            scenario.stream_secs
        };
        let mut sizes: Vec<usize> = GATEWAY_SIZES
            .into_iter()
            .filter(|&n| n <= scenario.devices)
            .collect();
        if sizes.last() != Some(&scenario.devices) {
            sizes.push(scenario.devices);
        }
        let mc = scenario.monte_carlo();
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        result.scenario.stream_secs = stream_secs;
        let mut t = Table::new(
            "stream",
            &[
                ("devices", ""),
                ("rounds_offered", ""),
                ("rounds_decoded", ""),
                ("false_alarms", ""),
                ("delivery_frac", ""),
                ("ber", ""),
                ("msamples_per_sec", "Msps"),
                ("real_time_factor", ""),
            ],
        );
        let mut last: Option<GatewayOutcome> = None;
        for &n in &sizes {
            let outcome = run_gateway_stream(
                &dep,
                n,
                &model,
                scenario,
                stream_secs,
                mc.derive(n as u64).seed,
            );
            t.push_row(vec![
                n as f64,
                outcome.rounds_offered as f64,
                outcome.rounds_decoded as f64,
                outcome.false_alarms as f64,
                outcome.delivery_frac,
                outcome.ber,
                outcome.msamples_per_sec,
                outcome.real_time_factor,
            ]);
            last = Some(outcome);
        }
        result.tables.push(t);
        let last = last.expect("at least one network size");
        result.scalars.push(("stream_secs".into(), stream_secs));
        result
            .scalars
            .push(("msamples_per_sec".into(), last.msamples_per_sec));
        result
            .scalars
            .push(("real_time_factor".into(), last.real_time_factor));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = format!(
            "Streaming gateway ({} synthesis, {:.2} s stream, {} rounds/s arrivals, {} channel{})\n  N     offered  decoded  false  delivered  BER      Msamples/s  real-time\n",
            fidelity_tag(result.scenario.fidelity),
            result.scalar("stream_secs").unwrap_or(f64::NAN),
            result.scenario.arrival_rate,
            result.scenario.channels,
            if result.scenario.channels == 1 { "" } else { "s" },
        );
        let t = result.table("stream").expect("stream table");
        for row in &t.rows {
            let _ = writeln!(
                out,
                "  {:4.0}  {:7.0}  {:7.0}  {:5.0}  {:9.3}  {:7.5}  {:10.2}  {:8.2}x",
                row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7]
            );
        }
        let last_n = t.rows.last().map(|r| r[0]).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "throughput at {:.0} devices: {:.2} Msamples/s = {:.2}x real time",
            last_n,
            result.scalar("msamples_per_sec").expect("scalar"),
            result.scalar("real_time_factor").expect("scalar")
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Pipeline latency

/// The stage names the `latency` experiment reports, indexing the
/// `stage` column of its table: end-to-end ingest→emit first, then the
/// per-stage breakdown in pipeline order.
pub const LATENCY_STAGES: [&str; 5] = [
    "ingest_to_emit",
    "ring_block_wait",
    "gate_to_anchor",
    "queue_wait",
    "decode",
];

/// One size point of the latency experiment: the in-process ingest→emit
/// distribution measured at the drain side, plus the engine's own
/// per-stage telemetry snapshot.
struct LatencyOutcome {
    e2e: netscatter_obs::HistogramSnapshot,
    stages: netscatter_gateway::PipelineTelemetry,
}

/// Replays one pre-synthesized channel through a [`StreamEngine`] at
/// radio rate (chunks fed on the stream clock, like an SDR front-end
/// would) and measures ingest→emit latency per emitted packet via
/// [`StreamEngine::drain_timed`], draining on a fine poll so the
/// measurement reflects the pipeline, not the drain cadence.
fn run_latency_session(
    chan: &ChannelStream,
    scenario: &Scenario,
    dep_profile: netscatter_phy::params::PhyProfile,
) -> LatencyOutcome {
    use netscatter_gateway::{GatewayConfig, StreamEngine};
    use std::time::{Duration, Instant};

    let config = GatewayConfig {
        chunk_samples: scenario.chunk_samples,
        workers: scenario.threads,
        detection_floor_fraction: Some(chan.detection_floor_fraction),
        ..GatewayConfig::new(
            dep_profile,
            chan.assigned_bins.clone(),
            scenario.payload_bits,
        )
    };
    let mut engine =
        StreamEngine::spawn(&config, chan.sample_rate_hz).expect("latency engine spawns");
    let e2e = netscatter_obs::Histogram::new();
    let chunk = scenario.chunk_samples.max(1);
    let chunk_period = Duration::from_secs_f64(chunk as f64 / chan.sample_rate_hz);
    let start = Instant::now();
    for (i, samples) in chan.samples.chunks(chunk).enumerate() {
        // Pace each chunk onto the stream clock, draining while waiting so
        // emit timestamps are captured promptly.
        let due = start + chunk_period * i as u32;
        loop {
            for t in engine.drain_timed() {
                e2e.record_duration(t.ingested_at.elapsed());
            }
            let Some(wait) = due.checked_duration_since(Instant::now()) else {
                break;
            };
            std::thread::sleep(wait.min(Duration::from_micros(500)));
        }
        engine
            .feed(samples)
            .expect("latency engine accepts samples");
    }
    // Let in-flight spans finish decoding: a 256-device decode runs tens
    // of milliseconds, so keep draining until a full quiet window passes
    // with nothing emitted (bounded, so a stuck engine cannot hang the
    // bench).
    let quiet_window = Duration::from_millis(200);
    let flush_deadline = Instant::now() + Duration::from_secs(2);
    let mut last_emit = Instant::now();
    while last_emit.elapsed() < quiet_window && Instant::now() < flush_deadline {
        std::thread::sleep(Duration::from_millis(5));
        let drained = engine.drain_timed();
        if !drained.is_empty() {
            last_emit = Instant::now();
            for t in drained {
                e2e.record_duration(t.ingested_at.elapsed());
            }
        }
    }
    let report = engine.shutdown().expect("latency engine shuts down");
    LatencyOutcome {
        e2e: e2e.snapshot(),
        stages: report.telemetry,
    }
}

/// Pipeline latency: per-stage p50/p95/p99 through the streaming gateway
/// under real-time paced replay, plus the in-process ingest→emit
/// end-to-end distribution.
pub struct Latency;

impl Experiment for Latency {
    fn id(&self) -> &'static str {
        "latency"
    }

    fn title(&self) -> &'static str {
        "Pipeline latency: per-stage and ingest→emit p50/p95/p99 under paced replay"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[
            "devices",
            "placement",
            "channel",
            "fidelity",
            "scale",
            "seed",
            "threads",
            "payload_bits",
            "arrival_rate",
            "stream_secs",
            "chunk_samples",
        ]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        /// Stream-length cap under quick scale (each size point burns its
        /// stream length in wall time — the replay is radio-rate paced).
        const QUICK_STREAM_SECS_CAP: f64 = 0.25;
        let dep = scenario.deployment();
        let model = gateway_channel_model(scenario);
        let stream_secs = if scenario.scale == Scale::Quick {
            scenario.stream_secs.min(QUICK_STREAM_SECS_CAP)
        } else {
            scenario.stream_secs
        };
        let mut sizes: Vec<usize> = GATEWAY_SIZES
            .into_iter()
            .filter(|&n| n <= scenario.devices)
            .collect();
        if sizes.last() != Some(&scenario.devices) {
            sizes.push(scenario.devices);
        }
        let mc = scenario.monte_carlo();
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        result.scenario.stream_secs = stream_secs;
        let mut t = Table::new(
            "latency",
            &[
                ("devices", ""),
                ("stage", ""),
                ("count", ""),
                ("p50_ms", "ms"),
                ("p95_ms", "ms"),
                ("p99_ms", "ms"),
            ],
        );
        let mut detect = Table::new(
            "detect_samples",
            &[
                ("devices", ""),
                ("count", ""),
                ("p50_samples", ""),
                ("p95_samples", ""),
                ("p99_samples", ""),
            ],
        );
        let mut last: Option<LatencyOutcome> = None;
        for &n in &sizes {
            let chan = synthesize_gateway_channel(
                &dep,
                n,
                &model,
                scenario,
                stream_secs,
                mc.derive(n as u64).seed ^ 0x1A7E,
            );
            let outcome = run_latency_session(&chan, scenario, dep.config.profile);
            let ns_stages = [
                &outcome.e2e,
                &outcome.stages.ring_block_wait_ns,
                &outcome.stages.detect_gate_to_anchor_ns,
                &outcome.stages.queue_wait_ns,
                &outcome.stages.decode_ns,
            ];
            for (stage, h) in ns_stages.into_iter().enumerate() {
                t.push_row(vec![
                    n as f64,
                    stage as f64,
                    h.count() as f64,
                    h.quantile(0.5) / 1e6,
                    h.quantile(0.95) / 1e6,
                    h.quantile(0.99) / 1e6,
                ]);
            }
            let ds = &outcome.stages.detect_gate_to_anchor_samples;
            detect.push_row(vec![
                n as f64,
                ds.count() as f64,
                ds.quantile(0.5),
                ds.quantile(0.95),
                ds.quantile(0.99),
            ]);
            last = Some(outcome);
        }
        result.tables.push(t);
        result.tables.push(detect);
        let last = last.expect("at least one network size");
        result.scalars.push(("stream_secs".into(), stream_secs));
        result
            .scalars
            .push(("p50_ingest_to_emit_ms".into(), last.e2e.quantile(0.5) / 1e6));
        result.scalars.push((
            "p99_ingest_to_emit_ms".into(),
            last.e2e.quantile(0.99) / 1e6,
        ));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = format!(
            "Pipeline latency ({} synthesis, {:.2} s paced stream, {} rounds/s arrivals)\n  N     stage            count   p50[ms]   p95[ms]   p99[ms]\n",
            fidelity_tag(result.scenario.fidelity),
            result.scalar("stream_secs").unwrap_or(f64::NAN),
            result.scenario.arrival_rate,
        );
        let t = result.table("latency").expect("latency table");
        for row in &t.rows {
            let stage = LATENCY_STAGES.get(row[1] as usize).copied().unwrap_or("?");
            let _ = writeln!(
                out,
                "  {:4.0}  {:15}  {:5.0}  {:8.3}  {:8.3}  {:8.3}",
                row[0], stage, row[2], row[3], row[4], row[5]
            );
        }
        let d = result.table("detect_samples").expect("detect table");
        for row in &d.rows {
            let _ = writeln!(
                out,
                "  detect lock at {:.0} devices: p50 {:.0} / p95 {:.0} / p99 {:.0} samples ({:.0} spans)",
                row[0], row[2], row[3], row[4], row[1]
            );
        }
        let last_n = t.rows.last().map(|r| r[0]).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "ingest->emit at {:.0} devices: p50 {:.3} ms, p99 {:.3} ms",
            last_n,
            result.scalar("p50_ingest_to_emit_ms").expect("scalar"),
            result.scalar("p99_ingest_to_emit_ms").expect("scalar")
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Goodput (coded link layer)

/// On-air bits per device per round for the all-schemes goodput sweep: the
/// smallest budget every framed geometry accepts simultaneously (Hamming
/// needs a multiple of 7, Reed-Solomon a multiple of 8, convolutional an
/// even count) while leaving each scheme a usable data field.
pub const GOODPUT_PAYLOAD_BITS: usize = 168;

/// Salt for the application-data RNG stream of the goodput experiment,
/// keeping frame payload draws independent of the channel and device
/// streams.
const GOODPUT_DATA_SALT: u64 = 0x600D_B175_C0DE_D00D;

/// Per-(scheme, size) frame tallies, summable across shards.
#[derive(Debug, Default, Clone, Copy)]
struct GoodputTally {
    /// Device-rounds that put a frame (or raw payload) on the air.
    frames_sent: usize,
    /// Sent frames whose device the receiver detected.
    frames_detected: usize,
    /// Detected frames delivered intact (verified CRC + exact data for
    /// coded schemes; zero bit errors for the raw baseline).
    frames_ok: usize,
    /// Channel errors the inner codecs corrected (codec-specific unit).
    corrected: usize,
    /// On-air bits of detected frames.
    detected_bits: usize,
    /// Raw bit errors within detected frames — the residual BER the FEC
    /// layer is up against.
    detected_bit_errors: usize,
    /// Detected frames whose realized raw BER sits at the paper's residual
    /// ~1e-2 operating point (at least one bit error, at most 2% — see
    /// [`at_residual_operating_point`]).
    lowber_frames: usize,
    /// Frames from the ~1e-2 bucket delivered intact.
    lowber_ok: usize,
}

/// Whether a detected frame's realized error count puts it at the residual
/// ~1e-2-BER operating point EXPERIMENTS.md documents for 256 concurrent
/// devices: errored (so coding has work to do) but with raw BER ≤ 2e-2.
/// The office fade tail also produces device-rounds far beyond any code's
/// reach (up to ~50% BER); bucketing isolates the regime the link layer is
/// actually designed for.
fn at_residual_operating_point(bit_errors: usize, frame_bits: usize) -> bool {
    bit_errors >= 1 && bit_errors * 50 <= frame_bits
}

impl GoodputTally {
    fn add(&mut self, other: &GoodputTally) {
        self.frames_sent += other.frames_sent;
        self.frames_detected += other.frames_detected;
        self.frames_ok += other.frames_ok;
        self.corrected += other.corrected;
        self.detected_bits += other.detected_bits;
        self.detected_bit_errors += other.detected_bit_errors;
        self.lowber_frames += other.lowber_frames;
        self.lowber_ok += other.lowber_ok;
    }

    fn frame_delivery(&self) -> f64 {
        ratio(self.frames_ok, self.frames_sent)
    }

    fn frame_delivery_detected(&self) -> f64 {
        ratio(self.frames_ok, self.frames_detected)
    }

    fn detected_frac(&self) -> f64 {
        ratio(self.frames_detected, self.frames_sent)
    }

    fn raw_ber_detected(&self) -> f64 {
        if self.detected_bits == 0 {
            0.0
        } else {
            self.detected_bit_errors as f64 / self.detected_bits as f64
        }
    }

    fn delivery_at_residual_ber(&self) -> f64 {
        ratio(self.lowber_ok, self.lowber_frames)
    }
}

/// `num / den`, defined as 1.0 for an empty denominator (nothing offered,
/// nothing lost).
fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Sample-level goodput measurement for one scheme at one network size:
/// every transmitting device carries one FEC frame (or raw bits for
/// [`CodingScheme::None`]) per round through the full synthesis + decode
/// chain, and the frame decode + CRC-16 run over what the receiver
/// recovered.
#[allow(clippy::too_many_arguments)]
fn goodput_sample_tally(
    dep: &Deployment,
    n: usize,
    model: &crate::fullround::ChannelModel,
    scheme: CodingScheme,
    payload_bits: usize,
    mc: &MonteCarlo,
    trials: usize,
    rounds: usize,
) -> GoodputTally {
    use crate::fullround::{trial_seed, FullRoundNetwork};
    let shards = mc.run_shards(trials, |rng, range| {
        let mut tally = GoodputTally::default();
        let codec = (scheme != CodingScheme::None)
            .then(|| FrameCodec::new(scheme, payload_bits).expect("scenario geometry validated"));
        let data_bits = codec.as_ref().map_or(payload_bits, |c| c.data_bits());
        for _ in range {
            let seed = trial_seed(rng);
            let mut net = FullRoundNetwork::for_trial(dep, n, model, seed);
            let mut data_rng = StdRng::seed_from_u64(seed ^ GOODPUT_DATA_SALT);
            for round in 0..rounds {
                let data: Vec<Vec<bool>> = (0..net.num_devices())
                    .map(|_| (0..data_bits).map(|_| data_rng.gen_bool(0.5)).collect())
                    .collect();
                let detail = match &codec {
                    Some(codec) => {
                        let mut provider =
                            |device: usize| codec.encode_frame(round as u8, &data[device]);
                        net.simulate_round_with(payload_bits, Some(&mut provider))
                    }
                    None => net.simulate_round_with(payload_bits, None),
                };
                for (i, sent) in detail.sent.iter().enumerate() {
                    let Some(sent) = sent else {
                        continue;
                    };
                    tally.frames_sent += 1;
                    let Some(received) = &detail.received[i] else {
                        continue;
                    };
                    tally.frames_detected += 1;
                    tally.detected_bits += sent.len();
                    let bit_errors = sent.iter().zip(received).filter(|(a, b)| a != b).count();
                    tally.detected_bit_errors += bit_errors;
                    let ok = match &codec {
                        Some(codec) => {
                            let out = codec.decode_frame(received);
                            tally.corrected += out.corrected;
                            // Delivery demands a verified CRC *and* the
                            // exact application data — a CRC fluke that
                            // passed corrupt data must not score.
                            out.crc_ok && out.seq == round as u8 && out.data == data[i]
                        }
                        None => detail.truth.delivered[i],
                    };
                    if ok {
                        tally.frames_ok += 1;
                    }
                    if at_residual_operating_point(bit_errors, sent.len()) {
                        tally.lowber_frames += 1;
                        if ok {
                            tally.lowber_ok += 1;
                        }
                    }
                }
            }
        }
        tally
    });
    let mut total = GoodputTally::default();
    for shard in &shards {
        total.add(shard);
    }
    total
}

/// Analytical goodput rows: the delivery model gates whole devices on RSSI
/// (a delivered payload is error-free, a gated one is wholly lost), so
/// every scheme shares the size's delivery fraction and coding shows pure
/// rate overhead — the control row the sample-level measurement is read
/// against.
fn goodput_analytical_tally(delivery_frac: f64, n: usize, payload_bits: usize) -> GoodputTally {
    let delivered = (delivery_frac * n as f64).round() as usize;
    GoodputTally {
        frames_sent: n,
        frames_detected: delivered,
        frames_ok: delivered,
        corrected: 0,
        detected_bits: delivered * payload_bits,
        detected_bit_errors: 0,
        // The RSSI gate never produces partially-errored frames, so the
        // ~1e-2 bucket is empty (and its delivery ratio degenerates to 1).
        lowber_frames: 0,
        lowber_ok: 0,
    }
}

/// Goodput vs code rate vs device count for the coded link layer.
pub struct Goodput;

impl Experiment for Goodput {
    fn id(&self) -> &'static str {
        "goodput"
    }

    fn title(&self) -> &'static str {
        "Coded link layer: goodput vs code rate vs device count"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &[
            "devices",
            "placement",
            "channel",
            "fidelity",
            "scale",
            "seed",
            "threads",
            "payload_bits",
            "coding",
        ]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        // `coding none` (the default) sweeps every scheme at the shared
        // budget; a specific scheme runs against the raw baseline at the
        // scenario's own (validated) payload geometry.
        let (schemes, payload_bits): (Vec<CodingScheme>, usize) =
            if scenario.coding == CodingScheme::None {
                (CodingScheme::ALL.to_vec(), GOODPUT_PAYLOAD_BITS)
            } else {
                (
                    vec![CodingScheme::None, scenario.coding],
                    scenario.payload_bits,
                )
            };
        let dep = scenario.deployment();
        let model = scenario.channel_model();
        let mc = scenario.monte_carlo();
        let trials = scenario.scale.pick(2, 8);
        let rounds = scenario.scale.pick(2, 6);
        let mut sizes: Vec<usize> = GATEWAY_SIZES
            .into_iter()
            .filter(|&n| n <= scenario.devices)
            .collect();
        if sizes.last() != Some(&scenario.devices) {
            sizes.push(scenario.devices);
        }
        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        let mut t = Table::new(
            "goodput",
            &[
                ("devices", ""),
                ("scheme", ""),
                ("code_rate", ""),
                ("data_bits", "bits"),
                ("frames_sent", ""),
                ("frames_ok", ""),
                ("frame_delivery", ""),
                ("frame_delivery_detected", ""),
                ("detected_frac", ""),
                ("raw_ber_detected", ""),
                ("corrected", ""),
                ("goodput_frac", ""),
                ("delivery_at_ber_1e2", ""),
            ],
        );
        let mut max_size_rows: Vec<(CodingScheme, GoodputTally, usize)> = Vec::new();
        for &n in &sizes {
            // The analytical gate is scheme-independent; compute the size's
            // delivery fraction once and share it across the scheme rows.
            let analytical_delivery = if scenario.fidelity == Fidelity::Analytical {
                let m = netscatter_metrics_with(
                    &dep,
                    n,
                    payload_bits,
                    NetScatterVariant::Config1,
                    Fidelity::Analytical,
                    &model,
                    &mc.derive(n as u64),
                );
                Some(ratio(m.delivered, m.num_devices))
            } else {
                None
            };
            for &scheme in &schemes {
                let data_bits = match scheme {
                    CodingScheme::None => payload_bits,
                    _ => FrameCodec::new(scheme, payload_bits)
                        .expect("scenario geometry validated")
                        .data_bits(),
                };
                let tally = match analytical_delivery {
                    Some(delivery) => goodput_analytical_tally(delivery, n, payload_bits),
                    None => goodput_sample_tally(
                        &dep,
                        n,
                        &model,
                        scheme,
                        payload_bits,
                        &mc.derive(n as u64),
                        trials,
                        rounds,
                    ),
                };
                let scheme_index = CodingScheme::ALL
                    .iter()
                    .position(|&s| s == scheme)
                    .expect("scheme registered") as f64;
                let goodput_frac = if tally.frames_sent == 0 {
                    0.0
                } else {
                    (tally.frames_ok * data_bits) as f64 / (tally.frames_sent * payload_bits) as f64
                };
                t.push_row(vec![
                    n as f64,
                    scheme_index,
                    data_bits as f64 / payload_bits as f64,
                    data_bits as f64,
                    tally.frames_sent as f64,
                    tally.frames_ok as f64,
                    tally.frame_delivery(),
                    tally.frame_delivery_detected(),
                    tally.detected_frac(),
                    tally.raw_ber_detected(),
                    tally.corrected as f64,
                    goodput_frac,
                    tally.delivery_at_residual_ber(),
                ]);
                if n == *sizes.last().unwrap() {
                    max_size_rows.push((scheme, tally, data_bits));
                }
            }
        }
        result.tables.push(t);
        result
            .scalars
            .push(("payload_bits".into(), payload_bits as f64));
        let raw = max_size_rows
            .iter()
            .find(|(s, _, _)| *s == CodingScheme::None);
        if let Some((_, tally, _)) = raw {
            result
                .scalars
                .push(("uncoded_frame_delivery".into(), tally.frame_delivery()));
            result
                .scalars
                .push(("raw_ber_detected".into(), tally.raw_ber_detected()));
        }
        let best_coded = max_size_rows
            .iter()
            .filter(|(s, _, _)| *s != CodingScheme::None)
            .max_by(|a, b| {
                a.1.frame_delivery_detected()
                    .total_cmp(&b.1.frame_delivery_detected())
            });
        if let Some((scheme, tally, data_bits)) = best_coded {
            result.scalars.push((
                "best_coded_scheme".into(),
                CodingScheme::ALL
                    .iter()
                    .position(|s| s == scheme)
                    .expect("registered") as f64,
            ));
            result
                .scalars
                .push(("best_coded_frame_delivery".into(), tally.frame_delivery()));
            result.scalars.push((
                "best_coded_frame_delivery_detected".into(),
                tally.frame_delivery_detected(),
            ));
            result.scalars.push((
                "best_coded_goodput_frac".into(),
                if tally.frames_sent == 0 {
                    0.0
                } else {
                    (tally.frames_ok * data_bits) as f64 / (tally.frames_sent * payload_bits) as f64
                },
            ));
            result.scalars.push((
                "best_coded_delivery_at_ber_1e2".into(),
                tally.delivery_at_residual_ber(),
            ));
        }
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let payload = result.scalar("payload_bits").unwrap_or(f64::NAN);
        let mut out = format!(
            "Coded link-layer goodput ({} fidelity, {payload:.0} on-air bits/device/round)\n  N     scheme    rate   data  frames   ok      delivery  det-deliv  rawBER(det)  goodput  del@1e-2\n",
            fidelity_tag(result.scenario.fidelity),
        );
        let t = result.table("goodput").expect("goodput table");
        for row in &t.rows {
            let scheme = CodingScheme::ALL
                .get(row[1] as usize)
                .map(|s| s.name())
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "  {:4.0}  {:8}  {:5.3}  {:4.0}  {:6.0}  {:6.0}  {:8.3}  {:9.3}  {:11.2e}  {:7.3}  {:8.3}",
                row[0],
                scheme,
                row[2],
                row[3],
                row[4],
                row[5],
                row[6],
                row[7],
                row[9],
                row[11],
                row[12]
            );
        }
        if let (Some(delivery), Some(ber)) = (
            result.scalar("best_coded_frame_delivery_detected"),
            result.scalar("raw_ber_detected"),
        ) {
            let best = result
                .scalar("best_coded_scheme")
                .and_then(|i| CodingScheme::ALL.get(i as usize).copied())
                .map(|s| s.name())
                .unwrap_or("?");
            let at_1e2 = result
                .scalar("best_coded_delivery_at_ber_1e2")
                .unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "best coded scheme at max size: {best} delivers {:.1}% of detected frames \
                 (raw BER {:.2e}); {:.1}% at the ~1e-2-BER operating point",
                delivery * 100.0,
                ber,
                at_1e2 * 100.0
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Perf snapshot

/// Payload symbols per round timed by the perf snapshot.
pub const PERF_PAYLOAD_SYMBOLS: usize = 16;

/// Msamples/s the pre-correlator gateway recorded in `BENCH_stream.json`
/// at [`GATEWAY_SIZES`] = {16, 64, 256} devices — the CI snapshot taken
/// before the FFT overlap-save sync correlator landed and before the
/// measurement isolated replay from synthesis. The `speedup_vs_pre_refactor`
/// scalar divides today's 64-device single-channel replay session (the
/// `multi_channel` table's k = 1 row — same population, same 10 rounds/s
/// expected occupancy) by the middle entry.
pub const PRE_REFACTOR_STREAM_MSPS: [f64; 3] = [6.86, 6.77, 5.41];

/// Channel counts the multi-channel perf section sweeps.
const PERF_CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];

/// Device population for the multi-channel perf section (the middle
/// [`GATEWAY_SIZES`] point, so the single-channel row is directly
/// comparable to the stream table).
const PERF_CHANNEL_DEVICES: usize = 64;

/// Median wall-time of `samples` timed invocations of `f`, in seconds.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    // One warm-up to populate scratch buffers and caches.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// CI perf snapshot: times the steady-state decode path, the quick-mode
/// experiment sweeps, and the sample-level network simulator. Timing values
/// vary run to run, so this is the one registered experiment without a
/// golden parity pin.
pub struct Perf;

impl Experiment for Perf {
    fn id(&self) -> &'static str {
        "perf"
    }

    fn title(&self) -> &'static str {
        "Perf snapshot: decode and sample-level round throughput"
    }

    fn scenario_fields(&self) -> &'static [&'static str] {
        &["seed"]
    }

    fn run(&self, scenario: &Scenario) -> ExperimentResult {
        use crate::deployment::{Deployment, DeploymentConfig};
        use crate::fullround::{ChannelModel, FullRoundNetwork};
        use crate::workloads::build_concurrent_round;
        use netscatter::receiver::ConcurrentReceiver;
        use netscatter_phy::distributed::{ConcurrentDemodulator, DemodWorkspace, OnOffModulator};
        use netscatter_phy::params::PhyProfile;
        use std::time::Instant;

        let profile = PhyProfile::default();
        let params = profile.modulation.chirp();

        // 1. ns per padded spectrum (dechirp + pruned zero-padded FFT +
        //    power), the dominant per-symbol cost of the receiver.
        let demod = ConcurrentDemodulator::new(params, profile.zero_padding)
            .expect("profile zero-padding is a power of two");
        let mut ws = DemodWorkspace::new();
        let symbol = OnOffModulator::new(params, 123).symbol(true, 0.0, 0.0, 1.0);
        let batch = 256usize;
        let per_batch = median_secs(9, || {
            for _ in 0..batch {
                demod
                    .padded_spectrum_into(&symbol, &mut ws)
                    .expect("correct symbol length");
            }
        });
        let padded_spectrum_ns = per_batch / batch as f64 * 1e9;

        // 2. Full-round decode throughput (symbols/sec) vs device count.
        let mut decode = Table::new(
            "decode",
            &[
                ("devices", ""),
                ("round_ms", "ms"),
                ("symbols_per_sec", "1/s"),
            ],
        );
        for n_devices in [16usize, 64, 256] {
            let rx = ConcurrentReceiver::new(&profile).expect("valid profile");
            let (stream, bins) = build_concurrent_round(&profile, n_devices, PERF_PAYLOAD_SYMBOLS);
            let round_s = median_secs(5, || {
                let round = rx
                    .decode_round(&stream, 0, &bins, PERF_PAYLOAD_SYMBOLS)
                    .expect("round decodes");
                assert_eq!(round.devices.len(), n_devices, "all devices detected");
            });
            decode.push_row(vec![
                n_devices as f64,
                round_s * 1e3,
                PERF_PAYLOAD_SYMBOLS as f64 / round_s,
            ]);
        }

        // 3. Sample-level network round throughput: channel realization +
        //    superposed synthesis + AWGN + full concurrent decode, per
        //    round, under the office channel model.
        let dep = Deployment::generate(
            DeploymentConfig::office(256),
            &mut StdRng::seed_from_u64(scenario.seed),
        );
        let model = ChannelModel::office();
        let mut network = Table::new(
            "network",
            &[
                ("devices", ""),
                ("round_ms", "ms"),
                ("device_symbols_per_sec", "1/s"),
            ],
        );
        for n_devices in [16usize, 64, 256] {
            let mut net = FullRoundNetwork::for_trial(&dep, n_devices, &model, 7);
            let round_s = median_secs(5, || {
                let truth = net.simulate_round(PERF_PAYLOAD_SYMBOLS);
                assert_eq!(truth.outcome.scheduled, n_devices);
            });
            network.push_row(vec![
                n_devices as f64,
                round_s * 1e3,
                n_devices as f64 * (8 + PERF_PAYLOAD_SYMBOLS) as f64 / round_s,
            ]);
        }

        // 4. Streaming-gateway throughput: the full producer → ring →
        //    detector → worker pipeline over a sample-level office stream,
        //    at {16, 64, 256} devices. Msamples/s and the real-time factor
        //    land in BENCH_stream.json. 0.5 s streams keep the measured
        //    window well clear of timer noise, and 8192-sample chunks (an
        //    SDR DMA-buffer-sized feed, vs the 2048 the smoke tests use)
        //    are the throughput operating point: on one core every chunk
        //    handoff is a context switch, so quartering the per-sample
        //    handoff count is worth ~30% of pipeline throughput.
        let stream_scenario = Scenario::builder()
            .seed(scenario.seed)
            .arrival_rate(10.0)
            .stream_secs(0.5)
            .chunk_samples(8192)
            .build();
        let stream_model = ChannelModel::office();
        let mut stream = Table::new(
            "stream",
            &[
                ("devices", ""),
                ("msamples_per_sec", "Msps"),
                ("real_time_factor", ""),
            ],
        );
        for n_devices in GATEWAY_SIZES {
            let outcome = run_gateway_stream(
                &dep,
                n_devices,
                &stream_model,
                &stream_scenario,
                stream_scenario.stream_secs,
                scenario.seed ^ n_devices as u64,
            );
            stream.push_row(vec![
                n_devices as f64,
                outcome.msamples_per_sec,
                outcome.real_time_factor,
            ]);
        }

        // 4b. Multi-channel sharding at {1, 2, 4} × 500 kHz channels, two
        //     pacing modes per point. Saturated replay (sources feed as
        //     fast as the pipeline drains) measures the CPU-bound decode
        //     ceiling — on a single-core runner the aggregate stays flat as
        //     channels contend for the same core, and the table records
        //     that honestly. Real-time-paced replay (each source throttled
        //     to 500 ksps like a radio front-end) measures sustained
        //     ingest: the aggregate grows with K for as long as the shards
        //     keep every channel's real-time factor at 1, which is the
        //     NetScatter deployment question — how many channels does one
        //     AP serve at radio rate?
        let mut multi = Table::new(
            "multi_channel",
            &[
                ("channels", ""),
                ("msamples_per_sec", "Msps"),
                ("real_time_factor", ""),
                ("paced_msamples_per_sec", "Msps"),
                ("paced_real_time_factor", ""),
            ],
        );
        let mut saturated_by_k = Vec::new();
        let mut paced_by_k = Vec::new();
        for channels in PERF_CHANNEL_COUNTS {
            let multi_scenario = Scenario::builder()
                .seed(scenario.seed)
                .arrival_rate(10.0)
                .stream_secs(0.5)
                .chunk_samples(8192)
                .channels(channels)
                .build();
            let trial_seed = scenario.seed ^ (channels as u64).rotate_left(17);
            let saturated = run_gateway_session(
                &dep,
                PERF_CHANNEL_DEVICES,
                &stream_model,
                &multi_scenario,
                multi_scenario.stream_secs,
                trial_seed,
                false,
            );
            let paced = run_gateway_session(
                &dep,
                PERF_CHANNEL_DEVICES,
                &stream_model,
                &multi_scenario,
                multi_scenario.stream_secs,
                trial_seed,
                true,
            );
            multi.push_row(vec![
                channels as f64,
                saturated.msamples_per_sec,
                saturated.real_time_factor,
                paced.msamples_per_sec,
                paced.real_time_factor,
            ]);
            saturated_by_k.push(saturated.msamples_per_sec);
            paced_by_k.push(paced.msamples_per_sec);
        }

        // 5. Link-layer codec throughput for BENCH_coding.json: frame
        //    encode and decode over clean frames at each scheme's minimum
        //    geometry, amortized over a 256-frame batch, reported in
        //    Msymbols/s of on-air payload symbols (one bit per on-off-keyed
        //    symbol). The `scheme` column indexes [`CodingScheme::ALL`].
        let mut coding = Table::new(
            "coding",
            &[
                ("scheme", ""),
                ("payload_bits", ""),
                ("code_rate", ""),
                ("encode_msymbols_per_sec", "Msym/s"),
                ("decode_msymbols_per_sec", "Msym/s"),
            ],
        );
        let mut codec_rng = StdRng::seed_from_u64(scenario.seed ^ 0xFEC);
        for (index, scheme) in CodingScheme::ALL.iter().enumerate() {
            let scheme = *scheme;
            if scheme == CodingScheme::None {
                continue;
            }
            let payload_bits = netscatter_coding::frame::min_payload_bits(scheme);
            let codec = FrameCodec::new(scheme, payload_bits).expect("minimum geometry is valid");
            let batch = 256usize;
            let frames: Vec<(u8, Vec<bool>)> = (0..batch)
                .map(|i| {
                    let data: Vec<bool> = (0..codec.data_bits())
                        .map(|_| codec_rng.gen_bool(0.5))
                        .collect();
                    (i as u8, data)
                })
                .collect();
            let encode_s = median_secs(9, || {
                for (seq, data) in &frames {
                    std::hint::black_box(codec.encode_frame(*seq, data));
                }
            });
            let encoded: Vec<Vec<bool>> = frames
                .iter()
                .map(|(seq, data)| codec.encode_frame(*seq, data))
                .collect();
            let decode_s = median_secs(9, || {
                for air in &encoded {
                    let out = codec.decode_frame(air);
                    assert!(out.crc_ok, "clean frame decodes");
                    std::hint::black_box(out);
                }
            });
            let symbols = (batch * payload_bits) as f64;
            coding.push_row(vec![
                index as f64,
                payload_bits as f64,
                codec.rate(),
                symbols / encode_s / 1e6,
                symbols / decode_s / 1e6,
            ]);
        }

        // 6. Quick-mode sweep wall-times: the Fig. 15b Monte-Carlo sweep and
        //    the Fig. 17 network sweep, both through the sharded/parallel
        //    layer.
        let t = Instant::now();
        let fig15_report = fig15(Scale::Quick, scenario.seed);
        let fig15_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let fig17_report = fig17(Scale::Quick, scenario.seed);
        let fig17_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(fig15_report.contains("Fig. 15b") && fig17_report.contains("Fig. 17"));

        // Speedup of today's 64-device single-channel replay session over
        // the pre-refactor 64-device BENCH row. The per-row stream table
        // above tracks the trajectory but its rows carry different Poisson
        // occupancy realizations, so the scalar pins the one directly
        // comparable point instead of a noisy row-wise minimum.
        let speedup_vs_pre_refactor = saturated_by_k[0] / PRE_REFACTOR_STREAM_MSPS[1];

        let mut result = ExperimentResult::new(self.id(), self.title(), scenario);
        result.tables.push(decode);
        result.tables.push(network);
        result.tables.push(stream);
        result.tables.push(multi);
        result.tables.push(coding);
        result.scalars.push((
            "payload_symbols_per_round".into(),
            PERF_PAYLOAD_SYMBOLS as f64,
        ));
        result
            .scalars
            .push(("single_channel_msamples_per_sec".into(), saturated_by_k[0]));
        result
            .scalars
            .push(("speedup_vs_pre_refactor".into(), speedup_vs_pre_refactor));
        // Aggregate sustained-ingest scaling from 1 → 2 channels (paced
        // sources), and the saturated-replay counterpart that exposes the
        // single-core ceiling when both land on one CPU.
        result.scalars.push((
            "channel_scaling_1_to_2".into(),
            paced_by_k[1] / paced_by_k[0],
        ));
        result.scalars.push((
            "saturated_channel_scaling_1_to_2".into(),
            saturated_by_k[1] / saturated_by_k[0],
        ));
        result
            .scalars
            .push(("padded_spectrum_ns".into(), padded_spectrum_ns));
        result.scalars.push(("fig15b_quick_ms".into(), fig15_ms));
        result.scalars.push(("fig17_quick_ms".into(), fig17_ms));
        result
    }

    fn render_text(&self, result: &ExperimentResult) -> String {
        let mut out = String::from("perf_snapshot (quick mode)\n");
        let spectrum = result.scalar("padded_spectrum_ns").expect("scalar");
        let _ = writeln!(
            out,
            "  padded_spectrum: {spectrum:.0} ns per symbol spectrum"
        );
        for row in &result.table("decode").expect("decode table").rows {
            let _ = writeln!(
                out,
                "  decode_round[{:>3.0} devices]: {:.3} ms per {PERF_PAYLOAD_SYMBOLS}-symbol round = {:.0} symbols/sec",
                row[0], row[1], row[2]
            );
        }
        for row in &result.table("network").expect("network table").rows {
            let _ = writeln!(
                out,
                "  fullround[{:>3.0} devices]: {:.3} ms per sample-level round = {:.0} device-symbols/sec",
                row[0], row[1], row[2]
            );
        }
        for row in &result.table("stream").expect("stream table").rows {
            let _ = writeln!(
                out,
                "  gateway[{:>3.0} devices]: {:.2} Msamples/s = {:.2}x real time",
                row[0], row[1], row[2]
            );
        }
        for row in &result.table("multi_channel").expect("multi table").rows {
            let _ = writeln!(
                out,
                "  sharded[{:.0} ch]: saturated {:.2} Msamples/s ({:.2}x), real-time paced {:.2} Msamples/s ({:.2}x)",
                row[0], row[1], row[2], row[3], row[4]
            );
        }
        for row in &result.table("coding").expect("coding table").rows {
            let scheme = CodingScheme::ALL
                .get(row[0] as usize)
                .map(|s| s.name())
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "  codec[{scheme:>8}]: rate {:.2}, encode {:.2} Msym/s, decode {:.2} Msym/s",
                row[2], row[3], row[4]
            );
        }
        let _ = writeln!(
            out,
            "  single-channel speedup vs pre-refactor snapshot (64 devices): {:.2}x",
            result.scalar("speedup_vs_pre_refactor").expect("scalar")
        );
        let _ = writeln!(
            out,
            "  1->2 channel aggregate scaling: {:.2}x paced, {:.2}x saturated",
            result.scalar("channel_scaling_1_to_2").expect("scalar"),
            result
                .scalar("saturated_channel_scaling_1_to_2")
                .expect("scalar")
        );
        let _ = writeln!(
            out,
            "  fig15b quick sweep: {:.0} ms",
            result.scalar("fig15b_quick_ms").expect("scalar")
        );
        let _ = writeln!(
            out,
            "  fig17 quick sweep: {:.0} ms",
            result.scalar("fig17_quick_ms").expect("scalar")
        );
        out
    }
}

/// Splits a [`Perf`] result into the four CI artifacts — `BENCH_decode`
/// (decode pipeline + sweep wall-times), `BENCH_network` (sample-level
/// round throughput), `BENCH_stream` (streaming-gateway throughput,
/// real-time factor, multi-channel scaling and the pre-refactor speedup
/// scalar) and `BENCH_coding` (per-codec frame encode/decode Msymbols/s) —
/// each a self-contained schema-versioned [`ExperimentResult`] for the
/// JSON sink.
pub fn perf_bench_results(
    perf: &ExperimentResult,
) -> (
    ExperimentResult,
    ExperimentResult,
    ExperimentResult,
    ExperimentResult,
) {
    let mut decode = ExperimentResult::new(
        "bench_decode",
        "Decode-pipeline perf snapshot (BENCH_decode)",
        &perf.scenario,
    );
    decode.source.clone_from(&perf.source);
    decode
        .tables
        .push(perf.table("decode").expect("decode table").clone());
    for name in [
        "payload_symbols_per_round",
        "padded_spectrum_ns",
        "fig15b_quick_ms",
        "fig17_quick_ms",
    ] {
        decode
            .scalars
            .push((name.into(), perf.scalar(name).expect("perf scalar")));
    }
    let mut network = ExperimentResult::new(
        "bench_network",
        "Sample-level network perf snapshot (BENCH_network)",
        &perf.scenario,
    );
    network.source.clone_from(&perf.source);
    network
        .tables
        .push(perf.table("network").expect("network table").clone());
    network.scalars.push((
        "payload_symbols_per_round".into(),
        perf.scalar("payload_symbols_per_round").expect("scalar"),
    ));
    let mut stream = ExperimentResult::new(
        "bench_stream",
        "Streaming-gateway perf snapshot (BENCH_stream)",
        &perf.scenario,
    );
    stream.source.clone_from(&perf.source);
    stream
        .tables
        .push(perf.table("stream").expect("stream table").clone());
    stream
        .tables
        .push(perf.table("multi_channel").expect("multi table").clone());
    for name in [
        "single_channel_msamples_per_sec",
        "speedup_vs_pre_refactor",
        "channel_scaling_1_to_2",
        "saturated_channel_scaling_1_to_2",
    ] {
        stream
            .scalars
            .push((name.into(), perf.scalar(name).expect("perf scalar")));
    }
    let mut coding = ExperimentResult::new(
        "bench_coding",
        "Link-layer codec perf snapshot (BENCH_coding)",
        &perf.scenario,
    );
    coding.source.clone_from(&perf.source);
    coding
        .tables
        .push(perf.table("coding").expect("coding table").clone());
    (decode, network, stream, coding)
}

/// Wraps a [`Latency`] result as the fifth CI artifact — `BENCH_latency`
/// (per-stage and ingest→emit latency quantiles under paced replay at
/// {16, 64, 256} devices), a self-contained schema-versioned
/// [`ExperimentResult`] for the JSON sink. CI gates on its
/// `p99_ingest_to_emit_ms` scalar against the committed baseline.
pub fn latency_bench_result(latency: &ExperimentResult) -> ExperimentResult {
    let mut bench = ExperimentResult::new(
        "bench_latency",
        "Pipeline-latency perf snapshot (BENCH_latency)",
        &latency.scenario,
    );
    bench.source.clone_from(&latency.source);
    bench
        .tables
        .push(latency.table("latency").expect("latency table").clone());
    bench.tables.push(
        latency
            .table("detect_samples")
            .expect("detect table")
            .clone(),
    );
    for name in [
        "stream_secs",
        "p50_ingest_to_emit_ms",
        "p99_ingest_to_emit_ms",
    ] {
        bench
            .scalars
            .push((name.into(), latency.scalar(name).expect("latency scalar")));
    }
    bench
}

// ---------------------------------------------------------------------------
// String-returning compatibility wrappers (benches, examples, tests)

fn render_for(exp: &dyn Experiment, scenario: &Scenario) -> String {
    exp.render_text(&exp.run(scenario))
}

fn scenario_at(scale: Scale, seed: u64) -> Scenario {
    Scenario::builder().scale(scale).seed(seed).build()
}

/// Table 1 as the pre-redesign text report.
pub fn table1() -> String {
    render_for(&Table1, &Scenario::default())
}

/// Fig. 4 as the pre-redesign text report.
pub fn fig04(scale: Scale, seed: u64) -> String {
    render_for(&Fig04, &scenario_at(scale, seed))
}

/// Fig. 8 as the pre-redesign text report.
pub fn fig08() -> String {
    render_for(&Fig08, &Scenario::default())
}

/// Fig. 9 as the pre-redesign text report.
pub fn fig09(scale: Scale, seed: u64) -> String {
    render_for(&Fig09, &scenario_at(scale, seed))
}

/// Fig. 12 as the pre-redesign text report.
pub fn fig12(scale: Scale, seed: u64) -> String {
    fig12_with_threads(scale, seed, available_threads())
}

/// [`fig12`] with an explicit worker-thread bound. The report is the same
/// string at every `threads` value — the property the determinism tests
/// pin down.
pub fn fig12_with_threads(scale: Scale, seed: u64, threads: usize) -> String {
    let scenario = Scenario::builder()
        .scale(scale)
        .seed(seed)
        .threads(threads)
        .build();
    render_for(&Fig12, &scenario)
}

/// Fig. 14 as the pre-redesign text report.
pub fn fig14(scale: Scale, seed: u64) -> String {
    render_for(&Fig14, &scenario_at(scale, seed))
}

/// Fig. 15 as the pre-redesign text report.
pub fn fig15(scale: Scale, seed: u64) -> String {
    render_for(&Fig15, &scenario_at(scale, seed))
}

/// Fig. 16 as the pre-redesign text report.
pub fn fig16() -> String {
    render_for(&Fig16, &Scenario::default())
}

/// Fig. 17 as the pre-redesign text report (analytical fidelity).
pub fn fig17(scale: Scale, seed: u64) -> String {
    fig17_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig17`] at an explicit fidelity and worker-thread bound. The report is
/// byte-identical at every `threads` value.
pub fn fig17_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let scenario = Scenario::builder()
        .scale(scale)
        .seed(seed)
        .fidelity(fidelity)
        .threads(threads)
        .build();
    render_for(&Fig17, &scenario)
}

/// Fig. 18 as the pre-redesign text report (analytical fidelity).
pub fn fig18(scale: Scale, seed: u64) -> String {
    fig18_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig18`] at an explicit fidelity and worker-thread bound.
pub fn fig18_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let scenario = Scenario::builder()
        .scale(scale)
        .seed(seed)
        .fidelity(fidelity)
        .threads(threads)
        .build();
    render_for(&Fig18, &scenario)
}

/// Fig. 19 as the pre-redesign text report (analytical fidelity).
pub fn fig19(scale: Scale, seed: u64) -> String {
    fig19_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig19`] at an explicit fidelity and worker-thread bound.
pub fn fig19_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let scenario = Scenario::builder()
        .scale(scale)
        .seed(seed)
        .fidelity(fidelity)
        .threads(threads)
        .build();
    render_for(&Fig19, &scenario)
}

/// The Choir analysis as the pre-redesign text report.
pub fn analysis_choir() -> String {
    render_for(&AnalysisChoir, &Scenario::default())
}

/// The capacity analysis as the pre-redesign text report.
pub fn analysis_capacity() -> String {
    render_for(&AnalysisCapacity, &Scenario::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reports_are_nonempty_and_contain_headline_rows() {
        assert!(table1().contains("500"));
        assert!(fig04(Scale::Quick, 1).contains("backscatter p99"));
        assert!(fig08().contains("SKIP=2"));
        assert!(fig09(Scale::Quick, 1).lines().count() >= 9);
        assert!(fig12(Scale::Quick, 1).contains("SNR"));
        assert!(fig14(Scale::Quick, 1).contains("Fig. 14b"));
        assert!(fig15(Scale::Quick, 1).contains("Doppler"));
        assert!(fig16().contains("-10"));
        assert!(analysis_choir().contains("P(shift collision)"));
        assert!(analysis_capacity().contains("gain"));
    }

    #[test]
    fn network_figures_report_positive_gains() {
        let f17 = fig17(Scale::Quick, 2);
        let f18 = fig18(Scale::Quick, 2);
        let f19 = fig19(Scale::Quick, 2);
        assert!(f17.contains("PHY-rate gain"));
        assert!(f18.contains("link-layer gains"));
        assert!(f19.contains("latency reductions"));
    }

    #[test]
    fn registry_covers_all_former_drivers_plus_the_gateway() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            [
                "table1",
                "fig04",
                "fig08",
                "fig09",
                "fig12",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "analysis_choir",
                "analysis_capacity",
                "gateway",
                "goodput",
                "latency",
                "perf",
            ]
        );
        assert!(find("fig17").is_some());
        assert!(find("fig99").is_none());
        for exp in registry() {
            assert!(!exp.title().is_empty(), "{} needs a title", exp.id());
            for field in exp.scenario_fields() {
                assert!(
                    crate::scenario::SCENARIO_FIELDS.contains(field),
                    "{} declares unknown field {field}",
                    exp.id()
                );
            }
        }
    }

    #[test]
    fn structured_results_expose_series_not_just_text() {
        let scenario = Scenario::builder().scale(Scale::Quick).seed(2).build();
        let result = Fig17.run(&scenario);
        assert_eq!(result.schema_version, crate::experiment::SCHEMA_VERSION);
        let t = result.table("phy_rate").expect("phy_rate table");
        let n = t.column("n").expect("n column");
        assert_eq!(n, vec![1.0, 64.0, 256.0]);
        let ns = t.column("netscatter_bps").expect("netscatter column");
        assert!(ns.last().unwrap() > &150_000.0);
        assert!(result.scalar("gain_over_fixed").unwrap() > 10.0);
    }

    #[test]
    fn payload_bits_reach_the_network_figures() {
        let short = Fig18.run(
            &Scenario::builder()
                .scale(Scale::Quick)
                .devices(64)
                .payload_bits(8)
                .build(),
        );
        let long = Fig18.run(
            &Scenario::builder()
                .scale(Scale::Quick)
                .devices(64)
                .payload_bits(80)
                .build(),
        );
        // Longer payloads amortize the fixed query/preamble overhead, so
        // the link-layer rate must move.
        let rate = |r: &ExperimentResult| r.table("link_rate").unwrap().rows[1][3];
        assert!(rate(&long) > rate(&short));
    }

    #[test]
    fn gateway_experiment_decodes_an_analytical_stream() {
        // Analytical fidelity: ideal radios, no noise — every offered round
        // must come back decoded with zero bit errors, and the structured
        // result must carry the throughput columns BENCH_stream consumes.
        let scenario = Scenario::builder()
            .scale(Scale::Quick)
            .devices(16)
            .payload_bits(8)
            .stream_secs(0.2)
            .arrival_rate(20.0)
            .seed(5)
            .build();
        let result = Gateway.run(&scenario);
        let t = result.table("stream").expect("stream table");
        assert_eq!(t.rows.len(), 1, "16-device scenario has one size row");
        let offered = t.column("rounds_offered").unwrap()[0];
        let decoded = t.column("rounds_decoded").unwrap()[0];
        assert!(offered >= 1.0, "stream offered no rounds");
        assert_eq!(offered, decoded, "every ideal round decodes");
        assert_eq!(t.column("ber").unwrap()[0], 0.0);
        assert_eq!(t.column("delivery_frac").unwrap()[0], 1.0);
        assert!(t.column("msamples_per_sec").unwrap()[0] > 0.0);
        assert!(result.scalar("real_time_factor").unwrap() > 0.0);
        let text = Gateway.render_text(&result);
        assert!(text.contains("real time"), "{text}");
    }

    #[test]
    fn gateway_experiment_survives_the_sample_level_channel() {
        // Sample-level office synthesis at a small population: the gateway
        // must find most rounds through multipath/fading/CFO/noise.
        let scenario = Scenario::builder()
            .scale(Scale::Quick)
            .devices(16)
            .payload_bits(8)
            .stream_secs(0.25)
            .arrival_rate(20.0)
            .fidelity(Fidelity::SampleLevel)
            .seed(7)
            .build();
        let result = Gateway.run(&scenario);
        let t = result.table("stream").expect("stream table");
        let offered = t.column("rounds_offered").unwrap()[0];
        let decoded = t.column("rounds_decoded").unwrap()[0];
        assert!(offered >= 1.0);
        assert!(
            decoded >= (offered * 0.5).floor(),
            "gateway missed most rounds: {decoded}/{offered}"
        );
        assert!(t.column("delivery_frac").unwrap()[0] > 0.3);
    }

    #[test]
    fn goodput_analytical_rows_show_pure_rate_overhead() {
        // Analytical fidelity gates whole devices, so every scheme at one
        // size shares the delivery fraction and goodput orders exactly by
        // code rate: none > fountain > rs > hamming > conv at 168 bits.
        let scenario = Scenario::builder()
            .scale(Scale::Quick)
            .devices(64)
            .seed(3)
            .build();
        let result = Goodput.run(&scenario);
        let t = result.table("goodput").expect("goodput table");
        assert_eq!(
            t.rows.len(),
            2 * CodingScheme::ALL.len(),
            "two sizes x five schemes"
        );
        assert_eq!(result.scalar("payload_bits"), Some(168.0));
        let at_64: Vec<&Vec<f64>> = t.rows.iter().filter(|r| r[0] == 64.0).collect();
        let delivery = at_64[0][6];
        for row in &at_64 {
            assert_eq!(row[6], delivery, "shared analytical delivery");
            assert_eq!(row[7], 1.0, "delivered devices are error-free");
            assert_eq!(row[9], 0.0, "no residual BER under the gate");
            let goodput = row[2] * delivery;
            assert!(
                (row[11] - goodput).abs() < 1e-9,
                "goodput = rate x delivery"
            );
        }
        // Rate ordering: uncoded carries the most bits per on-air bit.
        let rate_of = |scheme: CodingScheme| {
            let idx = CodingScheme::ALL.iter().position(|&s| s == scheme).unwrap() as f64;
            at_64.iter().find(|r| r[1] == idx).unwrap()[2]
        };
        assert!(rate_of(CodingScheme::None) > rate_of(CodingScheme::Fountain));
        assert!(rate_of(CodingScheme::Fountain) > rate_of(CodingScheme::Rs));
        assert!(rate_of(CodingScheme::Rs) > rate_of(CodingScheme::Hamming));
        assert!(rate_of(CodingScheme::Hamming) > rate_of(CodingScheme::Conv));
        let text = Goodput.render_text(&result);
        assert!(text.contains("goodput"), "{text}");
        assert!(text.contains("conv"), "{text}");
    }

    #[test]
    fn goodput_selected_scheme_runs_against_the_raw_baseline() {
        // `--coding conv --payload-bits 108`: two rows per size, conv at
        // the scenario's validated geometry.
        let scenario = Scenario::builder()
            .scale(Scale::Quick)
            .devices(16)
            .coding(CodingScheme::Conv)
            .payload_bits(108)
            .seed(5)
            .build();
        scenario.validate().expect("valid geometry");
        let result = Goodput.run(&scenario);
        let t = result.table("goodput").expect("goodput table");
        assert_eq!(t.rows.len(), 2, "one size, baseline + conv");
        assert_eq!(result.scalar("payload_bits"), Some(108.0));
        let conv_idx = CodingScheme::ALL
            .iter()
            .position(|&s| s == CodingScheme::Conv)
            .unwrap() as f64;
        let conv = t.rows.iter().find(|r| r[1] == conv_idx).expect("conv row");
        assert_eq!(
            conv[3],
            48.0 - 32.0,
            "conv at 108 bits carries 16 data bits"
        );
    }

    #[test]
    fn goodput_sample_conv_delivers_at_the_residual_operating_point() {
        // ISSUE 9 acceptance: at 256 devices, coded frame delivery >= 99%
        // at the operating point where raw BER is ~1e-2. The office fade
        // tail also produces device-rounds far beyond any code's reach, so
        // the claim is pinned on the `delivery_at_ber_1e2` bucket.
        let scenario = Scenario::builder()
            .scale(Scale::Quick)
            .devices(256)
            .fidelity(Fidelity::SampleLevel)
            .coding(CodingScheme::Conv)
            .payload_bits(GOODPUT_PAYLOAD_BITS)
            .seed(42)
            .build();
        scenario.validate().expect("valid geometry");
        let result = Goodput.run(&scenario);
        let t = result.table("goodput").expect("goodput table");
        assert_eq!(t.rows.len(), 6, "sizes {{16,64,256}} x {{none,conv}}");
        let conv_idx = CodingScheme::ALL
            .iter()
            .position(|&s| s == CodingScheme::Conv)
            .unwrap() as f64;
        let row_at = |scheme_idx: f64| {
            t.rows
                .iter()
                .find(|r| r[0] == 256.0 && r[1] == scheme_idx)
                .expect("256-device row")
        };
        let raw = row_at(0.0);
        let conv = row_at(conv_idx);
        // The uncoded baseline proves the ~1e-2 bucket is populated: an
        // empty bucket would degenerate to 1.0, but any bit error kills a
        // raw frame, so delivery there is exactly 0.
        assert_eq!(raw[12], 0.0, "uncoded frames never survive bit errors");
        assert!(
            raw[9] > 1e-3 && raw[9] < 0.5,
            "raw BER among detected devices is in the lossy regime: {}",
            raw[9]
        );
        assert!(
            conv[12] >= 0.99,
            "conv delivery at the ~1e-2-BER operating point: {}",
            conv[12]
        );
        assert!(
            conv[7] > raw[7],
            "coding lifts detected-frame delivery: conv {} vs raw {}",
            conv[7],
            raw[7]
        );
        assert!(conv[10] > 0.0, "Viterbi reports corrected errors");
    }

    #[test]
    fn network_sweep_clamps_sizes_to_the_scenario_population() {
        let scenario = Scenario::builder().scale(Scale::Quick).devices(48).build();
        let (_, sizes) = network_sweep(&scenario);
        assert_eq!(sizes, vec![1, 48]);
        let default = Scenario::builder().scale(Scale::Quick).build();
        let (_, sizes) = network_sweep(&default);
        assert_eq!(sizes, vec![1, 64, 256]);
    }
}

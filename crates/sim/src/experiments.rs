//! One driver per table/figure of the paper's evaluation.
//!
//! Every function returns a human-readable report whose rows mirror the
//! corresponding table or figure series; the binaries in `src/bin/` simply
//! print these reports, and the Criterion benches in `netscatter-bench` time
//! the same drivers. `EXPERIMENTS.md` records the paper-vs-measured
//! comparison for each one.

use crate::ber::{max_tolerable_power_difference_db_sharded, near_far_ber_sharded, NearFarConfig};
use crate::deployment::{Deployment, DeploymentConfig};
use crate::fullround::ChannelModel;
use crate::montecarlo::{available_threads, parallel_map, MonteCarlo};
use crate::network::{
    lora_backscatter_metrics_with, netscatter_metrics_with, Fidelity, NetScatterVariant,
    SchemeMetrics,
};
use netscatter::analysis;
use netscatter_baselines::choir::fft_bin_variation_cdf;
use netscatter_baselines::tdma::LoraScheme;
use netscatter_channel::doppler::backscatter_doppler_shift_hz;
use netscatter_channel::fading::TemporalFading;
use netscatter_channel::impairments::ImpairmentModel;
use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::spectrogram::{spectrogram, SpectrogramConfig};
use netscatter_dsp::spectrum::sidelobe_profile_db;
use netscatter_dsp::stats::EmpiricalCdf;
use netscatter_phy::params::ModulationConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Scale of an experiment run: `Quick` for benches/tests, `Full` for the
/// figure-quality binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced trial counts for CI and Criterion.
    Quick,
    /// Paper-scale trial counts.
    Full,
}

impl Scale {
    fn pick(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Parses the shared CLI of the network-figure drivers:
/// `[--quick] [--fidelity analytical|sample]`. Exits with an error message
/// on unknown arguments or fidelity values.
pub fn parse_network_driver_args() -> (Scale, Fidelity) {
    let mut scale = Scale::Full;
    let mut fidelity = Fidelity::Analytical;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--fidelity" => {
                fidelity = match args.next().as_deref() {
                    Some("analytical") => Fidelity::Analytical,
                    Some("sample") => Fidelity::SampleLevel,
                    other => {
                        eprintln!(
                            "--fidelity expects 'analytical' or 'sample', got {:?}",
                            other.unwrap_or("nothing")
                        );
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    (scale, fidelity)
}

/// Table 1: modulation configurations and their derived properties.
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1: NetScatter modulation configurations\nBW[kHz]  SF  TimeVar[us]  FreqVar[Hz]  BitRate[bps]  Sensitivity[dBm]\n",
    );
    for cfg in ModulationConfig::table1_rows() {
        let _ = writeln!(
            out,
            "{:7.0}  {:2}  {:11.1}  {:11.0}  {:12.0}  {:16.1}",
            cfg.bandwidth_hz / 1e3,
            cfg.spreading_factor,
            cfg.tolerable_timing_mismatch_s() * 1e6,
            cfg.tolerable_frequency_mismatch_hz(),
            cfg.per_device_bitrate_bps(),
            cfg.sensitivity_dbm()
        );
    }
    out
}

/// Fig. 4: CDF of ΔFFTbin for backscatter devices vs. active LoRa radios.
pub fn fig04(scale: Scale, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = ChirpParams::new(500e3, 9).expect("paper parameters");
    let devices = scale.pick(32, 256);
    let packets = scale.pick(20, 200);
    let tags = fft_bin_variation_cdf(
        &mut rng,
        &ImpairmentModel::cots_backscatter(),
        params,
        devices,
        packets,
    );
    let radios = fft_bin_variation_cdf(
        &mut rng,
        &ImpairmentModel::active_radio(),
        params,
        devices,
        packets,
    );
    let mut out = String::from("Fig. 4: CDF of delta-FFT-bin (BW=500 kHz, SF=9)\n  dFFTbin  CDF(backscatter)  CDF(LoRa radio)\n");
    for i in 0..=28 {
        let x = i as f64 * 0.25;
        let _ = writeln!(
            out,
            "  {:7.2}  {:16.3}  {:15.3}",
            x,
            tags.probability_at_or_below(x),
            radios.probability_at_or_below(x)
        );
    }
    let _ = writeln!(
        out,
        "backscatter p99 = {:.3} bins, radio p99 = {:.3} bins",
        tags.quantile(0.99),
        radios.quantile(0.99)
    );
    out
}

/// Fig. 8: normalized dechirped power spectrum side-lobe levels.
pub fn fig08() -> String {
    let profile = sidelobe_profile_db(512, 8).expect("power-of-two sizes");
    let mut out = String::from("Fig. 8: side-lobe envelope vs. bin offset (SF=9, zero-padding 8x)\n  offset[bins]  level[dB]\n");
    for offset in [1usize, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256] {
        let _ = writeln!(
            out,
            "  {:12}  {:9.2}",
            offset,
            profile.level_at_offset(offset)
        );
    }
    let _ = writeln!(
        out,
        "SKIP=2 tolerable power difference ≈ {:.1} dB (paper: ≈13 dB); SKIP=3 ≈ {:.1} dB (paper: ≈21 dB)",
        profile.tolerable_power_difference_db(2),
        profile.tolerable_power_difference_db(3)
    );
    out
}

/// Fig. 9: CDF of SNR variation for eight devices over a busy office period.
pub fn fig09(scale: Scale, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let steps = scale.pick(2_000, 20_000);
    let mut out = String::from("Fig. 9: CDF of SNR deviation (dB) per device over 30 minutes of office mobility\n  device  p5      p50     p95\n");
    for device in 0..8 {
        let mut fading = TemporalFading::office_default();
        let series = fading.series(&mut rng, steps);
        let cdf = EmpiricalCdf::from_samples(series);
        let _ = writeln!(
            out,
            "  {:6}  {:6.2}  {:6.2}  {:6.2}",
            device + 1,
            cdf.quantile(0.05),
            cdf.quantile(0.5),
            cdf.quantile(0.95)
        );
    }
    out
}

/// Fig. 12: near-far BER vs. SNR for several interferer power advantages.
///
/// Every (SNR, Δpower) cell is an independent sharded Monte-Carlo point on
/// a seed derived from `seed`, so the report is reproducible bit-for-bit at
/// any thread count.
pub fn fig12(scale: Scale, seed: u64) -> String {
    fig12_with_threads(scale, seed, available_threads())
}

/// [`fig12`] with an explicit worker-thread bound. The report is the same
/// string at every `threads` value — the property the determinism tests
/// pin down.
pub fn fig12_with_threads(scale: Scale, seed: u64, threads: usize) -> String {
    let mc = MonteCarlo::with_threads(seed, threads);
    let symbols = scale.pick(200, 10_000);
    let snrs = [-20.0, -18.0, -16.0, -14.0, -12.0, -10.0];
    let deltas = [0.0, 35.0, 40.0, 45.0];
    let mut out = String::from(
        "Fig. 12: victim BER vs. SNR with a strong interferer (power-aware assignment)\n  SNR[dB]",
    );
    for d in deltas {
        let _ = write!(out, "  delta={:>4.0}dB", d);
    }
    out.push('\n');
    for (i, snr) in snrs.iter().enumerate() {
        let _ = write!(out, "  {:7.1}", snr);
        for (j, delta) in deltas.iter().enumerate() {
            let cfg = NearFarConfig::paper(*delta);
            let cell = mc.derive((i * deltas.len() + j) as u64);
            let ber = near_far_ber_sharded(&cell, &cfg, *snr, symbols);
            let _ = write!(out, "  {:12.4}", ber);
        }
        out.push('\n');
    }
    out
}

/// Fig. 14: (a) device frequency-offset CDF and (b) residual ΔFFTbin for
/// three modulation configurations.
pub fn fig14(scale: Scale, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = ImpairmentModel::cots_backscatter();
    let devices = scale.pick(64, 256);
    let packets = scale.pick(50, 1000);
    // (a) frequency offsets.
    let mut offsets = Vec::new();
    for _ in 0..devices {
        let d = model.sample_device(&mut rng);
        for _ in 0..packets / 10 {
            offsets.push(model.sample_packet(&mut rng, &d).freq_offset_hz);
        }
    }
    let cdf = EmpiricalCdf::from_samples(offsets);
    let mut out = String::from("Fig. 14a: device frequency offsets (Hz)\n");
    let _ = writeln!(
        out,
        "  p1 = {:.1} Hz, p50 = {:.1} Hz, p99 = {:.1} Hz (paper: within ±150 Hz)",
        cdf.quantile(0.01),
        cdf.quantile(0.5),
        cdf.quantile(0.99)
    );
    // (b) residual ΔFFTbin for the three configurations.
    out.push_str("Fig. 14b: residual delta-FFT-bin (1-CDF at 0.5/1.0/1.5/2.0 bins)\n  BW[kHz] SF   >0.5    >1.0    >1.5    >2.0\n");
    for (bw, sf) in [(500e3, 9u32), (250e3, 8), (125e3, 7)] {
        let params = ChirpParams::new(bw, sf).expect("table configs are valid");
        let mut samples = Vec::new();
        for _ in 0..devices {
            let d = model.sample_device(&mut rng);
            for _ in 0..packets / 10 {
                let p = model.sample_packet(&mut rng, &d);
                let bins = params.timing_offset_to_bins(p.timing_offset_s)
                    + params.frequency_offset_to_bins(p.freq_offset_hz);
                samples.push(bins.abs());
            }
        }
        let cdf = EmpiricalCdf::from_samples(samples);
        let _ = writeln!(
            out,
            "  {:6.0} {:3}  {:6.3}  {:6.3}  {:6.3}  {:6.3}",
            bw / 1e3,
            sf,
            cdf.probability_above(0.5),
            cdf.probability_above(1.0),
            cdf.probability_above(1.5),
            cdf.probability_above(2.0)
        );
    }
    out
}

/// Fig. 15: (a) Doppler-induced ΔFFTbin for pedestrian speeds and (b) the
/// power dynamic range vs. FFT-bin separation.
pub fn fig15(scale: Scale, seed: u64) -> String {
    let params = ChirpParams::new(500e3, 9).expect("paper parameters");
    let mut out =
        String::from("Fig. 15a: Doppler delta-FFT-bin at 900 MHz\n  speed[m/s]  shift[Hz]  bins\n");
    for speed in [0.0, 1.0, 3.0, 5.0] {
        let shift = backscatter_doppler_shift_hz(speed, 900e6);
        let _ = writeln!(
            out,
            "  {:10.1}  {:9.1}  {:5.3}",
            speed,
            shift,
            params.frequency_offset_to_bins(shift)
        );
    }
    out.push_str("Fig. 15b: max tolerable power difference vs. bin separation\n  separation[bins]  tolerated[dB]\n");
    let mc = MonteCarlo::new(seed);
    let symbols = scale.pick(60, 400);
    // The target BER must sit above both the single-error quantum (1/symbols)
    // and the ~0.3% CFO-tail error floor, or the sweep aborts on a stray
    // noise outlier instead of actual interference (see the sibling test in
    // ber.rs): 5% at 60 quick symbols, 1% at 400 full-scale symbols.
    let target_ber = f64::max(0.01, 3.0 / symbols as f64);
    for (i, sep) in [2usize, 8, 32, 64, 128, 256].into_iter().enumerate() {
        let tolerated = max_tolerable_power_difference_db_sharded(
            &mc.derive(i as u64),
            params,
            sep,
            target_ber,
            symbols,
            45.0,
        );
        let _ = writeln!(out, "  {:16}  {:13.0}", sep, tolerated);
    }
    out
}

/// Fig. 16: spectrogram peak levels of the backscattered signal at the three
/// power gains.
pub fn fig16() -> String {
    use netscatter::power::BackscatterGain;
    use netscatter_dsp::chirp::ChirpSynthesizer;
    let params = ChirpParams::new(500e3, 9).expect("paper parameters");
    let synth = ChirpSynthesizer::new(params);
    let mut out = String::from("Fig. 16: backscattered-signal spectrogram peak power at each gain setting\n  gain[dB]  measured peak[dB rel. full]\n");
    let reference: f64 = {
        let sig = synth.oversampled_upchirp(0, 4, BackscatterGain::Full.amplitude());
        let sg = spectrogram(&sig, SpectrogramConfig::default()).expect("valid config");
        sg.mean_profile_db()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    for gain in BackscatterGain::ALL {
        let sig = synth.oversampled_upchirp(0, 4, gain.amplitude());
        // Use absolute power of the un-normalized signal: compute mean power and express vs full.
        let power_db = netscatter_dsp::linear_to_db(netscatter_dsp::complex::mean_power(&sig));
        let full_db = netscatter_dsp::linear_to_db(BackscatterGain::Full.amplitude().powi(2));
        let _ = writeln!(out, "  {:8.0}  {:10.1}", gain.db(), power_db - full_db);
    }
    let _ = writeln!(
        out,
        "(spectrogram reference peak, self-normalized: {reference:.1} dB)"
    );
    out
}

/// Shared helper: the Fig. 17–19 sweep over network sizes.
fn network_sweep(scale: Scale, seed: u64) -> (Deployment, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dep = Deployment::generate(DeploymentConfig::office(256), &mut rng);
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1, 64, 256],
        Scale::Full => vec![1, 16, 32, 64, 96, 128, 160, 192, 224, 256],
    };
    (dep, sizes)
}

/// One network size of the Fig. 17–19 sweep: all five schemes' metrics.
struct SweepRow {
    n: usize,
    fixed: SchemeMetrics,
    adapted: SchemeMetrics,
    ideal: SchemeMetrics,
    c1: SchemeMetrics,
    c2: SchemeMetrics,
}

/// Computes every sweep row in parallel. Each row is a pure function of the
/// (already generated) deployment and of the per-size derived Monte-Carlo
/// runner, so the result is independent of the thread count and identical
/// to the sequential sweep. Under [`Fidelity::SampleLevel`] the NetScatter
/// and baseline metrics of one row share their channel realizations: both
/// derive them from the same per-size runner.
fn sweep_rows(
    dep: &Deployment,
    sizes: &[usize],
    fidelity: Fidelity,
    seed: u64,
    threads: usize,
) -> Vec<SweepRow> {
    let model = ChannelModel::office();
    let mc = MonteCarlo::with_threads(seed, threads);
    parallel_map(sizes, threads, |&n| {
        // One decorrelated runner per network size; within the row, every
        // scheme sees the same trial seeds and therefore the same draws.
        let row_mc = MonteCarlo::with_threads(mc.derive(n as u64).seed, 1);
        SweepRow {
            n,
            fixed: lora_backscatter_metrics_with(
                dep,
                n,
                40,
                LoraScheme::fixed(),
                fidelity,
                &model,
                &row_mc,
            ),
            adapted: lora_backscatter_metrics_with(
                dep,
                n,
                40,
                LoraScheme::rate_adapted(),
                fidelity,
                &model,
                &row_mc,
            ),
            ideal: netscatter_metrics_with(
                dep,
                n,
                40,
                NetScatterVariant::Ideal,
                fidelity,
                &model,
                &row_mc,
            ),
            c1: netscatter_metrics_with(
                dep,
                n,
                40,
                NetScatterVariant::Config1,
                fidelity,
                &model,
                &row_mc,
            ),
            c2: netscatter_metrics_with(
                dep,
                n,
                40,
                NetScatterVariant::Config2,
                fidelity,
                &model,
                &row_mc,
            ),
        }
    })
}

/// The report-header tag for a fidelity mode.
fn fidelity_tag(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Analytical => "analytical",
        Fidelity::SampleLevel => "sample-level",
    }
}

/// Fig. 17: network PHY rate vs. number of devices.
pub fn fig17(scale: Scale, seed: u64) -> String {
    fig17_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig17`] at an explicit fidelity and worker-thread bound. The report is
/// byte-identical at every `threads` value.
pub fn fig17_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let (dep, sizes) = network_sweep(scale, seed);
    let rows = sweep_rows(&dep, &sizes, fidelity, seed, threads);
    let mut out = format!("Fig. 17: network PHY rate [kbps] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter(Ideal)  NetScatter\n", fidelity_tag(fidelity));
    for row in &rows {
        let _ = writeln!(
            out,
            "  {:4}  {:10.1}  {:15.1}  {:17.1}  {:10.1}",
            row.n,
            row.fixed.phy_rate_bps / 1e3,
            row.adapted.phy_rate_bps / 1e3,
            row.ideal.phy_rate_bps / 1e3,
            row.c1.phy_rate_bps / 1e3
        );
    }
    let last = rows.last().expect("sweep has at least one size");
    let _ = writeln!(
        out,
        "PHY-rate gain at {} devices: {:.1}x over fixed-rate (paper 26.2x), {:.1}x over rate-adapted (paper 6.8x)",
        last.n,
        last.c1.phy_rate_bps / last.fixed.phy_rate_bps,
        last.c1.phy_rate_bps / last.adapted.phy_rate_bps
    );
    out
}

/// Fig. 18: link-layer data rate vs. number of devices.
pub fn fig18(scale: Scale, seed: u64) -> String {
    fig18_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig18`] at an explicit fidelity and worker-thread bound.
pub fn fig18_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let (dep, sizes) = network_sweep(scale, seed);
    let rows = sweep_rows(&dep, &sizes, fidelity, seed, threads);
    let mut out = format!("Fig. 18: link-layer data rate [kbps] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter-cfg1  NetScatter-cfg2\n", fidelity_tag(fidelity));
    for row in &rows {
        let _ = writeln!(
            out,
            "  {:4}  {:10.1}  {:15.1}  {:15.1}  {:15.1}",
            row.n,
            row.fixed.link_layer_rate_bps / 1e3,
            row.adapted.link_layer_rate_bps / 1e3,
            row.c1.link_layer_rate_bps / 1e3,
            row.c2.link_layer_rate_bps / 1e3
        );
    }
    let last = rows.last().expect("sweep has at least one size");
    let _ = writeln!(
        out,
        "link-layer gains at {}: cfg1 {:.1}x / cfg2 {:.1}x over fixed (paper 61.9x / 50.9x); cfg1 {:.1}x / cfg2 {:.1}x over rate-adapted (paper 14.1x / 11.6x)",
        last.n,
        last.c1.link_layer_rate_bps / last.fixed.link_layer_rate_bps,
        last.c2.link_layer_rate_bps / last.fixed.link_layer_rate_bps,
        last.c1.link_layer_rate_bps / last.adapted.link_layer_rate_bps,
        last.c2.link_layer_rate_bps / last.adapted.link_layer_rate_bps
    );
    out
}

/// Fig. 19: network latency vs. number of devices.
pub fn fig19(scale: Scale, seed: u64) -> String {
    fig19_fidelity(scale, seed, Fidelity::Analytical, available_threads())
}

/// [`fig19`] at an explicit fidelity and worker-thread bound.
pub fn fig19_fidelity(scale: Scale, seed: u64, fidelity: Fidelity, threads: usize) -> String {
    let (dep, sizes) = network_sweep(scale, seed);
    let rows = sweep_rows(&dep, &sizes, fidelity, seed, threads);
    let mut out = format!("Fig. 19: network latency [ms] ({} delivery)\n  N     LoRa-fixed  LoRa-rate-adapt  NetScatter-cfg1  NetScatter-cfg2\n", fidelity_tag(fidelity));
    for row in &rows {
        let _ = writeln!(
            out,
            "  {:4}  {:10.1}  {:15.1}  {:15.1}  {:15.1}",
            row.n,
            row.fixed.latency_s * 1e3,
            row.adapted.latency_s * 1e3,
            row.c1.latency_s * 1e3,
            row.c2.latency_s * 1e3
        );
    }
    let last = rows.last().expect("sweep has at least one size");
    let _ = writeln!(
        out,
        "latency reductions at {}: cfg1 {:.1}x / cfg2 {:.1}x vs fixed (paper 67.0x / 55.1x); cfg1 {:.1}x / cfg2 {:.1}x vs rate-adapted (paper 15.3x / 12.6x)",
        last.n,
        last.fixed.latency_s / last.c1.latency_s,
        last.fixed.latency_s / last.c2.latency_s,
        last.adapted.latency_s / last.c1.latency_s,
        last.adapted.latency_s / last.c2.latency_s
    );
    out
}

/// §2.2 analysis: Choir collision probabilities and distinct-fraction odds.
pub fn analysis_choir() -> String {
    let mut out = String::from("Choir / concurrent-LoRa analysis (SF = 9)\n  N   P(shift collision)  P(distinct tenth-bin fractions)\n");
    for n in [2usize, 5, 10, 20, 50] {
        let _ = writeln!(
            out,
            "  {:3}  {:18.3}  {:30.4}",
            n,
            analysis::lora_collision_probability(n, 9),
            analysis::choir_distinct_fraction_probability(n)
        );
    }
    out
}

/// §3.1 analysis: throughput gain and multi-user capacity scaling.
pub fn analysis_capacity() -> String {
    let mut out = String::from("Distributed CSS throughput gain 2^SF/SF and multi-user capacity\n  SF  gain      capacity@N=64[-30dB, kbps]  capacity@N=256\n");
    for sf in 6u32..=12 {
        let _ = writeln!(
            out,
            "  {:2}  {:8.1}  {:26.1}  {:14.1}",
            sf,
            analysis::distributed_throughput_gain(sf),
            analysis::multiuser_capacity_bps(500e3, 64, -30.0) / 1e3,
            analysis::multiuser_capacity_bps(500e3, 256, -30.0) / 1e3
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reports_are_nonempty_and_contain_headline_rows() {
        assert!(table1().contains("500"));
        assert!(fig04(Scale::Quick, 1).contains("backscatter p99"));
        assert!(fig08().contains("SKIP=2"));
        assert!(fig09(Scale::Quick, 1).lines().count() >= 9);
        assert!(fig12(Scale::Quick, 1).contains("SNR"));
        assert!(fig14(Scale::Quick, 1).contains("Fig. 14b"));
        assert!(fig15(Scale::Quick, 1).contains("Doppler"));
        assert!(fig16().contains("-10"));
        assert!(analysis_choir().contains("P(shift collision)"));
        assert!(analysis_capacity().contains("gain"));
    }

    #[test]
    fn network_figures_report_positive_gains() {
        let f17 = fig17(Scale::Quick, 2);
        let f18 = fig18(Scale::Quick, 2);
        let f19 = fig19(Scale::Quick, 2);
        assert!(f17.contains("PHY-rate gain"));
        assert!(f18.contains("link-layer gains"));
        assert!(f19.contains("latency reductions"));
    }
}

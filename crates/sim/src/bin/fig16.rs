//! Regenerates Fig. 16 (backscatter power levels via the switch network).
fn main() {
    println!("{}", netscatter_sim::experiments::fig16());
}

//! Regenerates Table 1 of the paper.
fn main() {
    println!("{}", netscatter_sim::experiments::table1());
}

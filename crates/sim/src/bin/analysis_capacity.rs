//! §3.1 analysis: throughput gain and multi-user Shannon capacity scaling.
fn main() {
    println!("{}", netscatter_sim::experiments::analysis_capacity());
}

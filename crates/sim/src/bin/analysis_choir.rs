//! §2.2 analysis: why Choir-style concurrent LoRa does not scale for backscatter.
fn main() {
    println!("{}", netscatter_sim::experiments::analysis_choir());
}

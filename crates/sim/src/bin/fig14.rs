//! Regenerates fig14 of the paper's evaluation (see EXPERIMENTS.md).
use netscatter_sim::experiments::{fig14, Scale};
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    println!("{}", fig14(scale, 42));
}

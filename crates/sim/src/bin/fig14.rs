//! Shim for `netscatter run fig14`: kept so existing scripts and the CI fig
//! smoke stay green. Accepts the universal experiment flags
//! (`--quick`/`--paper`, `--seed`, `--threads`, `--fidelity`, ...).
fn main() {
    netscatter_sim::cli::legacy_main("fig14");
}

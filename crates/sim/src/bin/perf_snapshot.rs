//! Performance snapshot for CI: times the steady-state decode path, the
//! quick-mode experiment sweeps and the sample-level network simulator,
//! prints a human-readable report, and writes the numbers to
//! `BENCH_decode.json` + `BENCH_network.json` so the perf trajectory of
//! both pipelines is tracked from PR to PR.
//!
//! Usage: `perf_snapshot [--out <path>] [--network-out <path>]`
//! (defaults `BENCH_decode.json` / `BENCH_network.json`).

use netscatter::receiver::ConcurrentReceiver;
use netscatter_phy::distributed::{ConcurrentDemodulator, DemodWorkspace, OnOffModulator};
use netscatter_phy::params::PhyProfile;
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::experiments::{fig15, fig17, Scale};
use netscatter_sim::fullround::{ChannelModel, FullRoundNetwork};
use netscatter_sim::workloads::build_concurrent_round;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const PAYLOAD_SYMBOLS: usize = 16;

/// Median wall-time of `samples` timed invocations of `f`, in seconds.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up to populate scratch buffers and caches.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let mut out_path = String::from("BENCH_decode.json");
    let mut network_out_path = String::from("BENCH_network.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--network-out" => {
                network_out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--network-out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let profile = PhyProfile::default();
    let params = profile.modulation.chirp();

    // 1. ns per padded spectrum (dechirp + pruned zero-padded FFT + power),
    //    the dominant per-symbol cost of the receiver.
    let demod = ConcurrentDemodulator::new(params, profile.zero_padding)
        .expect("profile zero-padding is a power of two");
    let mut ws = DemodWorkspace::new();
    let symbol = OnOffModulator::new(params, 123).symbol(true, 0.0, 0.0, 1.0);
    let batch = 256usize;
    let per_batch = median_secs(9, || {
        for _ in 0..batch {
            demod
                .padded_spectrum_into(&symbol, &mut ws)
                .expect("correct symbol length");
        }
    });
    let padded_spectrum_ns = per_batch / batch as f64 * 1e9;

    // 2. Full-round decode throughput (symbols/sec) vs device count.
    let mut decode_rows = Vec::new();
    for n_devices in [16usize, 64, 256] {
        let rx = ConcurrentReceiver::new(&profile).expect("valid profile");
        let (stream, bins) = build_concurrent_round(&profile, n_devices, PAYLOAD_SYMBOLS);
        let round_s = median_secs(5, || {
            let round = rx
                .decode_round(&stream, 0, &bins, PAYLOAD_SYMBOLS)
                .expect("round decodes");
            assert_eq!(round.devices.len(), n_devices, "all devices detected");
        });
        let symbols_per_sec = PAYLOAD_SYMBOLS as f64 / round_s;
        decode_rows.push((n_devices, round_s * 1e3, symbols_per_sec));
    }

    // 3. Sample-level network round throughput: channel realization +
    //    superposed synthesis + AWGN + full concurrent decode, per round,
    //    under the office channel model.
    let dep = Deployment::generate(
        DeploymentConfig::office(256),
        &mut StdRng::seed_from_u64(42),
    );
    let model = ChannelModel::office();
    let mut network_rows = Vec::new();
    for n_devices in [16usize, 64, 256] {
        let mut net = FullRoundNetwork::for_trial(&dep, n_devices, &model, 7);
        let round_s = median_secs(5, || {
            let truth = net.simulate_round(PAYLOAD_SYMBOLS);
            assert_eq!(truth.outcome.scheduled, n_devices);
        });
        let device_symbols_per_sec = n_devices as f64 * (8 + PAYLOAD_SYMBOLS) as f64 / round_s;
        network_rows.push((n_devices, round_s * 1e3, device_symbols_per_sec));
    }

    // 4. Quick-mode sweep wall-times: the Fig. 15b Monte-Carlo sweep and the
    //    Fig. 17 network sweep, both through the sharded/parallel layer.
    let t = Instant::now();
    let fig15_report = fig15(Scale::Quick, 42);
    let fig15_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let fig17_report = fig17(Scale::Quick, 42);
    let fig17_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(fig15_report.contains("Fig. 15b") && fig17_report.contains("Fig. 17"));

    // Human-readable report.
    println!("perf_snapshot (quick mode)");
    println!("  padded_spectrum: {padded_spectrum_ns:.0} ns per symbol spectrum");
    for (n, ms, sps) in &decode_rows {
        println!("  decode_round[{n:>3} devices]: {ms:.3} ms per {PAYLOAD_SYMBOLS}-symbol round = {sps:.0} symbols/sec");
    }
    for (n, ms, dsps) in &network_rows {
        println!("  fullround[{n:>3} devices]: {ms:.3} ms per sample-level round = {dsps:.0} device-symbols/sec");
    }
    println!("  fig15b quick sweep: {fig15_ms:.0} ms");
    println!("  fig17 quick sweep: {fig17_ms:.0} ms");

    // Machine-readable snapshot.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"netscatter-perf-snapshot-v1\",");
    let _ = writeln!(json, "  \"payload_symbols_per_round\": {PAYLOAD_SYMBOLS},");
    let _ = writeln!(json, "  \"padded_spectrum_ns\": {padded_spectrum_ns:.1},");
    let _ = writeln!(json, "  \"decode\": [");
    for (i, (n, ms, sps)) in decode_rows.iter().enumerate() {
        let comma = if i + 1 < decode_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"devices\": {n}, \"round_ms\": {ms:.4}, \"symbols_per_sec\": {sps:.1}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"sweeps\": {{");
    let _ = writeln!(json, "    \"fig15b_quick_ms\": {fig15_ms:.1},");
    let _ = writeln!(json, "    \"fig17_quick_ms\": {fig17_ms:.1}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // Sample-level network snapshot.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"netscatter-network-bench-v1\",");
    let _ = writeln!(json, "  \"payload_symbols_per_round\": {PAYLOAD_SYMBOLS},");
    let _ = writeln!(json, "  \"channel_model\": \"office\",");
    let _ = writeln!(json, "  \"rounds\": [");
    for (i, (n, ms, dsps)) in network_rows.iter().enumerate() {
        let comma = if i + 1 < network_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"devices\": {n}, \"round_ms\": {ms:.4}, \"device_symbols_per_sec\": {dsps:.1}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&network_out_path, &json) {
        eprintln!("failed to write {network_out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {network_out_path}");
}

//! Performance snapshot for CI: runs the registered `perf` experiment
//! (decode path, quick-mode sweeps, sample-level network rounds, streaming
//! gateway, link-layer codecs) plus the registered `latency` experiment
//! (per-stage and ingest→emit latency quantiles under paced replay),
//! prints their reports, and writes `BENCH_decode.json` +
//! `BENCH_network.json` + `BENCH_stream.json` + `BENCH_coding.json` +
//! `BENCH_latency.json` through the schema-versioned `ExperimentResult`
//! JSON sink so the perf trajectory of all five pipelines is tracked from
//! PR to PR.
//!
//! Usage: `perf_snapshot [--out <path>] [--network-out <path>]
//! [--stream-out <path>] [--coding-out <path>] [--latency-out <path>]
//! [--format text|json] [--seed N]` (defaults `BENCH_decode.json` /
//! `BENCH_network.json` / `BENCH_stream.json` / `BENCH_coding.json` /
//! `BENCH_latency.json`, text report).
//! The other universal experiment flags are accepted; ones the `perf`
//! experiment does not read (e.g. `--threads`) produce a stderr note.

use netscatter_sim::cli::{parse_flags_or_exit, warn_unused_fields};
use netscatter_sim::experiment::{render, OutputFormat};
use netscatter_sim::experiments::{find, latency_bench_result, perf_bench_results};
use netscatter_sim::Scenario;

const USAGE: &str =
    "perf_snapshot — CI perf snapshot (the registered `perf` + `latency` experiments)

USAGE:
  perf_snapshot [flags]

FLAGS:
  --out <PATH>            BENCH_decode.json path (default: BENCH_decode.json)
  --network-out <PATH>    BENCH_network.json path (default: BENCH_network.json)
  --stream-out <PATH>     BENCH_stream.json path (default: BENCH_stream.json)
  --coding-out <PATH>     BENCH_coding.json path (default: BENCH_coding.json)
  --latency-out <PATH>    BENCH_latency.json path (default: BENCH_latency.json)
  --seed <N>              deployment seed (default: 42)
  --format <text|json>    stdout report sink (default: text);
                          the BENCH artifacts are always JSON

Other universal experiment flags are accepted; ones the perf experiment
does not read (e.g. --threads) produce a stderr note.";

fn main() {
    let mut out_path = String::from("BENCH_decode.json");
    let mut network_out_path = String::from("BENCH_network.json");
    let mut stream_out_path = String::from("BENCH_stream.json");
    let mut coding_out_path = String::from("BENCH_coding.json");
    let mut latency_out_path = String::from("BENCH_latency.json");
    // Split the snapshot-specific flags off, then hand the rest to the
    // shared experiment-flag parser (which handles --help and rejects
    // unknown flags / unknown --format values with a usage error rather
    // than a silent default).
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut shared = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let take_value = |i: &mut usize| -> String {
            *i += 1;
            raw.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", raw[*i - 1]);
                std::process::exit(2);
            })
        };
        match raw[i].as_str() {
            "--out" => out_path = take_value(&mut i),
            "--network-out" => network_out_path = take_value(&mut i),
            "--stream-out" => stream_out_path = take_value(&mut i),
            "--coding-out" => coding_out_path = take_value(&mut i),
            "--latency-out" => latency_out_path = take_value(&mut i),
            other => shared.push(other.to_string()),
        }
        i += 1;
    }
    let opts = parse_flags_or_exit(&shared, USAGE);
    if opts.format == OutputFormat::Csv {
        eprintln!(
            "perf_snapshot supports --format text|json (the BENCH artifacts are always JSON)"
        );
        std::process::exit(2);
    }

    let exp = find("perf").expect("perf experiment is registered");
    warn_unused_fields(exp, &opts);
    let result = exp.run(&opts.scenario);
    print!("{}", render(exp, &result, opts.format));

    // The latency snapshot runs the registered `latency` experiment at the
    // same operating point as the perf stream section (10 rounds/s
    // arrivals, 0.5 s streams, 8192-sample chunks) — paced replay, so the
    // quantiles answer the deployment question, not the saturated one.
    let latency_exp = find("latency").expect("latency experiment is registered");
    let latency_scenario = Scenario::builder()
        .seed(opts.scenario.seed)
        .arrival_rate(10.0)
        .stream_secs(0.5)
        .chunk_samples(8192)
        .build();
    let latency_result = latency_exp.run(&latency_scenario);
    print!("{}", render(latency_exp, &latency_result, opts.format));

    let (decode, network, stream, coding) = perf_bench_results(&result);
    let latency = latency_bench_result(&latency_result);
    for (artifact, path) in [
        (decode, &out_path),
        (network, &network_out_path),
        (stream, &stream_out_path),
        (coding, &coding_out_path),
        (latency, &latency_out_path),
    ] {
        if let Err(e) = std::fs::write(path, artifact.to_json().to_string_pretty()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

//! Regenerates Fig. 8 (side-lobe envelope of the dechirped spectrum).
fn main() {
    println!("{}", netscatter_sim::experiments::fig08());
}

//! Regenerates fig18 of the paper's evaluation (see EXPERIMENTS.md).
//! `--fidelity sample` drives deliveries through the sample-level
//! superposition + decode chain instead of the analytical RSSI gate.
use netscatter_sim::experiments::{fig18_fidelity, parse_network_driver_args};
use netscatter_sim::montecarlo::available_threads;
fn main() {
    let (scale, fidelity) = parse_network_driver_args();
    println!(
        "{}",
        fig18_fidelity(scale, 42, fidelity, available_threads())
    );
}

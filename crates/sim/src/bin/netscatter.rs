//! The unified experiment CLI: `netscatter list | run <id> | sweep <id>`.
//! See `netscatter --help` and `crates/sim/src/cli.rs`.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(netscatter_sim::cli::main_with_args(&args));
}

//! The unified `netscatter` command-line interface.
//!
//! One binary replaces the 14 per-figure drivers:
//!
//! * `netscatter list` — every registered experiment with its scenario
//!   knobs.
//! * `netscatter run <id> [flags]` — run one experiment; `--format
//!   text|json|csv` selects the sink, `--out` redirects it to a file.
//! * `netscatter sweep <id> --set field=v1,v2,… [--set …]` — the cartesian
//!   parameter grid over any [`Scenario`] field, one structured result per
//!   grid point.
//! * `netscatter serve [flags]` — run the `netscatterd` multi-stream
//!   serving daemon (same flags as the standalone binary).
//! * `netscatter stress [flags]` — the multi-stream daemon stress harness
//!   (see [`crate::stress`]).
//!
//! Every experiment accepts the same universal flags (`--quick`/`--paper`,
//! `--seed`, `--threads`, `--fidelity`, `--devices`, `--placement`,
//! `--channel`, `--scheme`, `--payload-bits`); the per-figure shim binaries
//! route through [`legacy_main`] so `fig17 --quick --fidelity sample` keeps
//! working unchanged.

use crate::experiment::{render, Experiment, ExperimentResult, OutputFormat, SCHEMA_VERSION};
use crate::experiments::{find, registry};
use crate::scenario::{Scenario, SCENARIO_FIELDS};
use netscatter::json::Json;

/// A CLI failure: message for stderr plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable error (printed to stderr).
    pub message: String,
    /// Process exit code (2 for usage errors, 1 for I/O failures).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    fn io(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

/// The `--help` text.
pub fn usage() -> String {
    let schemes: Vec<&str> = crate::scenario::Scheme::ALL
        .iter()
        .map(|s| s.name())
        .collect();
    format!(
        "netscatter — unified experiment runner for the NetScatter reproduction

USAGE:
  netscatter list
  netscatter run <id> [flags]
  netscatter sweep <id> --set <field>=<v1,v2,...> [--set ...] [flags]
  netscatter serve [flags]     # the netscatterd daemon (serve --help)
  netscatter stress [flags]    # multi-stream daemon stress (stress --help)

FLAGS (run & sweep):
  --quick | --paper           trial-count scale (default: paper)
  --seed <N>                  Monte-Carlo base seed (default: 42)
  --threads <N>               worker-thread bound (default: all cores; 0 = all cores)
  --fidelity <analytical|sample>
  --devices <N>               population size (default: 256)
  --placement <office|hall>
  --channel <office|outdoor|pristine>
  --scheme <{schemes}>
  --payload-bits <N>
  --coding <{codings}>        link-layer coding scheme (default: none)
  --arrival-rate <R>          gateway round arrivals per second (default: 10)
  --stream-secs <S>           gateway stream duration (default: 1.0)
  --chunk-samples <N>         gateway producer chunk size (default: 4096)
  --channels <K>              gateway channels for the sharded engine (default: 1)
  --format <text|json|csv>    output sink (default: text)
  --out <PATH>                write output to PATH instead of stdout

Enum values (--fidelity, --scheme, --placement, --channel, --format, and
their --set counterparts) are case-insensitive.
Sweepable scenario fields: {fields}
Run `netscatter list` for the experiment ids.",
        schemes = schemes.join("|"),
        codings = coding_names().join("|"),
        fields = SCENARIO_FIELDS.join(", ")
    )
}

/// The CLI names of every link-layer coding scheme.
fn coding_names() -> Vec<&'static str> {
    netscatter_coding::CodingScheme::ALL
        .iter()
        .map(|c| c.name())
        .collect()
}

/// Options shared by `run`, `sweep`, and the shim binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// The scenario assembled from the flags.
    pub scenario: Scenario,
    /// Output sink.
    pub format: OutputFormat,
    /// Output file (stdout when `None`).
    pub out: Option<String>,
    /// `--set` grid axes, in flag order (sweep only).
    pub grid: Vec<(String, Vec<String>)>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scenario: Scenario::default(),
            format: OutputFormat::Text,
            out: None,
            grid: Vec::new(),
        }
    }
}

/// Parses the universal flag set into [`RunOptions`]. `allow_grid` enables
/// `--set` (the sweep grid); everything else is shared by `run` and the
/// shims.
pub fn parse_flags(args: &[String], allow_grid: bool) -> Result<RunOptions, CliError> {
    let mut opts = RunOptions::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError::usage(format!("{flag} requires a value")))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" => opts
                .scenario
                .set_field("scale", "quick")
                .map_err(CliError::usage)?,
            "--paper" => opts
                .scenario
                .set_field("scale", "paper")
                .map_err(CliError::usage)?,
            // Enum-valued fields are case-insensitive inside `set_field`,
            // which also covers the `--set` sweep path.
            "--seed" | "--threads" | "--devices" | "--placement" | "--channel" | "--fidelity"
            | "--scheme" | "--coding" => {
                let field = arg.trim_start_matches("--").to_string();
                let v = value(&mut i, arg)?;
                opts.scenario
                    .set_field(&field, &v)
                    .map_err(CliError::usage)?;
            }
            "--payload-bits" | "--arrival-rate" | "--stream-secs" | "--chunk-samples"
            | "--channels" => {
                let field = arg.trim_start_matches("--").replace('-', "_");
                let v = value(&mut i, arg)?;
                opts.scenario
                    .set_field(&field, &v)
                    .map_err(CliError::usage)?;
            }
            "--format" => {
                let v = value(&mut i, arg)?;
                opts.format = OutputFormat::parse(&v).map_err(CliError::usage)?;
            }
            "--out" => opts.out = Some(value(&mut i, arg)?),
            "--set" if allow_grid => {
                let v = value(&mut i, arg)?;
                let (field, values) = v
                    .split_once('=')
                    .ok_or_else(|| CliError::usage("--set expects <field>=<v1,v2,...>"))?;
                if !SCENARIO_FIELDS.contains(&field) {
                    return Err(CliError::usage(format!(
                        "unknown scenario field {field:?}; known fields: {}",
                        SCENARIO_FIELDS.join(", ")
                    )));
                }
                if opts.grid.iter().any(|(f, _)| f == field) {
                    // A second axis on the same field would overwrite the
                    // first and mislabel every sweep point.
                    return Err(CliError::usage(format!(
                        "--set {field} given twice; list all values in one axis"
                    )));
                }
                let values: Vec<String> = values.split(',').map(str::to_string).collect();
                if values.iter().any(String::is_empty) {
                    return Err(CliError::usage(format!(
                        "--set {field}= has an empty value"
                    )));
                }
                opts.grid.push((field.to_string(), values));
            }
            "--help" | "-h" => {
                return Err(CliError {
                    message: usage(),
                    code: 0,
                })
            }
            other => return Err(CliError::usage(format!("unknown argument: {other}"))),
        }
        i += 1;
    }
    // Cross-field validation (coding × payload_bits frame geometry) runs
    // once all flags are in, so flag order never matters. When a sweep axis
    // covers either field, the base value is about to be overwritten — each
    // expanded grid point is validated instead (in `expand_grid`).
    let swept = |field: &str| opts.grid.iter().any(|(f, _)| f == field);
    if !swept("coding") && !swept("payload_bits") {
        opts.scenario.validate().map_err(CliError::usage)?;
    }
    Ok(opts)
}

/// Case-insensitive Levenshtein edit distance, for the did-you-mean hint.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The registered experiment id closest to `id`, if any is close enough to
/// plausibly be a typo (edit distance at most half the longer name).
fn nearest_experiment_id(id: &str) -> Option<&'static str> {
    registry()
        .iter()
        .map(|e| (edit_distance(id, e.id()), e.id()))
        .min()
        .filter(|(d, best)| *d * 2 <= id.len().max(best.len()))
        .map(|(_, best)| best)
}

/// Looks up `id` in the registry with a usage-quality error, suggesting the
/// nearest registered id on a miss.
fn find_experiment(id: &str) -> Result<&'static dyn Experiment, CliError> {
    find(id).ok_or_else(|| {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let hint = nearest_experiment_id(id)
            .map(|best| format!(" did you mean {best:?}?"))
            .unwrap_or_default();
        CliError::usage(format!(
            "unknown experiment {id:?};{hint} available: {}",
            ids.join(", ")
        ))
    })
}

/// Warns (stderr) when a flag sets a field the experiment never reads.
/// Shared by `run`, `sweep`, the shims, and `perf_snapshot`.
pub fn warn_unused_fields(exp: &dyn Experiment, opts: &RunOptions) {
    let defaults = Scenario::default();
    let default_fields = defaults.fields();
    for ((name, value), (_, default)) in opts.scenario.fields().iter().zip(&default_fields) {
        let used = exp.scenario_fields().contains(name);
        if value != default && !used {
            eprintln!(
                "note: {} does not read scenario field '{name}' (set to {value}); result is unaffected",
                exp.id()
            );
        }
    }
    for (field, _) in &opts.grid {
        if !exp.scenario_fields().contains(&field.as_str()) {
            eprintln!(
                "note: {} does not read scenario field '{field}'; sweeping it repeats the same result",
                exp.id()
            );
        }
    }
}

/// Writes `content` to `--out` or stdout.
fn emit(content: &str, out: &Option<String>) -> Result<(), CliError> {
    match out {
        Some(path) => {
            std::fs::write(path, content)
                .map_err(|e| CliError::io(format!("failed to write {path}: {e}")))?;
            println!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// `netscatter list`.
fn list() -> Result<(), CliError> {
    println!("registered experiments ({}):", registry().len());
    for exp in registry() {
        let fields = exp.scenario_fields();
        let knobs = if fields.is_empty() {
            "none (pure function)".to_string()
        } else {
            fields.join(", ")
        };
        println!("  {:18} {}", exp.id(), exp.title());
        println!("  {:18}   scenario knobs: {knobs}", "");
    }
    Ok(())
}

/// `netscatter run <id>`.
fn run(id: &str, flag_args: &[String]) -> Result<(), CliError> {
    let exp = find_experiment(id)?;
    let opts = parse_flags(flag_args, false)?;
    warn_unused_fields(exp, &opts);
    let result = exp.run(&opts.scenario);
    emit(&render(exp, &result, opts.format), &opts.out)
}

/// Expands the cartesian grid of `--set` axes into concrete scenarios.
/// Returns `(labels, scenarios)` in row-major order (last axis fastest).
fn expand_grid(
    base: &Scenario,
    grid: &[(String, Vec<String>)],
) -> Result<Vec<(String, Scenario)>, CliError> {
    let mut combos: Vec<(String, Scenario)> = vec![(String::new(), base.clone())];
    for (field, values) in grid {
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for (label, scenario) in &combos {
            for value in values {
                let mut s = scenario.clone();
                s.set_field(field, value).map_err(CliError::usage)?;
                let label = if label.is_empty() {
                    format!("{field}={value}")
                } else {
                    format!("{label} {field}={value}")
                };
                next.push((label, s));
            }
        }
        combos = next;
    }
    // Intermediate combos may be transiently invalid (a coding axis applied
    // before the payload_bits axis); only the finished grid points must
    // satisfy the cross-field frame geometry.
    for (label, scenario) in &combos {
        scenario.validate().map_err(|e| {
            CliError::usage(if label.is_empty() {
                e.clone()
            } else {
                format!("sweep point [{label}]: {e}")
            })
        })?;
    }
    Ok(combos)
}

/// `netscatter sweep <id>`.
fn sweep(id: &str, flag_args: &[String]) -> Result<(), CliError> {
    let exp = find_experiment(id)?;
    let opts = parse_flags(flag_args, true)?;
    if opts.grid.is_empty() {
        return Err(CliError::usage(
            "sweep requires at least one --set <field>=<v1,v2,...> axis",
        ));
    }
    warn_unused_fields(exp, &opts);
    let combos = expand_grid(&opts.scenario, &opts.grid)?;
    let results: Vec<(String, ExperimentResult)> = combos
        .into_iter()
        .map(|(label, scenario)| (label, exp.run(&scenario)))
        .collect();
    let content = match opts.format {
        OutputFormat::Json => {
            let axes = Json::Array(
                opts.grid
                    .iter()
                    .map(|(field, values)| {
                        Json::object(vec![
                            ("field", Json::Str(field.clone())),
                            (
                                "values",
                                Json::Array(values.iter().map(|v| Json::Str(v.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            );
            Json::object(vec![
                ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
                ("experiment", Json::Str(exp.id().to_string())),
                ("sweep", axes),
                (
                    "results",
                    Json::Array(results.iter().map(|(_, r)| r.to_json()).collect()),
                ),
            ])
            .to_string_pretty()
        }
        OutputFormat::Csv => {
            let mut out = String::new();
            for (label, result) in &results {
                out.push_str(&format!("# sweep-point: {label}\n"));
                out.push_str(&result.to_csv());
            }
            out
        }
        OutputFormat::Text => {
            let mut out = String::new();
            for (label, result) in &results {
                out.push_str(&format!("== {label} ==\n"));
                out.push_str(&exp.render_text(result));
            }
            out
        }
    };
    emit(&content, &opts.out)
}

/// Entry point shared by the `netscatter` binary: dispatches the
/// subcommand and returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let outcome = match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => match args.get(1).map(String::as_str) {
            Some("--help") | Some("-h") => {
                println!("{}", usage());
                Ok(())
            }
            Some(id) => run(id, &args[2..]),
            None => Err(CliError::usage("run requires an experiment id")),
        },
        Some("sweep") => match args.get(1).map(String::as_str) {
            Some("--help") | Some("-h") => {
                println!("{}", usage());
                Ok(())
            }
            Some(id) => sweep(id, &args[2..]),
            None => Err(CliError::usage("sweep requires an experiment id")),
        },
        // The daemon and its stress harness keep their own flag sets; their
        // entry points already print usage and return exit codes directly.
        Some("serve") => return netscatter_daemon::cli::serve_main(&args[1..]),
        Some("stress") => return crate::stress::stress_main(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand {other:?}; expected list, run, sweep, serve or stress"
        ))),
    };
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            if e.code == 0 {
                println!("{}", e.message);
            } else {
                eprintln!("{}", e.message);
                eprintln!("run `netscatter --help` for usage");
            }
            e.code
        }
    }
}

/// The `--help` text for a standalone (non-subcommand) binary: the shared
/// flag set without the `netscatter` subcommands, plus an optional
/// binary-specific trailer.
pub fn standalone_usage(name: &str, summary: &str, extra_flags: &str) -> String {
    format!(
        "{name} — {summary}

USAGE:
  {name} [flags]

FLAGS:
  --quick | --paper           trial-count scale (default: paper)
  --seed <N>                  Monte-Carlo base seed (default: 42)
  --threads <N>               worker-thread bound (default: all cores; 0 = all cores)
  --fidelity <analytical|sample>
  --devices <N>  --placement <office|hall>  --channel <office|outdoor|pristine>
  --scheme <name>  --payload-bits <N>  --coding <none|hamming|rs|conv|fountain>
  --arrival-rate <R>  --stream-secs <S>  --chunk-samples <N>
  --format <text|json|csv>    output sink (default: text)
  --out <PATH>                write output to PATH instead of stdout{extra_flags}

Flags setting scenario fields this experiment does not read produce a
stderr note. The unified CLI (`netscatter list | run | sweep`) exposes the
same experiments plus parameter sweeps."
    )
}

/// Parses standalone-binary flags or exits: prints `help` and exits 0 on
/// `--help`, prints the error and exits with its code on failure. Shared
/// by [`legacy_main`] and `perf_snapshot`.
pub fn parse_flags_or_exit(args: &[String], help: &str) -> RunOptions {
    match parse_flags(args, false) {
        Ok(opts) => opts,
        Err(e) if e.code == 0 => {
            println!("{help}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}

/// Entry point for the per-figure shim binaries: parses the universal flag
/// set from `std::env::args` and prints the experiment's report — identical
/// behaviour and output to the pre-redesign binary, now with the shared
/// `--seed`/`--threads` flags instead of a hardcoded seed.
pub fn legacy_main(id: &str) {
    let exp = find(id).unwrap_or_else(|| panic!("shim for unregistered experiment {id}"));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let help = standalone_usage(id, &format!("shim for `netscatter run {id}`"), "");
    let opts = parse_flags_or_exit(&args, &help);
    warn_unused_fields(exp, &opts);
    let result = exp.run(&opts.scenario);
    let rendered = render(exp, &result, opts.format);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        // `println!` (not `print!`): the pre-redesign binaries printed the
        // report through `println!("{report}")`, so stdout ends with the
        // report's own newline plus one more — kept byte-identical.
        None => println!("{rendered}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn universal_flags_assemble_a_scenario() {
        let opts = parse_flags(
            &args(&[
                "--quick",
                "--seed",
                "7",
                "--threads",
                "3",
                "--fidelity",
                "sample",
                "--devices",
                "32",
                "--placement",
                "hall",
                "--channel",
                "outdoor",
                "--scheme",
                "lora-fixed",
                "--payload-bits",
                "16",
                "--format",
                "json",
            ]),
            false,
        )
        .expect("flags parse");
        assert_eq!(opts.scenario.scale, Scale::Quick);
        assert_eq!(opts.scenario.seed, 7);
        assert_eq!(opts.scenario.threads, 3);
        assert_eq!(opts.scenario.devices, 32);
        assert_eq!(opts.scenario.payload_bits, 16);
        assert_eq!(opts.format, OutputFormat::Json);
        assert!(opts.out.is_none());
    }

    #[test]
    fn gateway_flags_reach_the_scenario() {
        let opts = parse_flags(
            &args(&[
                "--arrival-rate",
                "2.5",
                "--stream-secs",
                "0.5",
                "--chunk-samples",
                "1024",
            ]),
            false,
        )
        .expect("flags parse");
        assert_eq!(opts.scenario.arrival_rate, 2.5);
        assert_eq!(opts.scenario.stream_secs, 0.5);
        assert_eq!(opts.scenario.chunk_samples, 1024);
        assert!(parse_flags(&args(&["--arrival-rate", "0"]), false).is_err());
    }

    #[test]
    fn channels_flag_reaches_the_scenario_and_sweeps_as_a_grid_axis() {
        let opts = parse_flags(&args(&["--channels", "4"]), false).expect("flags parse");
        assert_eq!(opts.scenario.channels, 4);
        // A zero-channel gateway is meaningless: rejected at parse time.
        assert!(parse_flags(&args(&["--channels", "0"]), false).is_err());
        // The sharding axis sweeps like any other scenario field.
        let opts = parse_flags(&args(&["--set", "channels=1,2,4"]), true).expect("grid parses");
        let combos = expand_grid(&opts.scenario, &opts.grid).expect("grid expands");
        assert_eq!(combos.len(), 3);
        assert_eq!(
            combos.iter().map(|(_, s)| s.channels).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(combos[1].0, "channels=2");
        assert!(expand_grid(&opts.scenario, &[("channels".into(), vec!["0".into()])]).is_err());
    }

    #[test]
    fn coding_flag_validates_frame_geometry_after_all_flags() {
        // A valid scheme × payload pairing parses in either flag order.
        for order in [
            ["--coding", "rs", "--payload-bits", "112"],
            ["--payload-bits", "112", "--coding", "rs"],
        ] {
            let opts = parse_flags(&args(&order), false).expect("valid geometry parses");
            assert_eq!(opts.scenario.coding, netscatter_coding::CodingScheme::Rs);
            assert_eq!(opts.scenario.payload_bits, 112);
        }
        // The default 40-bit payload fits no RS geometry: usage error that
        // names the constraint instead of a silent downstream failure.
        let err = parse_flags(&args(&["--coding", "rs"]), false).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("payload_bits"), "{}", err.message);
        // Unknown schemes are rejected at the flag.
        assert!(parse_flags(&args(&["--coding", "turbo"]), false).is_err());
        // coding none (the default) never constrains payload_bits.
        assert!(parse_flags(&args(&["--coding", "none"]), false).is_ok());
        // A sweep may fix the geometry through its axes: the base scenario
        // is transiently invalid, every expanded point is checked instead.
        let opts = parse_flags(
            &args(&["--coding", "hamming", "--set", "payload_bits=70,84"]),
            true,
        )
        .expect("geometry deferred to the grid");
        let combos = expand_grid(&opts.scenario, &opts.grid).expect("valid grid points");
        assert_eq!(combos.len(), 2);
        let err = expand_grid(
            &opts.scenario,
            &[("payload_bits".into(), vec!["70".into(), "41".into()])],
        )
        .unwrap_err();
        assert!(err.message.contains("payload_bits=41"), "{}", err.message);
        // And coding itself sweeps as a grid axis.
        let opts = parse_flags(
            &args(&["--payload-bits", "112", "--set", "coding=none,rs"]),
            true,
        )
        .expect("coding axis parses");
        let combos = expand_grid(&opts.scenario, &opts.grid).expect("axis expands");
        assert_eq!(
            combos
                .iter()
                .map(|(_, s)| s.coding.name())
                .collect::<Vec<_>>(),
            vec!["none", "rs"]
        );
    }

    #[test]
    fn enum_valued_flags_are_case_insensitive() {
        let opts = parse_flags(
            &args(&[
                "--fidelity",
                "Sample",
                "--scheme",
                "LoRa-Fixed",
                "--format",
                "JSON",
            ]),
            false,
        )
        .expect("mixed-case values parse");
        assert_eq!(
            opts.scenario.fidelity,
            crate::network::Fidelity::SampleLevel
        );
        assert_eq!(opts.scenario.scheme.name(), "lora-fixed");
        assert_eq!(opts.format, OutputFormat::Json);
        // Other flags stay strict: values that are not enum names at any
        // capitalization still fail.
        assert!(parse_flags(&args(&["--fidelity", "vibes"]), false).is_err());
    }

    #[test]
    fn unknown_experiment_ids_get_a_nearest_suggestion() {
        let miss = |id: &str| find_experiment(id).err().expect("unknown id errors");
        let err = miss("fig7");
        assert!(
            err.message.contains("did you mean \"fig17\"?")
                || err.message.contains("did you mean \"fig04\"?"),
            "{}",
            err.message
        );
        let err = miss("gatewy");
        assert!(
            err.message.contains("did you mean \"gateway\"?"),
            "{}",
            err.message
        );
        // Nothing plausible: no suggestion, just the listing.
        let err = miss("zzzzzzzzzzzz");
        assert!(!err.message.contains("did you mean"), "{}", err.message);
        assert!(err.message.contains("available:"));
    }

    #[test]
    fn edit_distance_is_a_metric_on_small_words() {
        assert_eq!(edit_distance("fig17", "fig17"), 0);
        assert_eq!(edit_distance("fig7", "fig17"), 1);
        assert_eq!(edit_distance("FIG17", "fig17"), 0, "case-insensitive");
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn unknown_flags_and_bad_values_are_usage_errors() {
        for bad in [
            vec!["--frobnicate"],
            vec!["--seed"],
            vec!["--seed", "many"],
            vec!["--fidelity", "vibes"],
            vec!["--format", "yaml"],
            vec!["--set", "devices=1,2"], // grid not allowed outside sweep
        ] {
            let err = parse_flags(&args(&bad), false).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
        }
    }

    #[test]
    fn grid_parsing_validates_fields_and_expands_cartesian_products() {
        let opts = parse_flags(
            &args(&["--set", "devices=16,64", "--set", "seed=1,2,3"]),
            true,
        )
        .expect("grid parses");
        let combos = expand_grid(&opts.scenario, &opts.grid).expect("grid expands");
        assert_eq!(combos.len(), 6);
        assert_eq!(combos[0].0, "devices=16 seed=1");
        assert_eq!(combos[5].0, "devices=64 seed=3");
        assert_eq!(combos[5].1.devices, 64);
        assert_eq!(combos[5].1.seed, 3);
        // Unknown fields, empty values, and duplicate axes are rejected at
        // parse time (a second axis on one field would mislabel the sweep).
        assert!(parse_flags(&args(&["--set", "volume=11"]), true).is_err());
        assert!(parse_flags(&args(&["--set", "devices=,"]), true).is_err());
        assert!(parse_flags(&args(&["--set", "devices"]), true).is_err());
        let dup = parse_flags(&args(&["--set", "seed=1,2", "--set", "seed=3"]), true).unwrap_err();
        assert!(dup.message.contains("twice"), "{}", dup.message);
    }

    #[test]
    fn main_dispatch_reports_usage_errors() {
        assert_eq!(main_with_args(&args(&["run"])), 2);
        assert_eq!(main_with_args(&args(&["run", "fig99"])), 2);
        assert_eq!(
            main_with_args(&args(&["sweep", "fig08"])),
            2,
            "sweep without --set"
        );
        assert_eq!(main_with_args(&args(&["bogus"])), 2);
    }

    #[test]
    fn help_is_reachable_from_every_dispatch_position() {
        assert_eq!(main_with_args(&args(&["--help"])), 0);
        assert_eq!(main_with_args(&args(&["run", "--help"])), 0);
        assert_eq!(main_with_args(&args(&["sweep", "-h"])), 0);
    }

    #[test]
    fn run_and_list_succeed_end_to_end() {
        // `list` and a cheap pure-function experiment through the real
        // dispatch path (stdout is shared with the test harness; the exit
        // code is the contract here).
        assert_eq!(main_with_args(&args(&["list"])), 0);
        assert_eq!(main_with_args(&args(&["run", "fig08"])), 0);
        assert_eq!(
            main_with_args(&args(&["run", "analysis_choir", "--format", "csv"])),
            0
        );
    }
}

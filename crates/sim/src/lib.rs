//! # netscatter-sim
//!
//! Network-scale simulation and the experiment drivers that regenerate every
//! table and figure of the NetScatter evaluation (see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! * [`deployment`] — places N backscatter devices and one AP on an office
//!   floorplan and derives every device's link budget (downlink RSSI at the
//!   envelope detector, backscatter uplink RSSI and SNR at the AP).
//! * [`network`] — end-to-end accounting of a NetScatter round versus the
//!   TDMA LoRa-backscatter baselines: network PHY rate, link-layer rate and
//!   latency as functions of the number of devices (Figs. 17–19), at either
//!   analytical or sample-level fidelity.
//! * [`fullround`] — the sample-level round simulator: per-device channel
//!   realizations (multipath, temporal fading, Doppler, hardware
//!   impairments), superposed waveform synthesis, and decode through the
//!   real concurrent receiver.
//! * [`ber`] — symbol-level Monte-Carlo helpers: near-far BER sweeps
//!   (Fig. 12) and the power-dynamic-range sweep (Fig. 15b).
//! * [`montecarlo`] — the deterministic sharded Monte-Carlo runner: fixed
//!   shard layout, one RNG stream per shard (`seed ⊕ shard`), worker threads
//!   via `std::thread::scope`; results are bit-identical for a given seed at
//!   any thread count.
//! * [`scenario`] — the typed [`Scenario`](scenario::Scenario) builder:
//!   population, placement, channel stack, fidelity, scheme, seed, threads
//!   and scale as one composable value, settable by name for sweeps.
//! * [`experiment`] — the [`Experiment`](experiment::Experiment) trait, the
//!   structured serde-serializable
//!   [`ExperimentResult`](experiment::ExperimentResult) (schema-versioned
//!   tables + scalars) and the text/JSON/CSV sinks.
//! * [`stream`] — the live stream synthesizer feeding the streaming
//!   gateway (`netscatter_gateway`): rounds from the sample-level simulator
//!   replayed as a continuous baseband stream with Poisson arrivals,
//!   recharge dead time between rounds, and thermal noise over the idle
//!   gaps.
//! * [`experiments`] — the registered drivers, one per table/figure of the
//!   paper plus the CI perf snapshot. The `netscatter` CLI binary and the
//!   per-figure shim binaries in `src/bin/` are thin wrappers around
//!   [`experiments::registry`].
//! * [`stress`] — the `netscatter stress` harness: N simultaneous
//!   synthesized TCP ingest streams driven at a `netscatterd` daemon
//!   (in-process or `--connect`), scored for bit identity against the
//!   batch pipeline, zero ring drops at real-time pace, and a complete
//!   metrics document.
//! * [`chaos`] — the `netscatter stress --chaos` fault matrix: a healthy
//!   fleet plus seed-deterministic misbehaving connections (truncated /
//!   garbage / oversized / slowloris headers, mid-stream stalls and
//!   disconnects, ragged cf32 write splits, kill-mid-round, an injected
//!   decode-worker panic), verified against the daemon's failure model —
//!   terminal records with machine-readable codes, bit-identical healthy
//!   decodes, admission rejects, no leaked serving threads.
//! * [`cli`] — the unified `netscatter` command-line interface
//!   (`list` / `run` / `sweep` / `serve` / `stress`) and the shared flag
//!   parsing the shim binaries reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod chaos;
pub mod cli;
pub mod deployment;
pub mod experiment;
pub mod experiments;
pub mod fullround;
pub mod montecarlo;
pub mod network;
pub mod scenario;
pub mod stream;
pub mod stress;
pub mod workloads;

pub use deployment::{Deployment, DeploymentConfig, DeviceLink};
pub use experiment::{Experiment, ExperimentResult, OutputFormat, Table};
pub use fullround::{ChannelModel, ChannelRealizer, FullRoundNetwork, RoundChannel, RoundTruth};
pub use montecarlo::MonteCarlo;
pub use network::{netscatter_metrics, netscatter_metrics_with, Fidelity, NetScatterVariant};
pub use scenario::{ChannelProfile, Placement, Scale, Scenario, ScenarioBuilder, Scheme};
pub use stream::{ArrivalConfig, RoundArrivalSource, StreamRoundTruth, StreamTruth};

//! # netscatter-sim
//!
//! Network-scale simulation and the experiment drivers that regenerate every
//! table and figure of the NetScatter evaluation (see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! * [`deployment`] — places N backscatter devices and one AP on an office
//!   floorplan and derives every device's link budget (downlink RSSI at the
//!   envelope detector, backscatter uplink RSSI and SNR at the AP).
//! * [`network`] — end-to-end accounting of a NetScatter round versus the
//!   TDMA LoRa-backscatter baselines: network PHY rate, link-layer rate and
//!   latency as functions of the number of devices (Figs. 17–19), at either
//!   analytical or sample-level fidelity.
//! * [`fullround`] — the sample-level round simulator: per-device channel
//!   realizations (multipath, temporal fading, Doppler, hardware
//!   impairments), superposed waveform synthesis, and decode through the
//!   real concurrent receiver.
//! * [`ber`] — symbol-level Monte-Carlo helpers: near-far BER sweeps
//!   (Fig. 12) and the power-dynamic-range sweep (Fig. 15b).
//! * [`montecarlo`] — the deterministic sharded Monte-Carlo runner: fixed
//!   shard layout, one RNG stream per shard (`seed ⊕ shard`), worker threads
//!   via `std::thread::scope`; results are bit-identical for a given seed at
//!   any thread count.
//! * [`experiments`] — one self-contained driver per table/figure, each
//!   returning both structured rows and a printable report. The binaries in
//!   `src/bin/` are thin wrappers around these drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod deployment;
pub mod experiments;
pub mod fullround;
pub mod montecarlo;
pub mod network;
pub mod workloads;

pub use deployment::{Deployment, DeploymentConfig, DeviceLink};
pub use fullround::{ChannelModel, ChannelRealizer, FullRoundNetwork, RoundChannel, RoundTruth};
pub use montecarlo::MonteCarlo;
pub use network::{netscatter_metrics, netscatter_metrics_with, Fidelity, NetScatterVariant};

//! Office-scale deployment generation.
//!
//! The paper deploys 256 devices across one office floor with more than ten
//! rooms (Fig. 1). The generator here reproduces that setting statistically:
//! a grid of rooms, an AP near the middle of the floor, devices placed
//! uniformly at random, and per-device link budgets derived from the indoor
//! path-loss model. Devices whose downlink RSSI falls below the envelope
//! detector's sensitivity are re-drawn (the paper's deployment only contains
//! devices that can hear the AP).

use netscatter_channel::geometry::{Floorplan, Position};
use netscatter_channel::pathloss::{IndoorPathLoss, LinkBudget};
use netscatter_dsp::units::thermal_noise_dbm;
use netscatter_phy::params::PhyProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentConfig {
    /// Number of backscatter devices.
    pub num_devices: usize,
    /// Rooms along the corridor (x direction).
    pub rooms_x: usize,
    /// Rooms across (y direction).
    pub rooms_y: usize,
    /// Room width in metres.
    pub room_w: f64,
    /// Room depth in metres.
    pub room_d: f64,
    /// PHY profile (for bandwidth-dependent noise floor and envelope
    /// sensitivity).
    pub profile: PhyProfile,
    /// Maximum number of placement retries per device before accepting the
    /// last draw even if it is out of downlink range.
    pub max_retries: usize,
    /// Accepted range of one-way path loss (dB). Placements outside it are
    /// re-drawn; this calibrates the deployment to the paper's, where all
    /// 256 physical tags were placed so the AP could serve them in one group
    /// (an uplink spread of roughly 35–40 dB, §4.3).
    pub one_way_path_loss_range_db: (f64, f64),
}

impl DeploymentConfig {
    /// A deployment comparable to the paper's: `num_devices` devices across a
    /// 6×2 grid of 5 m × 6 m offices (12 rooms).
    pub fn office(num_devices: usize) -> Self {
        Self {
            num_devices,
            rooms_x: 6,
            rooms_y: 2,
            room_w: 5.0,
            room_d: 6.0,
            profile: PhyProfile::default(),
            max_retries: 50,
            one_way_path_loss_range_db: (58.0, 76.0),
        }
    }

    /// An open-plan hall: one 30 m × 12 m space with no interior walls, so
    /// the link-budget spread comes from distance (and shadowing) alone.
    /// Pairs with [`crate::fullround::ChannelModel::outdoor`] for the
    /// beyond-the-paper workload combinations the scenario API exposes.
    pub fn hall(num_devices: usize) -> Self {
        Self {
            num_devices,
            rooms_x: 1,
            rooms_y: 1,
            room_w: 30.0,
            room_d: 12.0,
            profile: PhyProfile::default(),
            max_retries: 50,
            one_way_path_loss_range_db: (58.0, 76.0),
        }
    }
}

/// The link budget of one deployed device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceLink {
    /// Device position (metres).
    pub x: f64,
    /// Device position (metres).
    pub y: f64,
    /// Distance to the AP in metres.
    pub distance_m: f64,
    /// Interior walls between the device and the AP.
    pub walls: usize,
    /// Downlink RSSI at the envelope detector, in dBm.
    pub downlink_rssi_dbm: f64,
    /// Backscatter uplink RSSI at the AP (at full backscatter gain), in dBm.
    pub uplink_rssi_dbm: f64,
    /// Uplink SNR at the AP over the chirp bandwidth, in dB.
    pub uplink_snr_db: f64,
}

/// A generated deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Configuration used.
    pub config: DeploymentConfig,
    /// AP position.
    pub ap: Position,
    /// Per-device links.
    pub devices: Vec<DeviceLink>,
}

impl Deployment {
    /// Generates a deployment with the given RNG.
    pub fn generate<R: Rng + ?Sized>(config: DeploymentConfig, rng: &mut R) -> Self {
        let plan =
            Floorplan::office_grid(config.rooms_x, config.rooms_y, config.room_w, config.room_d);
        let (w, d) = plan.extent();
        let ap = Position::new(w / 2.0, d / 2.0);
        let pathloss = IndoorPathLoss::default();
        let budget = LinkBudget::default();
        let noise_floor = thermal_noise_dbm(
            config.profile.modulation.bandwidth_hz,
            config.profile.modulation.noise_figure_db,
        );
        let (pl_min, pl_max) = config.one_way_path_loss_range_db;
        let mut devices = Vec::with_capacity(config.num_devices);
        for _ in 0..config.num_devices {
            let mut chosen = None;
            for attempt in 0..config.max_retries.max(1) {
                let pos = Position::new(rng.gen_range(0.0..w), rng.gen_range(0.0..d));
                let distance = ap.distance_to(&pos);
                let walls = plan.walls_between(&ap, &pos);
                let mut pl = pathloss.sample_loss_db(rng, distance, walls);
                let accepted = pl >= pl_min && pl <= pl_max;
                if !accepted && attempt + 1 == config.max_retries.max(1) {
                    // Last attempt: clamp into the calibrated range rather
                    // than leaving an outlier in the deployment.
                    pl = pl.clamp(pl_min, pl_max);
                }
                let downlink = budget.downlink_rssi_dbm(pl);
                let uplink = budget.uplink_rssi_dbm(pl, 0.0);
                let link = DeviceLink {
                    x: pos.x,
                    y: pos.y,
                    distance_m: distance,
                    walls,
                    downlink_rssi_dbm: downlink,
                    uplink_rssi_dbm: uplink,
                    uplink_snr_db: uplink - noise_floor,
                };
                chosen = Some(link);
                if accepted && downlink >= config.profile.envelope_sensitivity_dbm {
                    break;
                }
            }
            devices.push(chosen.expect("max_retries >= 1"));
        }
        Self {
            config,
            ap,
            devices,
        }
    }

    /// Uplink RSSI values of all devices, in dBm.
    pub fn uplink_rssi_dbm(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.uplink_rssi_dbm).collect()
    }

    /// Uplink SNRs of all devices, in dB.
    pub fn uplink_snr_db(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.uplink_snr_db).collect()
    }

    /// The spread (max − min) of uplink RSSI across devices, in dB — the
    /// near-far dynamic range the receiver must absorb.
    pub fn dynamic_range_db(&self) -> f64 {
        let rssi = self.uplink_rssi_dbm();
        rssi.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - rssi.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deployment_has_requested_size_and_sane_links() {
        let mut rng = StdRng::seed_from_u64(1);
        let dep = Deployment::generate(DeploymentConfig::office(256), &mut rng);
        assert_eq!(dep.devices.len(), 256);
        for link in &dep.devices {
            assert!(link.distance_m >= 0.0 && link.distance_m < 40.0);
            assert!(link.downlink_rssi_dbm > -80.0 && link.downlink_rssi_dbm < 40.0);
            assert!(link.uplink_rssi_dbm < link.downlink_rssi_dbm);
        }
    }

    #[test]
    fn most_devices_hear_the_query_and_uplinks_are_below_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let dep = Deployment::generate(DeploymentConfig::office(256), &mut rng);
        let hear = dep
            .devices
            .iter()
            .filter(|d| d.downlink_rssi_dbm >= -49.0)
            .count();
        assert!(
            hear as f64 > 0.9 * 256.0,
            "only {hear} devices hear the query"
        );
        // The interesting regime: a sizeable fraction of uplinks below the noise floor.
        let below = dep.devices.iter().filter(|d| d.uplink_snr_db < 0.0).count();
        assert!(below > 40, "only {below} devices are below the noise floor");
    }

    #[test]
    fn dynamic_range_spans_tens_of_db() {
        let mut rng = StdRng::seed_from_u64(3);
        let dep = Deployment::generate(DeploymentConfig::office(128), &mut rng);
        let dr = dep.dynamic_range_db();
        assert!(dr > 20.0 && dr < 55.0, "dynamic range {dr} dB");
        assert_eq!(dep.uplink_rssi_dbm().len(), 128);
        assert_eq!(dep.uplink_snr_db().len(), 128);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = Deployment::generate(DeploymentConfig::office(16), &mut StdRng::seed_from_u64(7));
        let b = Deployment::generate(DeploymentConfig::office(16), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.devices, b.devices);
    }
}

//! Symbol-level Monte-Carlo experiments: near-far BER (Fig. 12) and the
//! power-dynamic-range sweep (Fig. 15b).

use crate::montecarlo::MonteCarlo;
use netscatter_channel::noise::{standard_normal, AwgnChannel};
use netscatter_dsp::chirp::ChirpParams;
use netscatter_dsp::units::db_to_linear;
use netscatter_dsp::Complex64;
use netscatter_phy::distributed::{ConcurrentDemodulator, DemodWorkspace, OnOffModulator};
use rand::Rng;

/// Parameters of the Fig. 12 near-far BER experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearFarConfig {
    /// Chirp parameters (paper: 500 kHz, SF 9).
    pub params: ChirpParams,
    /// Cyclic shift of the (weak) device under test (paper: bin 2).
    pub victim_bin: usize,
    /// Cyclic shift of the strong interferer (paper: bin 258).
    pub interferer_bin: usize,
    /// Power of the interferer relative to the victim, in dB.
    pub interferer_power_delta_db: f64,
    /// Standard deviation of the per-symbol Gaussian frequency mismatch, in
    /// hertz (paper: 300 Hz).
    pub freq_mismatch_sigma_hz: f64,
    /// Zero-padding factor of the receiver.
    pub zero_padding: usize,
}

impl NearFarConfig {
    /// The configuration used in §3.2.3 / Fig. 12.
    pub fn paper(interferer_power_delta_db: f64) -> Self {
        Self {
            params: ChirpParams::new(500e3, 9).expect("valid paper parameters"),
            victim_bin: 2,
            interferer_bin: 258,
            interferer_power_delta_db,
            freq_mismatch_sigma_hz: 300.0,
            zero_padding: 8,
        }
    }
}

/// The fixed experiment state shared by every trial of one near-far sweep
/// point: modulators, demodulator, channel and decision threshold are built
/// once, and the per-trial scratch buffers live in [`NearFarScratch`].
struct NearFarExperiment {
    victim: OnOffModulator,
    interferer: OnOffModulator,
    demod: ConcurrentDemodulator,
    channel: AwgnChannel,
    interferer_amplitude: f64,
    freq_mismatch_sigma_hz: f64,
    victim_bin: usize,
    threshold: f64,
}

/// Per-thread reusable buffers: the superposed receive symbol and the
/// demodulator workspace.
#[derive(Default)]
struct NearFarScratch {
    rx: Vec<Complex64>,
    ws: DemodWorkspace,
}

impl NearFarExperiment {
    fn new(config: &NearFarConfig, victim_snr_db: f64) -> Self {
        let params = config.params;
        let n = params.num_bins() as f64;
        Self {
            victim: OnOffModulator::new(params, config.victim_bin),
            interferer: OnOffModulator::new(params, config.interferer_bin),
            demod: ConcurrentDemodulator::new(params, config.zero_padding)
                .expect("paper zero-padding is a power of two"),
            // Victim amplitude 1; noise power from the requested SNR.
            channel: AwgnChannel::with_noise_power(1.0 / db_to_linear(victim_snr_db)),
            interferer_amplitude: db_to_linear(config.interferer_power_delta_db).sqrt(),
            freq_mismatch_sigma_hz: config.freq_mismatch_sigma_hz,
            victim_bin: config.victim_bin,
            // Decision threshold: half the victim's ideal peak power, as
            // calibrated from the preamble in the full receiver.
            threshold: 0.5 * n * n,
        }
    }

    /// Runs one ON-OFF symbol trial; returns `true` on a bit error. The
    /// victim and interferer superpose in place into `scratch.rx` and the
    /// whole decode runs in `scratch.ws` — no per-trial allocation.
    fn trial<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut NearFarScratch) -> bool {
        let victim_bit = rng.gen_bool(0.5);
        let interferer_bit = rng.gen_bool(0.5);
        let victim_cfo = self.freq_mismatch_sigma_hz * standard_normal(rng);
        let interferer_cfo = self.freq_mismatch_sigma_hz * standard_normal(rng);
        self.victim
            .symbol_into(victim_bit, 0.0, victim_cfo, 1.0, &mut scratch.rx);
        self.interferer.add_symbol(
            interferer_bit,
            0.0,
            interferer_cfo,
            self.interferer_amplitude,
            &mut scratch.rx,
        );
        self.channel.apply(rng, &mut scratch.rx);
        let spectrum = self
            .demod
            .padded_spectrum_into(&scratch.rx, &mut scratch.ws)
            .expect("correct symbol length");
        let power = self.demod.device_power(spectrum, self.victim_bin, 0.5);
        (power > self.threshold) != victim_bit
    }
}

/// Measures the victim device's BER at the given per-symbol SNR with a
/// concurrent interferer, over `symbols` random ON-OFF symbols.
pub fn near_far_ber<R: Rng + ?Sized>(
    rng: &mut R,
    config: &NearFarConfig,
    victim_snr_db: f64,
    symbols: usize,
) -> f64 {
    let experiment = NearFarExperiment::new(config, victim_snr_db);
    let mut scratch = NearFarScratch::default();
    let errors = (0..symbols)
        .filter(|_| experiment.trial(rng, &mut scratch))
        .count();
    errors as f64 / symbols.max(1) as f64
}

/// Sharded, multi-threaded variant of [`near_far_ber`]: the `symbols` trials
/// are distributed across the runner's shards, each with its own RNG stream
/// and scratch buffers, so the estimate is bit-identical for a given runner
/// seed at any thread count.
pub fn near_far_ber_sharded(
    mc: &MonteCarlo,
    config: &NearFarConfig,
    victim_snr_db: f64,
    symbols: usize,
) -> f64 {
    let experiment = NearFarExperiment::new(config, victim_snr_db);
    let errors = mc.count(symbols, |rng, trials| {
        let mut scratch = NearFarScratch::default();
        trials
            .filter(|_| experiment.trial(rng, &mut scratch))
            .count()
    });
    errors as f64 / symbols.max(1) as f64
}

/// For a given separation (in chirp bins) between a strong and a weak device,
/// finds the largest power difference (dB) at which the weak device's BER
/// stays at or below `target_ber`. This is the Fig. 15(b) sweep.
pub fn max_tolerable_power_difference_db<R: Rng + ?Sized>(
    rng: &mut R,
    params: ChirpParams,
    bin_separation: usize,
    target_ber: f64,
    symbols_per_point: usize,
    max_delta_db: f64,
) -> f64 {
    sweep_power_difference(params, bin_separation, target_ber, max_delta_db, |config| {
        near_far_ber(rng, config, 15.0, symbols_per_point)
    })
}

/// Sharded, multi-threaded variant of [`max_tolerable_power_difference_db`]:
/// each delta step of the sweep runs its Monte-Carlo point on a runner
/// derived from `mc` (decorrelated seed per step), so the whole sweep is
/// bit-identical for a given runner seed at any thread count.
pub fn max_tolerable_power_difference_db_sharded(
    mc: &MonteCarlo,
    params: ChirpParams,
    bin_separation: usize,
    target_ber: f64,
    symbols_per_point: usize,
    max_delta_db: f64,
) -> f64 {
    let mut step = 0u64;
    sweep_power_difference(params, bin_separation, target_ber, max_delta_db, |config| {
        step += 1;
        near_far_ber_sharded(&mc.derive(step), config, 15.0, symbols_per_point)
    })
}

/// Shared sweep skeleton: walks the interferer power advantage upwards in
/// 5 dB steps until the measured BER exceeds `target_ber`.
fn sweep_power_difference(
    params: ChirpParams,
    bin_separation: usize,
    target_ber: f64,
    max_delta_db: f64,
    mut measure: impl FnMut(&NearFarConfig) -> f64,
) -> f64 {
    let mut tolerated = 0.0f64;
    let mut delta = 0.0f64;
    while delta <= max_delta_db {
        let config = NearFarConfig {
            params,
            victim_bin: 2,
            interferer_bin: (2 + bin_separation) % params.num_bins(),
            interferer_power_delta_db: delta,
            freq_mismatch_sigma_hz: 300.0,
            zero_padding: 8,
        };
        // High victim SNR so the limit is interference, not noise: at +5 dB
        // the residual AWGN floor (~0.3% BER) is visible in short sweeps,
        // which would misattribute noise errors to the interferer.
        let ber = measure(&config);
        if ber <= target_ber {
            tolerated = delta;
        } else {
            break;
        }
        delta += 5.0;
    }
    tolerated
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ber_is_low_without_interferer_power_advantage() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = NearFarConfig::paper(0.0);
        let ber = near_far_ber(&mut rng, &cfg, -10.0, 300);
        assert!(
            ber < 0.02,
            "BER {ber} too high at -10 dB SNR with an equal-power interferer"
        );
    }

    #[test]
    fn ber_degrades_at_very_low_snr() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = NearFarConfig::paper(0.0);
        let ber = near_far_ber(&mut rng, &cfg, -25.0, 300);
        assert!(ber > 0.05, "BER {ber} should degrade at -25 dB SNR");
    }

    #[test]
    fn distant_bins_tolerate_35db_imbalance() {
        // Fig. 12 / §4.3: with power-aware assignment (victim at bin 2,
        // interferer at bin 258) the victim survives a 35 dB stronger
        // interferer.
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = NearFarConfig::paper(35.0);
        let ber = near_far_ber(&mut rng, &cfg, -10.0, 300);
        assert!(
            ber < 0.05,
            "BER {ber} too high with a 35 dB stronger interferer"
        );
    }

    #[test]
    fn adjacent_bins_do_not_tolerate_large_imbalance() {
        // With the interferer only 2 bins away, a 30 dB power difference
        // buries the victim under the interferer's side lobes.
        let mut rng = StdRng::seed_from_u64(24);
        let cfg = NearFarConfig {
            interferer_bin: 4,
            interferer_power_delta_db: 30.0,
            ..NearFarConfig::paper(30.0)
        };
        let ber = near_far_ber(&mut rng, &cfg, -10.0, 200);
        assert!(
            ber > 0.05,
            "BER {ber} unexpectedly low for an adjacent strong interferer"
        );
    }

    #[test]
    fn tolerable_power_difference_grows_with_bin_separation() {
        let mut rng = StdRng::seed_from_u64(25);
        let params = ChirpParams::new(500e3, 9).unwrap();
        // The 300 Hz CFO tail gives an interference-independent BER floor of
        // ~0.3%, and with 60 symbols per point a single error already reads
        // as 1.7% — so the target must sit above both, or the sweep aborts
        // on a stray CFO outlier rather than on actual interference.
        let near = max_tolerable_power_difference_db(&mut rng, params, 2, 0.05, 60, 40.0);
        let far = max_tolerable_power_difference_db(&mut rng, params, 256, 0.05, 60, 40.0);
        assert!(
            far >= near,
            "far separation ({far} dB) should tolerate at least as much as near ({near} dB)"
        );
        assert!(
            far >= 30.0,
            "mid-spectrum separation should tolerate ≥30 dB, got {far}"
        );
    }
}

//! The typed experiment API: trait, structured results, and output sinks.
//!
//! Every table/figure/analysis driver of the evaluation implements
//! [`Experiment`]: a named, registered unit that maps a
//! [`Scenario`](crate::scenario::Scenario) to a structured
//! [`ExperimentResult`]. Results are plain data — named tables of numeric
//! rows plus named scalars, stamped with the scenario, a `schema_version`
//! and the source revision — so downstream tooling (sweeps, regression
//! gates, plotting) composes them programmatically instead of scraping
//! text. The pre-redesign text reports are reproduced byte-for-byte by each
//! experiment's [`Experiment::render_text`], making the old format just one
//! sink among [`OutputFormat::Json`] and [`OutputFormat::Csv`].

use crate::scenario::Scenario;
use netscatter::json::Json;
use serde::{Deserialize, Serialize};

/// Version stamp carried by every serialized [`ExperimentResult`]. Bump on
/// any breaking change to the JSON/CSV layout.
pub const SCHEMA_VERSION: u64 = 1;

/// One named column of a [`Table`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Machine-friendly column name (snake_case).
    pub name: String,
    /// Unit string ("dB", "bps", "" for dimensionless).
    pub unit: String,
}

/// A named table of numeric rows — one axis/series block of a result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within the result.
    pub name: String,
    /// Column headers; every row has exactly this many values.
    pub columns: Vec<Column>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table from `(name, unit)` column pairs.
    pub fn new(name: &str, columns: &[(&str, &str)]) -> Self {
        Self {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(name, unit)| Column {
                    name: name.to_string(),
                    unit: unit.to_string(),
                })
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.name
        );
        self.rows.push(row);
    }

    /// The values of the named column, in row order.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c.name == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }
}

/// The structured outcome of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Registered experiment id (e.g. `"fig17"`).
    pub experiment: String,
    /// One-line human title.
    pub title: String,
    /// Source revision (`git describe`) the result was produced from.
    pub source: String,
    /// The scenario the experiment ran under.
    pub scenario: Scenario,
    /// Named data tables.
    pub tables: Vec<Table>,
    /// Named scalar metrics (headline gains, quantiles, timings).
    pub scalars: Vec<(String, f64)>,
}

/// Encodes one result value. Finite numbers are JSON numbers; non-finite
/// values (a gain with a zero denominator at a degenerate sweep point)
/// become the strings `"NaN"` / `"inf"` / `"-inf"` so the document stays
/// valid JSON and the value survives the round trip instead of collapsing
/// to `null`.
fn num_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("NaN".to_string())
    } else if v > 0.0 {
        Json::Str("inf".to_string())
    } else {
        Json::Str("-inf".to_string())
    }
}

/// Decodes a value written by [`num_to_json`].
fn json_to_num(v: &Json) -> Result<f64, String> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Str(s) if s == "NaN" => Ok(f64::NAN),
        Json::Str(s) if s == "inf" => Ok(f64::INFINITY),
        Json::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        _ => Err("expected a number".to_string()),
    }
}

impl ExperimentResult {
    /// A result shell for `experiment` under `scenario`, stamped with the
    /// schema version and source revision; tables and scalars start empty.
    pub fn new(experiment: &str, title: &str, scenario: &Scenario) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.to_string(),
            title: title.to_string(),
            source: git_describe(),
            scenario: scenario.clone(),
            tables: Vec::new(),
            scalars: Vec::new(),
        }
    }

    /// The named table, if present.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// The named scalar, if present.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Serializes to the JSON document model.
    pub fn to_json(&self) -> Json {
        let scenario = Json::Object(
            self.scenario
                .fields()
                .into_iter()
                .map(|(name, value)| {
                    // Numeric fields serialize as numbers when the value
                    // survives the f64 round-trip exactly; everything else
                    // (enum names, seeds above 2^53) stays a string so the
                    // recorded scenario is never lossy.
                    let v = match value.parse::<u64>() {
                        Ok(n) if (n as f64) as u64 == n => Json::Num(n as f64),
                        _ => Json::Str(value),
                    };
                    (name.to_string(), v)
                })
                .collect(),
        );
        let tables = Json::Array(
            self.tables
                .iter()
                .map(|t| {
                    Json::object(vec![
                        ("name", Json::Str(t.name.clone())),
                        (
                            "columns",
                            Json::Array(
                                t.columns
                                    .iter()
                                    .map(|c| {
                                        Json::object(vec![
                                            ("name", Json::Str(c.name.clone())),
                                            ("unit", Json::Str(c.unit.clone())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "rows",
                            Json::Array(
                                t.rows
                                    .iter()
                                    .map(|r| {
                                        Json::Array(r.iter().map(|v| num_to_json(*v)).collect())
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let scalars = Json::Object(
            self.scalars
                .iter()
                .map(|(name, value)| (name.clone(), num_to_json(*value)))
                .collect(),
        );
        Json::object(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("experiment", Json::Str(self.experiment.clone())),
            ("title", Json::Str(self.title.clone())),
            ("source", Json::Str(self.source.clone())),
            ("scenario", scenario),
            ("tables", tables),
            ("scalars", scalars),
        ])
    }

    /// Deserializes from the JSON document model, validating the layout.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let str_field = |name: &str| -> Result<String, String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {name:?}"))
        };
        let schema_version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let scenario_doc = doc.get("scenario").ok_or("missing scenario")?;
        let Json::Object(scenario_fields) = scenario_doc else {
            return Err("scenario is not an object".into());
        };
        let mut scenario = Scenario::default();
        for (name, value) in scenario_fields {
            let text = match value {
                Json::Str(s) => s.clone(),
                Json::Num(n) => format!("{}", *n as u64),
                _ => return Err(format!("scenario field {name:?} has an invalid type")),
            };
            scenario.set_field(name, &text)?;
        }
        let mut tables = Vec::new();
        for t in doc
            .get("tables")
            .and_then(Json::as_array)
            .ok_or("missing tables array")?
        {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or("table without a name")?;
            let mut columns = Vec::new();
            for c in t
                .get("columns")
                .and_then(Json::as_array)
                .ok_or("table without columns")?
            {
                columns.push(Column {
                    name: c
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("column without a name")?
                        .to_string(),
                    unit: c
                        .get("unit")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
            let mut rows = Vec::new();
            for row in t
                .get("rows")
                .and_then(Json::as_array)
                .ok_or("table without rows")?
            {
                let row = row
                    .as_array()
                    .ok_or("row is not an array")?
                    .iter()
                    .map(|v| json_to_num(v).map_err(|_| "non-numeric cell"))
                    .collect::<Result<Vec<f64>, _>>()?;
                if row.len() != columns.len() {
                    return Err(format!("row width mismatch in table {name:?}"));
                }
                rows.push(row);
            }
            tables.push(Table {
                name: name.to_string(),
                columns,
                rows,
            });
        }
        let mut scalars = Vec::new();
        if let Some(Json::Object(fields)) = doc.get("scalars") {
            for (name, value) in fields {
                scalars.push((
                    name.clone(),
                    json_to_num(value).map_err(|_| format!("scalar {name:?} is not a number"))?,
                ));
            }
        }
        Ok(Self {
            schema_version,
            experiment: str_field("experiment")?,
            title: str_field("title")?,
            source: str_field("source")?,
            scenario,
            tables,
            scalars,
        })
    }

    /// Renders the CSV sink: one section per table (comment header + column
    /// row + data rows), scalars as a final `name,value` section.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# experiment: {} (schema_version {})",
            self.experiment, self.schema_version
        );
        let scenario: Vec<String> = self
            .scenario
            .fields()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "# scenario: {}", scenario.join(" "));
        for table in &self.tables {
            let _ = writeln!(out, "# table: {}", table.name);
            let header: Vec<String> = table
                .columns
                .iter()
                .map(|c| {
                    if c.unit.is_empty() {
                        c.name.clone()
                    } else {
                        format!("{}[{}]", c.name, c.unit)
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", header.join(","));
            for row in &table.rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "{}", cells.join(","));
            }
        }
        if !self.scalars.is_empty() {
            let _ = writeln!(out, "# table: scalars");
            let _ = writeln!(out, "name,value");
            for (name, value) in &self.scalars {
                let _ = writeln!(out, "{name},{value}");
            }
        }
        out
    }
}

/// One registered driver of the evaluation.
pub trait Experiment: Sync {
    /// Stable registry id (`"fig17"`, `"table1"`, `"perf"`).
    fn id(&self) -> &'static str;

    /// One-line description shown by `netscatter list`.
    fn title(&self) -> &'static str;

    /// The [`Scenario`] fields this experiment is actually parameterized
    /// by. Sweeping or setting a field outside this list runs fine but
    /// cannot change the result; the CLI uses the list to warn about it.
    fn scenario_fields(&self) -> &'static [&'static str];

    /// Runs the experiment under `scenario`.
    fn run(&self, scenario: &Scenario) -> ExperimentResult;

    /// Renders a result of this experiment as the pre-redesign text report
    /// (byte-identical to the output of the former per-figure binary at the
    /// same scenario — pinned by the golden parity tests).
    fn render_text(&self, result: &ExperimentResult) -> String;
}

/// How a result leaves the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// The pre-redesign per-figure report.
    Text,
    /// Pretty-printed JSON (`ExperimentResult::to_json`).
    Json,
    /// Comma-separated sections (`ExperimentResult::to_csv`).
    Csv,
}

impl OutputFormat {
    /// Parses a CLI `--format` value (case-insensitive).
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.to_lowercase().as_str() {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            _ => Err(format!(
                "--format expects 'text', 'json' or 'csv', got {value:?}"
            )),
        }
    }
}

/// Renders `result` through the chosen sink. Text needs the experiment for
/// its report format; JSON and CSV are experiment-independent.
pub fn render(
    experiment: &dyn Experiment,
    result: &ExperimentResult,
    format: OutputFormat,
) -> String {
    match format {
        OutputFormat::Text => experiment.render_text(result),
        OutputFormat::Json => result.to_json().to_string_pretty(),
        OutputFormat::Csv => result.to_csv(),
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout. Computed once per process.
pub fn git_describe() -> String {
    use std::sync::OnceLock;
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".to_string())
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;

    fn sample_result() -> ExperimentResult {
        let scenario = Scenario::builder().scale(Scale::Quick).seed(9).build();
        let mut result = ExperimentResult::new("demo", "A demo result", &scenario);
        let mut t = Table::new("sweep", &[("n", ""), ("rate", "bps")]);
        t.push_row(vec![1.0, 0.125]);
        t.push_row(vec![64.0, 1e6 / 3.0]);
        result.tables.push(t);
        result.scalars.push(("gain".into(), 26.2));
        result
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let original = sample_result();
        let text = original.to_json().to_string_pretty();
        let parsed = ExperimentResult::from_json(&Json::parse(&text).expect("valid JSON"))
            .expect("layout round-trips");
        assert_eq!(parsed, original);
        // JSON → struct → JSON is byte-stable.
        assert_eq!(parsed.to_json().to_string_pretty(), text);
    }

    #[test]
    fn non_finite_values_round_trip_as_tagged_strings() {
        // A degenerate sweep point can divide by a zero baseline; the JSON
        // must stay valid (no bare NaN) and the value must survive.
        let mut result = sample_result();
        result.scalars.push(("inf_gain".into(), f64::INFINITY));
        result.scalars.push(("neg".into(), f64::NEG_INFINITY));
        result.tables[0].push_row(vec![2.0, f64::INFINITY]);
        let text = result.to_json().to_string_pretty();
        assert!(text.contains("\"inf\""), "tagged string, not null:\n{text}");
        assert!(!text.contains("null"), "no nulls emitted:\n{text}");
        let parsed = ExperimentResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.scalar("inf_gain"), Some(f64::INFINITY));
        assert_eq!(parsed.scalar("neg"), Some(f64::NEG_INFINITY));
        assert_eq!(parsed.tables[0].rows[2][1], f64::INFINITY);
        // NaN serializes as "NaN" and parses back to a NaN.
        let mut result = sample_result();
        result.scalars.push(("nan".into(), f64::NAN));
        let text = result.to_json().to_string_pretty();
        let parsed = ExperimentResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(parsed.scalar("nan").unwrap().is_nan());
    }

    #[test]
    fn seeds_above_2_pow_53_round_trip_exactly() {
        // f64 cannot carry every u64; such seeds must serialize as strings
        // so the recorded scenario never misstates the seed that ran.
        let big = (1u64 << 53) + 3;
        let mut result = sample_result();
        result.scenario.seed = big;
        let text = result.to_json().to_string_pretty();
        assert!(
            text.contains(&format!("\"{big}\"")),
            "seed stored losslessly"
        );
        let parsed =
            ExperimentResult::from_json(&Json::parse(&text).unwrap()).expect("round-trips");
        assert_eq!(parsed.scenario.seed, big);
    }

    #[test]
    fn from_json_rejects_schema_mismatches() {
        let mut doc = sample_result().to_json();
        if let Json::Object(fields) = &mut doc {
            fields[0].1 = Json::Num(99.0);
        }
        let err = ExperimentResult::from_json(&doc).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn table_accessors_find_columns_and_scalars() {
        let result = sample_result();
        let t = result.table("sweep").expect("table exists");
        assert_eq!(t.column("n"), Some(vec![1.0, 64.0]));
        assert_eq!(t.column("absent"), None);
        assert_eq!(result.scalar("gain"), Some(26.2));
        assert_eq!(result.scalar("absent"), None);
        assert!(result.table("absent").is_none());
    }

    #[test]
    fn csv_sink_sections_are_parseable() {
        let csv = sample_result().to_csv();
        assert!(csv.contains("# table: sweep"));
        assert!(csv.contains("n,rate[bps]"));
        assert!(csv.contains("# table: scalars"));
        assert!(csv.contains("gain,26.2"));
        // Data rows round-trip through shortest-float formatting.
        let row: Vec<f64> = csv
            .lines()
            .find(|l| l.starts_with("64,"))
            .unwrap()
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        assert_eq!(row, vec![64.0, 1e6 / 3.0]);
    }

    #[test]
    fn output_format_parsing_rejects_unknown_values() {
        assert_eq!(OutputFormat::parse("json"), Ok(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("text"), Ok(OutputFormat::Text));
        assert_eq!(OutputFormat::parse("csv"), Ok(OutputFormat::Csv));
        assert!(OutputFormat::parse("yaml").is_err());
    }
}

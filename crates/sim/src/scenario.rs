//! Typed, composable experiment scenarios.
//!
//! A [`Scenario`] declaratively bundles everything an experiment run depends
//! on: the population (device count and placement), the channel stack
//! (multipath profile, fading, Doppler, CFO/jitter, noise — selected through
//! a named [`ChannelProfile`]), the delivery [`Fidelity`], the [`Scheme`]
//! under test, the Monte-Carlo seed, the worker-thread bound, the run
//! [`Scale`] and the per-device payload size. The experiment drivers in
//! [`crate::experiments`] consume whichever subset of these fields they are
//! parameterized by (declared per experiment via
//! [`crate::experiment::Experiment::scenario_fields`]); the `netscatter` CLI
//! builds scenarios from flags, and `netscatter sweep` iterates grids over
//! any field by name through [`Scenario::set_field`].
//!
//! Scenarios are plain data: two scenarios that compare equal produce
//! bit-identical experiment results at any thread count (the Monte-Carlo
//! layer guarantees thread-count independence separately).

use crate::deployment::{Deployment, DeploymentConfig};
use crate::fullround::ChannelModel;
use crate::montecarlo::{available_threads, MonteCarlo};
use crate::network::{
    lora_backscatter_metrics_with, netscatter_metrics_with, Fidelity, NetScatterVariant,
    SchemeMetrics,
};
use netscatter_baselines::tdma::LoraScheme;
use netscatter_coding::frame::FrameCodec;
pub use netscatter_coding::CodingScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Scale of an experiment run: `Quick` for benches/tests/CI, `Full` for the
/// figure-quality runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Reduced trial counts for CI and Criterion.
    Quick,
    /// Paper-scale trial counts.
    Full,
}

impl Scale {
    /// Selects the trial count for this scale.
    pub fn pick(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// The stable CLI name ("quick" / "paper").
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "paper",
        }
    }
}

/// Where the population is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// The paper's 6×2 grid of 5 m × 6 m offices (12 rooms).
    Office,
    /// An open-plan 30 m × 12 m hall with no interior walls.
    Hall,
}

impl Placement {
    /// The stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Office => "office",
            Placement::Hall => "hall",
        }
    }
}

/// Named channel stacks (multipath + fading + Doppler + hardware
/// impairments + noise) for the sample-level simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelProfile {
    /// The busy-office model of the paper's evaluation
    /// ([`ChannelModel::office`]).
    Office,
    /// Outdoor deployment: 1 µs delay spread, up to 5 m/s mobility
    /// ([`ChannelModel::outdoor`]).
    Outdoor,
    /// High-SNR, impairment-free diagnostics channel
    /// ([`ChannelModel::pristine`]).
    Pristine,
}

impl ChannelProfile {
    /// The stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ChannelProfile::Office => "office",
            ChannelProfile::Outdoor => "outdoor",
            ChannelProfile::Pristine => "pristine",
        }
    }

    /// The impairment stack this profile selects.
    pub fn model(&self) -> ChannelModel {
        match self {
            ChannelProfile::Office => ChannelModel::office(),
            ChannelProfile::Outdoor => ChannelModel::outdoor(),
            ChannelProfile::Pristine => ChannelModel::pristine(),
        }
    }
}

/// The scheme a single-scheme evaluation measures. (The figure experiments
/// that plot several schemes side by side run all of them regardless.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// A NetScatter variant (Config 1 / Config 2 / Ideal).
    NetScatter(NetScatterVariant),
    /// A sequential TDMA LoRa-backscatter baseline.
    TdmaLora(LoraScheme),
}

impl Scheme {
    /// The stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::NetScatter(NetScatterVariant::Config1) => "netscatter",
            Scheme::NetScatter(NetScatterVariant::Config2) => "netscatter-cfg2",
            Scheme::NetScatter(NetScatterVariant::Ideal) => "netscatter-ideal",
            Scheme::TdmaLora(s) => s.label(),
        }
    }

    /// Every scheme the scenario API can evaluate, in CLI-name order.
    pub const ALL: [Scheme; 5] = [
        Scheme::NetScatter(NetScatterVariant::Config1),
        Scheme::NetScatter(NetScatterVariant::Config2),
        Scheme::NetScatter(NetScatterVariant::Ideal),
        Scheme::TdmaLora(LoraScheme {
            adaptation: netscatter_baselines::rate_adaptation::RateAdaptation::Fixed,
            query_bits: 28,
        }),
        Scheme::TdmaLora(LoraScheme {
            adaptation: netscatter_baselines::rate_adaptation::RateAdaptation::Ideal,
            query_bits: 28,
        }),
    ];
}

/// A fully specified experiment input. See the module docs for the role of
/// each field; construct via [`Scenario::builder`] or [`Scenario::default`]
/// (the paper-default office evaluation at seed 42).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Population size (the figure sweeps treat this as the maximum network
    /// size of their x-axis).
    pub devices: usize,
    /// Deployment geometry.
    pub placement: Placement,
    /// Channel impairment stack for sample-level fidelity.
    pub channel: ChannelProfile,
    /// Delivery model for the network experiments.
    pub fidelity: Fidelity,
    /// Scheme for single-scheme evaluations ([`Scenario::scheme_metrics`]).
    pub scheme: Scheme,
    /// Trial-count scale.
    pub scale: Scale,
    /// Monte-Carlo base seed.
    pub seed: u64,
    /// Worker-thread bound (results are bit-identical at any value; 0
    /// resolves to the available parallelism).
    pub threads: usize,
    /// Payload bits each device delivers per round.
    pub payload_bits: usize,
    /// Round arrival rate (rounds/s) of the streaming-gateway experiment's
    /// Poisson arrival process.
    pub arrival_rate: f64,
    /// Stream duration in seconds for the streaming-gateway experiment.
    pub stream_secs: f64,
    /// Producer chunk size in samples for the streaming gateway.
    pub chunk_samples: usize,
    /// Independent 500 kHz gateway channels served by the sharded
    /// multi-channel engine (§5: more channels, more concurrent devices).
    pub channels: usize,
    /// Link-layer coding scheme: `None` keeps the seed's raw-bit payloads;
    /// any other scheme wraps each device's round in one CRC-16-checked
    /// frame protected by that inner FEC. The scheme × `payload_bits`
    /// frame geometry is cross-validated by [`Scenario::validate`].
    pub coding: CodingScheme,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            devices: 256,
            placement: Placement::Office,
            channel: ChannelProfile::Office,
            fidelity: Fidelity::Analytical,
            scheme: Scheme::NetScatter(NetScatterVariant::Config1),
            scale: Scale::Full,
            seed: 42,
            threads: available_threads(),
            payload_bits: 40,
            arrival_rate: 10.0,
            stream_secs: 1.0,
            chunk_samples: 4096,
            channels: 1,
            coding: CodingScheme::None,
        }
    }
}

/// Valid domain of the gateway stream parameters, enforced identically by
/// [`Scenario::set_field`] and the builder: durations in
/// `[1 ms, 1 hour]`, arrival rates in `[1e-3, 1e6]` rounds/s.
const MIN_STREAM_PARAM: f64 = 1e-3;
/// Upper bound of [`Scenario::stream_secs`].
const MAX_STREAM_SECS: f64 = 3600.0;
/// Upper bound of [`Scenario::arrival_rate`].
const MAX_ARRIVAL_RATE_HZ: f64 = 1e6;

/// The names of every settable [`Scenario`] field, in canonical order —
/// the vocabulary of `netscatter sweep` and [`Scenario::set_field`].
pub const SCENARIO_FIELDS: [&str; 14] = [
    "devices",
    "placement",
    "channel",
    "fidelity",
    "scheme",
    "scale",
    "seed",
    "threads",
    "payload_bits",
    "arrival_rate",
    "stream_secs",
    "chunk_samples",
    "channels",
    "coding",
];

impl Scenario {
    /// Starts a builder from the default scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder(Scenario::default())
    }

    /// The fidelity's stable CLI name.
    pub fn fidelity_name(&self) -> &'static str {
        match self.fidelity {
            Fidelity::Analytical => "analytical",
            Fidelity::SampleLevel => "sample",
        }
    }

    /// Every field as a `(name, value)` string pair, in
    /// [`SCENARIO_FIELDS`] order — the scenario block of serialized results.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("devices", self.devices.to_string()),
            ("placement", self.placement.name().to_string()),
            ("channel", self.channel.name().to_string()),
            ("fidelity", self.fidelity_name().to_string()),
            ("scheme", self.scheme.name().to_string()),
            ("scale", self.scale.name().to_string()),
            ("seed", self.seed.to_string()),
            ("threads", self.threads.to_string()),
            ("payload_bits", self.payload_bits.to_string()),
            ("arrival_rate", self.arrival_rate.to_string()),
            ("stream_secs", self.stream_secs.to_string()),
            ("chunk_samples", self.chunk_samples.to_string()),
            ("channels", self.channels.to_string()),
            ("coding", self.coding.name().to_string()),
        ]
    }

    /// Sets one field from its CLI string form. Unknown fields and
    /// unparsable values return a usage-quality error message. Enum-valued
    /// fields (`placement`, `channel`, `fidelity`, `scheme`, `scale`)
    /// accept any capitalization — both the flag and `--set` sweep paths
    /// go through here.
    pub fn set_field(&mut self, name: &str, value: &str) -> Result<(), String> {
        fn int<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("{name} expects an integer, got {value:?}"))
        }
        fn positive_f64(name: &str, value: &str) -> Result<f64, String> {
            let v: f64 = value
                .parse()
                .map_err(|_| format!("{name} expects a number, got {value:?}"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} expects a positive number, got {value:?}"));
            }
            Ok(v)
        }
        match name {
            "devices" => {
                let devices = int(name, value)?;
                if devices == 0 {
                    // A zero-device sweep point would divide the headline
                    // gains by zero (NaN scalars that JSON cannot carry).
                    return Err("devices expects a positive integer, got \"0\"".into());
                }
                self.devices = devices;
            }
            "seed" => self.seed = int(name, value)?,
            "threads" => {
                // 0 is the documented "use every core" value, resolved here
                // so no layer below ever sees a zero thread bound.
                self.threads = match int::<usize>(name, value)? {
                    0 => available_threads(),
                    n => n,
                };
            }
            "payload_bits" => self.payload_bits = int(name, value)?,
            "arrival_rate" => {
                self.arrival_rate =
                    positive_f64(name, value)?.clamp(MIN_STREAM_PARAM, MAX_ARRIVAL_RATE_HZ);
            }
            "stream_secs" => {
                self.stream_secs =
                    positive_f64(name, value)?.clamp(MIN_STREAM_PARAM, MAX_STREAM_SECS);
            }
            "chunk_samples" => {
                let chunk = int::<usize>(name, value)?;
                if chunk == 0 {
                    return Err("chunk_samples expects a positive integer, got \"0\"".into());
                }
                self.chunk_samples = chunk;
            }
            "channels" => {
                let channels = int::<usize>(name, value)?;
                if channels == 0 {
                    // A zero-channel gateway serves nothing; the sharded
                    // engine rejects it too (EngineError::Config).
                    return Err("channels expects a positive integer, got \"0\"".into());
                }
                self.channels = channels;
            }
            "placement" => {
                self.placement = match value.to_lowercase().as_str() {
                    "office" => Placement::Office,
                    "hall" => Placement::Hall,
                    _ => {
                        return Err(format!(
                            "placement expects 'office' or 'hall', got {value:?}"
                        ))
                    }
                }
            }
            "channel" => {
                self.channel = match value.to_lowercase().as_str() {
                    "office" => ChannelProfile::Office,
                    "outdoor" => ChannelProfile::Outdoor,
                    "pristine" => ChannelProfile::Pristine,
                    _ => {
                        return Err(format!(
                            "channel expects 'office', 'outdoor' or 'pristine', got {value:?}"
                        ))
                    }
                }
            }
            "fidelity" => {
                self.fidelity = match value.to_lowercase().as_str() {
                    "analytical" => Fidelity::Analytical,
                    "sample" => Fidelity::SampleLevel,
                    _ => {
                        return Err(format!(
                            "fidelity expects 'analytical' or 'sample', got {value:?}"
                        ))
                    }
                }
            }
            "scheme" => {
                let lower = value.to_lowercase();
                self.scheme = Scheme::ALL
                    .into_iter()
                    .find(|s| s.name() == lower)
                    .ok_or_else(|| {
                        let names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
                        format!("scheme expects one of {}, got {value:?}", names.join("/"))
                    })?;
            }
            "scale" => {
                self.scale = match value.to_lowercase().as_str() {
                    "quick" => Scale::Quick,
                    "paper" | "full" => Scale::Full,
                    _ => return Err(format!("scale expects 'quick' or 'paper', got {value:?}")),
                }
            }
            // Geometry against `payload_bits` is deliberately NOT checked
            // here — field setters stay order-independent so sweeps may set
            // `coding` before `payload_bits`. [`Scenario::validate`] checks
            // the cross-field constraint once every field is in place.
            "coding" => self.coding = CodingScheme::parse(&value.to_lowercase())?,
            _ => {
                return Err(format!(
                    "unknown scenario field {name:?}; known fields: {}",
                    SCENARIO_FIELDS.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// Cross-field validation, called once every field is set (the CLI does
    /// this after flag parsing and per sweep point): when a coding scheme is
    /// selected, its frame geometry — header + data + CRC through the inner
    /// FEC — must fill `payload_bits` exactly. Returns the frame codec's
    /// usage-quality error otherwise.
    pub fn validate(&self) -> Result<(), String> {
        if self.coding != CodingScheme::None {
            FrameCodec::new(self.coding, self.payload_bits)?;
        }
        Ok(())
    }

    /// The frame codec this scenario's coding scheme implies, or `None` for
    /// uncoded raw-bit payloads. Errors exactly when [`Scenario::validate`]
    /// does.
    pub fn frame_codec(&self) -> Result<Option<FrameCodec>, String> {
        if self.coding == CodingScheme::None {
            return Ok(None);
        }
        FrameCodec::new(self.coding, self.payload_bits).map(Some)
    }

    /// The deployment this scenario describes, generated deterministically
    /// from the scenario seed.
    pub fn deployment(&self) -> Deployment {
        let config = match self.placement {
            Placement::Office => DeploymentConfig::office(self.devices),
            Placement::Hall => DeploymentConfig::hall(self.devices),
        };
        Deployment::generate(config, &mut StdRng::seed_from_u64(self.seed))
    }

    /// The channel impairment stack.
    pub fn channel_model(&self) -> ChannelModel {
        self.channel.model()
    }

    /// The deterministic sharded Monte-Carlo runner for this scenario.
    pub fn monte_carlo(&self) -> MonteCarlo {
        MonteCarlo::with_threads(self.seed, self.threads)
    }

    /// Evaluates the scenario's [`Scheme`] end to end and returns its
    /// network metrics — the single-scheme programmatic entry point that
    /// lets library users compose workload combinations (e.g. outdoor
    /// multipath × hall placement × sample fidelity) that the fixed figure
    /// drivers never plotted.
    pub fn scheme_metrics(&self) -> SchemeMetrics {
        let deployment = self.deployment();
        let model = self.channel_model();
        let mc = self.monte_carlo();
        match self.scheme {
            Scheme::NetScatter(variant) => netscatter_metrics_with(
                &deployment,
                self.devices,
                self.payload_bits,
                variant,
                self.fidelity,
                &model,
                &mc,
            ),
            Scheme::TdmaLora(scheme) => lora_backscatter_metrics_with(
                &deployment,
                self.devices,
                self.payload_bits,
                scheme,
                self.fidelity,
                &model,
                &mc,
            ),
        }
    }
}

/// Chainable constructor for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder(Scenario);

impl ScenarioBuilder {
    /// Population size (clamped to ≥ 1: a zero-device scenario has no
    /// defined headline gains).
    pub fn devices(mut self, devices: usize) -> Self {
        self.0.devices = devices.max(1);
        self
    }

    /// Deployment geometry.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.0.placement = placement;
        self
    }

    /// Channel impairment stack.
    pub fn channel(mut self, channel: ChannelProfile) -> Self {
        self.0.channel = channel;
        self
    }

    /// Delivery model.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.0.fidelity = fidelity;
        self
    }

    /// Scheme under test for single-scheme evaluations.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.0.scheme = scheme;
        self
    }

    /// Trial-count scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.0.scale = scale;
        self
    }

    /// Monte-Carlo base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }

    /// Worker-thread bound; 0 resolves to the available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.0.threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        self
    }

    /// Payload bits per device per round.
    pub fn payload_bits(mut self, payload_bits: usize) -> Self {
        self.0.payload_bits = payload_bits;
        self
    }

    /// Round arrival rate (rounds/s) of the streaming-gateway experiment,
    /// clamped to the shared valid domain (NaN maps to the minimum).
    pub fn arrival_rate(mut self, arrival_rate: f64) -> Self {
        let rate = if arrival_rate.is_nan() {
            MIN_STREAM_PARAM
        } else {
            arrival_rate
        };
        self.0.arrival_rate = rate.clamp(MIN_STREAM_PARAM, MAX_ARRIVAL_RATE_HZ);
        self
    }

    /// Stream duration (seconds) of the streaming-gateway experiment,
    /// clamped to the shared valid domain (NaN maps to the minimum).
    pub fn stream_secs(mut self, stream_secs: f64) -> Self {
        let secs = if stream_secs.is_nan() {
            MIN_STREAM_PARAM
        } else {
            stream_secs
        };
        self.0.stream_secs = secs.clamp(MIN_STREAM_PARAM, MAX_STREAM_SECS);
        self
    }

    /// Producer chunk size (samples) of the streaming gateway.
    pub fn chunk_samples(mut self, chunk_samples: usize) -> Self {
        self.0.chunk_samples = chunk_samples.max(1);
        self
    }

    /// Gateway channel count (clamped to ≥ 1).
    pub fn channels(mut self, channels: usize) -> Self {
        self.0.channels = channels.max(1);
        self
    }

    /// Link-layer coding scheme. The scheme × payload geometry is checked
    /// by [`Scenario::validate`], not here, so setter order never matters.
    pub fn coding(mut self, coding: CodingScheme) -> Self {
        self.0.coding = coding;
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> Scenario {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_defaults() {
        let s = Scenario::builder()
            .devices(64)
            .placement(Placement::Hall)
            .channel(ChannelProfile::Outdoor)
            .fidelity(Fidelity::SampleLevel)
            .scale(Scale::Quick)
            .seed(7)
            .threads(0)
            .payload_bits(8)
            .arrival_rate(25.0)
            .stream_secs(0.5)
            .chunk_samples(2048)
            .build();
        assert_eq!(s.devices, 64);
        assert_eq!(
            Scenario::builder().devices(0).build().devices,
            1,
            "devices clamp to >= 1"
        );
        assert_eq!(s.placement, Placement::Hall);
        assert_eq!(s.channel, ChannelProfile::Outdoor);
        assert_eq!(s.fidelity, Fidelity::SampleLevel);
        assert_eq!(s.scale, Scale::Quick);
        assert_eq!(s.seed, 7);
        assert_eq!(
            s.threads,
            available_threads(),
            "threads 0 resolves to every available core"
        );
        assert_eq!(s.payload_bits, 8);
        assert_eq!(s.arrival_rate, 25.0);
        assert_eq!(s.stream_secs, 0.5);
        assert_eq!(s.chunk_samples, 2048);
    }

    #[test]
    fn set_field_round_trips_every_field() {
        // Drive every field away from its default via the string interface,
        // then check `fields()` reports the new values.
        let mut s = Scenario::default();
        for (name, value) in [
            ("devices", "32"),
            ("placement", "hall"),
            ("channel", "pristine"),
            ("fidelity", "sample"),
            ("scheme", "lora-adapted"),
            ("scale", "quick"),
            ("seed", "9"),
            ("threads", "2"),
            ("payload_bits", "16"),
            ("arrival_rate", "2.5"),
            ("stream_secs", "0.75"),
            ("chunk_samples", "512"),
            ("channels", "2"),
            ("coding", "rs"),
        ] {
            s.set_field(name, value).unwrap_or_else(|e| panic!("{e}"));
        }
        let fields = s.fields();
        assert_eq!(fields.len(), SCENARIO_FIELDS.len());
        for ((name, got), want) in fields.iter().zip([
            "32",
            "hall",
            "pristine",
            "sample",
            "lora-adapted",
            "quick",
            "9",
            "2",
            "16",
            "2.5",
            "0.75",
            "512",
            "2",
            "rs",
        ]) {
            assert_eq!(got, want, "field {name}");
        }
    }

    #[test]
    fn builder_clamps_degenerate_stream_parameters() {
        // The CLI path rejects these with an error; the builder clamps
        // into the valid domain so library users can never construct a
        // silently empty stream.
        let s = Scenario::builder()
            .arrival_rate(0.0)
            .stream_secs(-5.0)
            .build();
        assert!(s.arrival_rate > 0.0);
        assert!(s.stream_secs > 0.0);
        let s = Scenario::builder()
            .arrival_rate(f64::NAN)
            .stream_secs(f64::INFINITY)
            .build();
        assert!(s.arrival_rate.is_finite() && s.arrival_rate > 0.0);
        assert!(s.stream_secs.is_finite() && s.stream_secs > 0.0);
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let mut s = Scenario::default();
        s.set_field("threads", "0").unwrap();
        assert_eq!(s.threads, available_threads());
        assert!(s.threads >= 1);
        // The Monte-Carlo layer resolves 0 identically.
        assert_eq!(
            MonteCarlo::with_threads(1, 0).threads,
            available_threads(),
            "MonteCarlo::with_threads(_, 0) uses every core"
        );
    }

    #[test]
    fn set_field_rejects_unknown_names_and_bad_values() {
        let mut s = Scenario::default();
        assert!(s.set_field("volume", "11").unwrap_err().contains("unknown"));
        assert!(s.set_field("devices", "lots").is_err());
        assert!(
            s.set_field("devices", "0")
                .unwrap_err()
                .contains("positive"),
            "a zero-device scenario has no defined gains"
        );
        assert!(s.set_field("fidelity", "vibes").is_err());
        assert!(s
            .set_field("scheme", "aloha")
            .unwrap_err()
            .contains("netscatter"));
        assert!(s
            .set_field("coding", "turbo")
            .unwrap_err()
            .contains("hamming"));
        for (field, bad) in [
            ("arrival_rate", "0"),
            ("arrival_rate", "fast"),
            ("stream_secs", "-1"),
            ("stream_secs", "inf"),
            ("chunk_samples", "0"),
            ("chunk_samples", "big"),
        ] {
            assert!(s.set_field(field, bad).is_err(), "{field}={bad}");
        }
        // Failed sets leave the scenario untouched.
        assert_eq!(s, Scenario::default());
    }

    #[test]
    fn scheme_names_are_unique_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for scheme in Scheme::ALL {
            assert!(seen.insert(scheme.name()), "duplicate {}", scheme.name());
            let mut s = Scenario::default();
            s.set_field("scheme", scheme.name()).unwrap();
            assert_eq!(s.scheme, scheme);
        }
    }

    #[test]
    fn scheme_metrics_composes_new_workloads() {
        // A combination no fixed binary could express: 48 devices in an
        // open hall, evaluated programmatically for two schemes on the same
        // scenario. NetScatter's concurrent round must beat TDMA's serial
        // schedule on link-layer rate.
        let base = Scenario::builder()
            .devices(48)
            .placement(Placement::Hall)
            .scale(Scale::Quick)
            .seed(3)
            .build();
        let ns = base.clone().scheme_metrics();
        let mut lora = base.clone();
        lora.set_field("scheme", "lora-fixed").unwrap();
        let lora = lora.scheme_metrics();
        assert_eq!(ns.num_devices, 48);
        assert_eq!(lora.num_devices, 48);
        assert!(ns.link_layer_rate_bps > lora.link_layer_rate_bps);
    }

    #[test]
    fn coding_round_trips_and_validates_against_payload_geometry() {
        // Every scheme name parses back through the string interface.
        for scheme in CodingScheme::ALL {
            let mut s = Scenario::default();
            s.set_field("coding", scheme.name()).unwrap();
            assert_eq!(s.coding, scheme);
        }
        // The default scenario (coding none) always validates.
        assert_eq!(Scenario::default().validate(), Ok(()));
        assert!(Scenario::default().frame_codec().unwrap().is_none());
        // Setter order never matters: coding before payload_bits is fine
        // until validate() runs on the finished scenario.
        let mut s = Scenario::default();
        s.set_field("coding", "rs").unwrap();
        let err = s.validate().unwrap_err();
        assert!(err.contains("payload_bits"), "{err}");
        assert!(s.frame_codec().is_err());
        s.set_field("payload_bits", "112").unwrap();
        assert_eq!(s.validate(), Ok(()));
        let codec = s.frame_codec().unwrap().expect("coded scenario");
        assert_eq!(codec.data_bits(), 16);
        // The builder path reaches the same validation.
        let s = Scenario::builder()
            .coding(CodingScheme::Conv)
            .payload_bits(108)
            .build();
        assert_eq!(s.validate(), Ok(()));
        assert!(Scenario::builder()
            .coding(CodingScheme::Conv)
            .payload_bits(41)
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn deployment_and_monte_carlo_follow_the_seed() {
        let a = Scenario::builder().seed(5).devices(16).build();
        let b = Scenario::builder().seed(5).devices(16).build();
        assert_eq!(a.deployment().devices, b.deployment().devices);
        assert_eq!(a.monte_carlo().seed, 5);
        let c = Scenario::builder().seed(6).devices(16).build();
        assert_ne!(a.deployment().devices, c.deployment().devices);
    }
}

//! The netscatterd stress harness: `netscatter stress`.
//!
//! Drives N simultaneous synthesized ingest streams at a running daemon
//! over real TCP sockets and scores what comes back three ways:
//!
//! 1. **bit identity** — every stream's NDJSON `frame` records must equal,
//!    byte for byte, what the synchronous batch pipeline
//!    ([`netscatter_gateway::StreamGateway`]) decodes from the same
//!    (f32-quantized) samples;
//! 2. **backpressure** — at the default real-time pacing the drop-oldest
//!    ring must not drop a single chunk (`ring_dropped == 0` in every end
//!    record);
//! 3. **metrics** — the daemon's metrics endpoint must report every
//!    stream with a positive `Msamples/s`, every line parsing as
//!    `name value` / `name{stream="…"} value`.
//!
//! Each stream is an independent [`crate::stream::RoundArrivalSource`]
//! replay (Poisson round arrivals from the sample-level simulator), so the
//! harness also scores the decode against the recorded ground truth:
//! rounds found, rounds missed, payload bit errors. Truth scoring is
//! reported but does not gate the exit code — channel noise may cost bits
//! legitimately; a daemon that diverges from its own batch pipeline or
//! drops chunks at real-time pace may not.
//!
//! By default the harness spins up an in-process [`Daemon`]; `--connect`
//! points it at an external `netscatterd` instead (CI runs the smoke this
//! way), with `--metrics-addr` naming that daemon's metrics port.

use crate::cli::{parse_flags, CliError};
use crate::deployment::{Deployment, DeploymentConfig};
use crate::fullround::ChannelModel;
use crate::stream::{ArrivalConfig, RoundArrivalSource, StreamRoundTruth};
use netscatter::json::Json;
use netscatter_coding::frame::FrameCodec;
use netscatter_coding::CodingScheme;
use netscatter_daemon::client::{self, Pace};
use netscatter_daemon::protocol::{self, StreamHeader};
use netscatter_daemon::{Daemon, DaemonConfig};
use netscatter_dsp::Complex64;
use netscatter_gateway::{DecodedPacket, GatewayConfig, StreamGateway, StreamSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deployment placement seed: every stress stream shares one office
/// deployment (and therefore one bin assignment); the per-stream trial
/// seed varies the channel and the arrival process instead.
pub(crate) const DEPLOYMENT_SEED: u64 = 17;

/// The `netscatter stress --help` text.
pub fn usage() -> String {
    "netscatter stress — multi-stream daemon stress harness

USAGE:
  netscatter stress [flags]

Synthesizes N concurrent round-arrival streams (the sample-level
simulator replayed as continuous baseband), drives them at a netscatterd
ingest port over TCP in parallel, and fails unless every stream's frames
are bit-identical to the batch pipeline's decode of the same samples,
no ring chunk was dropped, and the metrics endpoint reports every stream.

STRESS FLAGS:
  --streams <N>           concurrent ingest connections (default 4)
  --connect <ADDR>        use a running daemon instead of an in-process one
  --metrics-addr <ADDR>   metrics port of the --connect daemon
  --pace <F>              upload speed as a multiple of the sample rate
                          (default 1 = real time; 0 = wire speed)
  --ring-slots <N>        in-process daemon ring capacity (default 64)
  --cf32-dir <DIR>        write each stream to DIR/<name>.cf32 and upload
                          through the .cf32 replay-file path
  --chaos                 run the fault-injection matrix alongside the
                          healthy fleet: truncated/garbage/oversized/slow
                          headers, mid-stream disconnects and stalls,
                          ragged cf32 write splits, kill-mid-round, and an
                          injected decode-worker panic; fails unless the
                          daemon survives with every stream terminated
                          cleanly (in-process daemons get chaos deadlines
                          and fault injection automatically; a --connect
                          daemon needs --enable-fault-injection and short
                          --header-timeout/--idle-timeout)
  --expect-max-conns <N>  with --chaos --connect: the daemon's --max-conns
                          value, so the harness can verify admission
                          rejects (0 = skip; in-process chaos always
                          checks admission on a side daemon)
  --quiet                 suppress the per-stream report lines

SHARED FLAGS (the experiment parser):
  --seed <N>              base trial seed (stream i uses seed+i; default 42)
  --devices <N>           concurrent devices per round (default 8)
  --payload-bits <N>      payload bits per device (default 8)
  --coding <S>            link-layer coding scheme (none|hamming|rs|conv|
                          fountain; default none). Streams then carry CRC-
                          framed FEC frames, the daemon's frame records are
                          checked for per-device CRC verdicts, and the
                          frames_ok/frames_failed_crc counters are scored
                          (--payload-bits must fit the scheme's geometry)
  --arrival-rate <R>      round arrivals per second (default 10)
  --stream-secs <S>       per-stream duration in seconds (default 0.5)
  --chunk-samples <N>     ring chunk size in samples (default 4096)
  --channels <K>          RF channels to spread the streams over
                          (stream i tags channel i mod K; default 1)
  --threads <N>           decode workers per stream (default 0 = all cores)
  --help                  this text"
        .to_string()
}

/// Parsed `netscatter stress` options.
#[derive(Debug, Clone, PartialEq)]
pub struct StressOptions {
    /// Number of concurrent ingest connections.
    pub streams: usize,
    /// External daemon ingest address (`None` = in-process daemon).
    pub connect: Option<String>,
    /// External daemon metrics address.
    pub metrics_addr: Option<String>,
    /// Upload pace as a multiple of the sample rate (0 = wire speed).
    pub pace: f64,
    /// In-process daemon ring capacity, in chunks.
    pub ring_slots: usize,
    /// Write each stream to `<dir>/<name>.cf32` and upload through the
    /// replay-file path instead of from memory.
    pub cf32_dir: Option<String>,
    /// Run the deterministic fault-injection matrix alongside the healthy
    /// fleet.
    pub chaos: bool,
    /// `--max-conns` of a `--connect` daemon, for the chaos admission
    /// check (0 = skip the check against external daemons).
    pub expect_max_conns: usize,
    /// Suppress per-stream report lines.
    pub quiet: bool,
    /// Base trial seed (stream `i` is seeded `seed + i`).
    pub seed: u64,
    /// Devices per round.
    pub devices: usize,
    /// Payload bits per device per round.
    pub payload_bits: usize,
    /// Link-layer coding scheme the streams carry.
    pub coding: CodingScheme,
    /// Round arrival rate in rounds per second.
    pub rate_hz: f64,
    /// Stream duration in seconds.
    pub stream_secs: f64,
    /// Ring chunk size in samples.
    pub chunk_samples: usize,
    /// RF channels the fleet is spread over (stream `i` tags channel
    /// `i % channels`); the metrics check then demands a schema-complete
    /// per-channel rollup for every channel used.
    pub channels: usize,
    /// Decode workers per stream (0 = all cores).
    pub workers: usize,
}

/// Splits the stress-specific flags out of `args`, then runs the remainder
/// through the shared experiment flag parser ([`crate::cli::parse_flags`])
/// so `--seed`, `--devices`, `--arrival-rate`, … mean exactly what they
/// mean everywhere else in the CLI.
pub fn parse_stress_args(args: &[String]) -> Result<StressOptions, CliError> {
    let mut streams = 4usize;
    let mut connect = None;
    let mut metrics_addr = None;
    let mut pace = 1.0f64;
    let mut ring_slots = 64usize;
    let mut cf32_dir = None;
    let mut chaos = false;
    let mut expect_max_conns = 0usize;
    let mut quiet = false;
    // Stress defaults first, the user's flags after: a later flag wins in
    // the shared parser, so the user can still override any of these.
    let mut shared: Vec<String> = [
        "--devices",
        "8",
        "--payload-bits",
        "8",
        "--stream-secs",
        "0.5",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| CliError {
            message: format!("{flag} requires a value"),
            code: 2,
        })
    };
    let bad = |flag: &str, v: &str| CliError {
        message: format!("{flag} expects a number, got {v:?}"),
        code: 2,
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--streams" => {
                let v = value(&mut i, arg)?;
                streams = v.parse().map_err(|_| bad(arg, &v))?;
                if streams == 0 {
                    return Err(CliError {
                        message: "--streams must be at least 1".into(),
                        code: 2,
                    });
                }
            }
            "--connect" => connect = Some(value(&mut i, arg)?),
            "--metrics-addr" => metrics_addr = Some(value(&mut i, arg)?),
            "--pace" => {
                let v = value(&mut i, arg)?;
                pace = v.parse().map_err(|_| bad(arg, &v))?;
                if pace.is_nan() || pace < 0.0 {
                    return Err(bad(arg, &v));
                }
            }
            "--ring-slots" => {
                let v = value(&mut i, arg)?;
                ring_slots = v.parse().map_err(|_| bad(arg, &v))?;
            }
            "--cf32-dir" => cf32_dir = Some(value(&mut i, arg)?),
            "--chaos" => chaos = true,
            "--expect-max-conns" => {
                let v = value(&mut i, arg)?;
                expect_max_conns = v.parse().map_err(|_| bad(arg, &v))?;
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                return Err(CliError {
                    message: usage(),
                    code: 0,
                })
            }
            other => {
                shared.push(other.to_string());
                if matches!(
                    other,
                    "--seed"
                        | "--devices"
                        | "--payload-bits"
                        | "--coding"
                        | "--arrival-rate"
                        | "--stream-secs"
                        | "--chunk-samples"
                        | "--channels"
                        | "--threads"
                ) {
                    shared.push(value(&mut i, other)?);
                }
            }
        }
        i += 1;
    }
    let opts = parse_flags(&shared, false)?;
    let s = opts.scenario;
    Ok(StressOptions {
        streams,
        connect,
        metrics_addr,
        pace,
        ring_slots,
        cf32_dir,
        chaos,
        expect_max_conns,
        quiet,
        seed: s.seed,
        devices: s.devices,
        payload_bits: s.payload_bits,
        coding: s.coding,
        rate_hz: s.arrival_rate,
        stream_secs: s.stream_secs,
        chunk_samples: s.chunk_samples,
        channels: s.channels,
        workers: s.threads,
    })
}

/// One synthesized ingest stream plus everything needed to score it.
pub(crate) struct SynthStream {
    pub(crate) name: String,
    pub(crate) header: StreamHeader,
    /// The f32-quantized samples — exactly what crosses the wire.
    pub(crate) samples: Vec<Complex64>,
    pub(crate) truth: Vec<StreamRoundTruth>,
    pub(crate) bins: Vec<usize>,
    pub(crate) round_samples: u64,
}

/// Synthesizes stream `i`: drains a [`RoundArrivalSource`] seeded
/// `seed + i` into a buffer and quantizes it through the wire's f32
/// precision, so the batch reference decodes the same numbers the daemon
/// receives.
pub(crate) fn synthesize(deployment: &Deployment, opts: &StressOptions, i: usize) -> SynthStream {
    let model = ChannelModel::pristine();
    let mut source = RoundArrivalSource::new(
        deployment,
        opts.devices,
        &model,
        ArrivalConfig {
            rate_hz: opts.rate_hz,
            stream_secs: opts.stream_secs,
            payload_bits: opts.payload_bits,
        },
        opts.seed + i as u64,
    )
    .with_coding(opts.coding)
    // The flag parser validated the scheme × payload_bits geometry.
    .expect("coding geometry validated at parse time");
    let truth = source.truth();
    let bins = source.assigned_bins().to_vec();
    let floor = source.detection_floor_fraction();
    let rate = source.sample_rate_hz();
    let round_samples = source.round_samples();
    let mut samples = Vec::with_capacity(source.total_samples() as usize);
    let mut buf = vec![Complex64::ZERO; opts.chunk_samples.max(1)];
    loop {
        let got = source.fill(&mut buf);
        samples.extend_from_slice(&buf[..got]);
        if got < buf.len() {
            break;
        }
    }
    let name = format!("stress{i}");
    let truth = truth.lock().expect("truth lock").clone();
    SynthStream {
        header: StreamHeader {
            name: name.clone(),
            sample_rate_hz: Some(rate),
            bins: Some(bins.clone()),
            payload_bits: Some(opts.payload_bits),
            detection_floor: Some(floor),
            channel: Some(i % opts.channels.max(1)),
            coding: (opts.coding != CodingScheme::None).then_some(opts.coding),
            fault_panic_span: None,
        },
        name,
        samples: protocol::quantize_cf32(&samples),
        truth,
        bins,
        round_samples,
    }
}

/// The per-stream gateway configuration — identical between the batch
/// reference here and what the daemon assembles from the stream's header.
pub(crate) fn stream_config(
    deployment: &Deployment,
    stream: &SynthStream,
    opts: &StressOptions,
) -> GatewayConfig {
    let mut cfg = GatewayConfig::new(
        deployment.config.profile,
        stream.bins.clone(),
        opts.payload_bits,
    );
    cfg.chunk_samples = opts.chunk_samples;
    cfg.ring_slots = opts.ring_slots;
    cfg.workers = opts.workers;
    cfg.detection_floor_fraction = stream.header.detection_floor;
    cfg
}

/// Batch-decodes `stream` through the synchronous pipeline and returns the
/// packets plus their `frame` records (the daemon-comparison reference).
/// `frame_name` is the daemon-assigned stream name the records must carry —
/// a long-lived daemon uniquifies colliding names (`stress0#2`, …), so the
/// reference is rendered under whatever name the `ready` record announced.
pub(crate) fn batch_reference(
    deployment: &Deployment,
    stream: &SynthStream,
    opts: &StressOptions,
    frame_name: &str,
) -> Result<(Vec<DecodedPacket>, Vec<String>), String> {
    let cfg = stream_config(deployment, stream, opts);
    let mut gw = StreamGateway::new(&cfg).map_err(|e| e.to_string())?;
    let mut packets = Vec::new();
    for chunk in stream.samples.chunks(cfg.chunk_samples) {
        packets.extend(gw.feed(chunk).map_err(|e| e.to_string())?);
    }
    gw.finish();
    // On a coded fleet the reference records carry the same per-device
    // frame verdicts the daemon's must.
    let codec = match opts.coding {
        CodingScheme::None => None,
        scheme => Some(FrameCodec::new(scheme, opts.payload_bits)?),
    };
    let frames = packets
        .iter()
        .map(|p| {
            let outcomes = codec.as_ref().map(|c| {
                p.round
                    .devices
                    .iter()
                    .map(|d| c.decode_frame(&d.bits))
                    .collect::<Vec<_>>()
            });
            protocol::frame_json(frame_name, p, outcomes.as_deref()).to_string_line()
        })
        .collect();
    Ok((packets, frames))
}

/// The daemon-assigned stream name from a transcript's `ready` record,
/// falling back to the requested name.
pub(crate) fn assigned_name(lines: &[String], requested: &str) -> String {
    records_of(lines, "ready")
        .first()
        .and_then(|l| Json::parse(l).ok())
        .and_then(|d| d.get("stream").and_then(Json::as_str).map(String::from))
        .unwrap_or_else(|| requested.to_string())
}

/// Ground-truth score of one stream's decode.
#[derive(Debug, Default)]
struct TruthScore {
    rounds_sent: usize,
    rounds_found: usize,
    bits_sent: usize,
    bit_errors: usize,
}

/// Scores decoded packets against the recorded round truth: a round is
/// found when a packet starts within half a round of its true start; its
/// payload is then compared device by device on the assigned bins.
fn score_truth(stream: &SynthStream, packets: &[DecodedPacket]) -> TruthScore {
    let mut score = TruthScore {
        rounds_sent: stream.truth.len(),
        ..TruthScore::default()
    };
    let tolerance = (stream.round_samples / 2).max(1);
    for round in &stream.truth {
        let hit = packets
            .iter()
            .min_by_key(|p| (p.start_sample as i64 - round.start_sample as i64).unsigned_abs());
        let Some(packet) = hit.filter(|p| {
            (p.start_sample as i64 - round.start_sample as i64).unsigned_abs() < tolerance
        }) else {
            // A missed round: every bit it carried counts against us.
            score.bits_sent += round.sent.iter().flatten().map(Vec::len).sum::<usize>();
            score.bit_errors += round.sent.iter().flatten().map(Vec::len).sum::<usize>();
            continue;
        };
        score.rounds_found += 1;
        for (device, sent) in round.sent.iter().enumerate() {
            let Some(sent) = sent else { continue };
            score.bits_sent += sent.len();
            match packet.round.bits_for(stream.bins[device]) {
                Some(decoded) => {
                    score.bit_errors += sent.iter().zip(decoded).filter(|(a, b)| a != b).count()
                        + sent.len().saturating_sub(decoded.len());
                }
                None => score.bit_errors += sent.len(),
            }
        }
    }
    score
}

/// Extracts the records of `kind` from a stream's NDJSON transcript.
pub(crate) fn records_of<'a>(lines: &'a [String], kind: &str) -> Vec<&'a String> {
    lines
        .iter()
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|d| d.get("type").and_then(Json::as_str).map(String::from))
                .as_deref()
                == Some(kind)
        })
        .collect()
}

/// The value of the metrics line starting with `prefix`, if present.
fn metric_value(doc: &str, prefix: &str) -> Option<f64> {
    doc.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Validates the metrics document: header line, the v2 `build_info`
/// line, every line `name value` / `name{label="…"} value`, a positive
/// `msamples_per_sec`, the right channel tag, the link-layer
/// `frames_ok` / `frames_failed_crc` counters and the ingest→emit
/// frame-latency histogram for every `(name, channel)` stream in
/// `streams`, and a schema-complete rollup (stream count, samples total,
/// Msamples/s) for every channel the fleet used plus the whole-daemon
/// aggregate rate. Returns the failures.
pub(crate) fn check_metrics(doc: &str, streams: &[(String, usize)]) -> Vec<String> {
    let mut failures = Vec::new();
    if !doc.starts_with(netscatter_daemon::metrics::METRICS_HEADER) {
        failures.push("metrics document lacks the schema header".to_string());
    }
    if metric_value(doc, "netscatterd_build_info{").is_none() {
        failures.push("metrics lack the build_info line".to_string());
    }
    for line in doc.lines().skip(1) {
        let Some(value) = line.rsplit(' ').next() else {
            continue;
        };
        if value.parse::<f64>().is_err() {
            failures.push(format!("unparsable metrics line {line:?}"));
        }
    }
    for (name, channel) in streams {
        let prefix = format!("netscatterd_stream_msamples_per_sec{{stream=\"{name}\"}} ");
        match metric_value(doc, &prefix) {
            Some(v) if v > 0.0 => {}
            Some(v) => failures.push(format!("stream {name}: non-positive Msamples/s ({v})")),
            None => failures.push(format!("metrics lack stream {name}")),
        }
        let prefix = format!("netscatterd_stream_channel{{stream=\"{name}\"}} ");
        match metric_value(doc, &prefix) {
            Some(tag) if tag == *channel as f64 => {}
            Some(tag) => failures.push(format!(
                "stream {name}: metrics report channel {tag}, header said {channel}"
            )),
            None => failures.push(format!("metrics lack a channel tag for stream {name}")),
        }
        // Frame counters are part of the per-stream schema even for
        // uncoded streams (both pinned at 0 there).
        for metric in [
            "netscatterd_stream_frames_ok",
            "netscatterd_stream_frames_failed_crc",
        ] {
            let prefix = format!("{metric}{{stream=\"{name}\"}} ");
            if metric_value(doc, &prefix).is_none() {
                failures.push(format!("metrics lack {metric} for stream {name}"));
            }
        }
        // The v2 schema adds an ingest→emit latency histogram per stream;
        // its `_count` line must exist even before any frame was emitted.
        let prefix =
            format!("netscatterd_stream_frame_latency_seconds_count{{stream=\"{name}\"}} ");
        if metric_value(doc, &prefix).is_none() {
            failures.push(format!(
                "metrics lack the frame latency histogram for stream {name}"
            ));
        }
    }
    let mut channels: Vec<usize> = streams.iter().map(|&(_, c)| c).collect();
    channels.sort_unstable();
    channels.dedup();
    for channel in channels {
        for metric in [
            "netscatterd_channel_streams",
            "netscatterd_channel_samples_total",
            "netscatterd_channel_msamples_per_sec",
        ] {
            let prefix = format!("{metric}{{channel=\"{channel}\"}} ");
            match metric_value(doc, &prefix) {
                Some(v) if v > 0.0 => {}
                Some(v) => failures.push(format!("channel {channel}: non-positive {metric} ({v})")),
                None => failures.push(format!("metrics lack {metric} for channel {channel}")),
            }
        }
    }
    if !streams.is_empty() {
        match metric_value(doc, "netscatterd_aggregate_msamples_per_sec ") {
            Some(v) if v > 0.0 => {}
            Some(v) => failures.push(format!("non-positive aggregate Msamples/s ({v})")),
            None => failures.push("metrics lack the aggregate Msamples/s".to_string()),
        }
    }
    failures
}

/// What scoring one healthy stream's transcript concluded.
pub(crate) struct HealthyScore {
    /// Everything that disqualifies the stream (empty = pass).
    pub(crate) failures: Vec<String>,
    /// The daemon-assigned (uniquified) stream name.
    pub(crate) served_name: String,
    /// The human per-stream report line.
    pub(crate) report_line: String,
}

/// Scores one healthy stream's transcript: `frame` records bit-identical
/// to the batch pipeline's decode of the same samples, exactly one
/// complete `end` record carrying consistent `frames_ok` /
/// `frames_failed_crc` counters, zero ring drops. Shared between the
/// plain stress fleet and the chaos harness's healthy/ragged streams.
pub(crate) fn score_healthy(
    deployment: &Deployment,
    stream: &SynthStream,
    opts: &StressOptions,
    lines: &[String],
) -> HealthyScore {
    let name = &stream.name;
    let mut failures = Vec::new();
    let served = assigned_name(lines, name);
    let (packets, expected) = match batch_reference(deployment, stream, opts, &served) {
        Ok(r) => r,
        Err(e) => {
            return HealthyScore {
                failures: vec![format!("stream {name}: batch reference failed: {e}")],
                served_name: served,
                report_line: String::new(),
            }
        }
    };
    let got: Vec<String> = records_of(lines, "frame").into_iter().cloned().collect();
    if got != expected {
        failures.push(format!(
            "stream {name}: daemon frames diverge from batch decode ({} vs {} frames)",
            got.len(),
            expected.len()
        ));
    }
    let ends = records_of(lines, "end");
    let (mut dropped, mut complete) = (u64::MAX, false);
    let (mut frames_ok, mut frames_failed) = (None, None);
    if let Some(end) = ends.first().and_then(|l| Json::parse(l).ok()) {
        dropped = end
            .get("ring_dropped")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        complete = end.get("complete") == Some(&Json::Bool(true));
        frames_ok = end.get("frames_ok").and_then(Json::as_u64);
        frames_failed = end.get("frames_failed_crc").and_then(Json::as_u64);
    }
    if ends.len() != 1 || !complete {
        failures.push(format!("stream {name}: missing or incomplete end record"));
    }
    if dropped != 0 {
        failures.push(format!("stream {name}: {dropped} ring chunks dropped"));
    }
    // Link-frame counters are schema-mandatory in every end record: on a
    // coded stream each detected device slot gets exactly one CRC verdict;
    // uncoded streams must report both counters pinned at 0.
    match (frames_ok, frames_failed) {
        (Some(ok), Some(failed)) => {
            if opts.coding == CodingScheme::None {
                if ok != 0 || failed != 0 {
                    failures.push(format!(
                        "stream {name}: uncoded stream reported link frames ({ok} ok, {failed} bad)"
                    ));
                }
            } else {
                let verdicts: u64 = packets.iter().map(|p| p.round.devices.len() as u64).sum();
                if ok + failed != verdicts {
                    failures.push(format!(
                        "stream {name}: {} CRC verdicts for {verdicts} decoded device frames",
                        ok + failed
                    ));
                }
            }
        }
        _ => failures.push(format!(
            "stream {name}: end record lacks frames_ok/frames_failed_crc"
        )),
    }
    let score = score_truth(stream, &packets);
    let report_line = format!(
        "stream {name}: {} samples, {} frames, rounds {}/{}, bit errors {}/{}, ring drops {}",
        stream.samples.len(),
        got.len(),
        score.rounds_found,
        score.rounds_sent,
        score.bit_errors,
        score.bits_sent,
        if dropped == u64::MAX {
            "?".to_string()
        } else {
            dropped.to_string()
        },
    );
    HealthyScore {
        failures,
        served_name: served,
        report_line,
    }
}

/// Runs the stress harness; returns the process exit code (0 = pass).
pub fn run_stress(opts: &StressOptions) -> i32 {
    if opts.chaos {
        return crate::chaos::run_chaos(opts);
    }
    let deployment = Deployment::generate(
        DeploymentConfig::office(opts.devices.max(16)),
        &mut StdRng::seed_from_u64(DEPLOYMENT_SEED),
    );

    // Synthesis is deterministic per (seed, i): do it up front so the TCP
    // phase measures the daemon, not the simulator.
    let streams: Vec<SynthStream> = (0..opts.streams)
        .map(|i| synthesize(&deployment, opts, i))
        .collect();

    // One daemon for every stream. The in-process one takes its defaults
    // from stream 0's shape, but every header carries its own parameters.
    let local = if opts.connect.is_none() {
        let base = stream_config(&deployment, &streams[0], opts);
        let rate = streams[0].header.sample_rate_hz.unwrap_or(500e3);
        let mut config = DaemonConfig::new(base);
        config.default_sample_rate_hz = rate;
        match Daemon::start(config) {
            Ok(d) => Some(d),
            Err(e) => {
                eprintln!("stress: failed to start in-process daemon: {e}");
                return 1;
            }
        }
    } else {
        None
    };
    let ingest = match (&opts.connect, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(d)) => d.ingest_addr().to_string(),
        (None, None) => unreachable!("no daemon"),
    };

    // With --cf32-dir, write each stream to a capture file first and
    // upload through the replay-file path — CI uses this to exercise
    // `.cf32` ingest over TCP with the real binaries.
    let captures: Vec<Option<std::path::PathBuf>> = match &opts.cf32_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("stress: cannot create {}: {e}", dir.display());
                return 1;
            }
            let mut paths = Vec::new();
            for s in &streams {
                let path = dir.join(format!("{}.cf32", s.name));
                if let Err(e) = std::fs::write(&path, protocol::encode_cf32le(&s.samples)) {
                    eprintln!("stress: cannot write {}: {e}", path.display());
                    return 1;
                }
                paths.push(Some(path));
            }
            paths
        }
        None => vec![None; streams.len()],
    };

    // Drive every stream concurrently over real sockets.
    let uploads: Vec<_> = streams
        .iter()
        .zip(captures)
        .map(|(s, capture)| {
            let addr = ingest.clone();
            let header = s.header.clone();
            let samples = s.samples.clone();
            let pace = if opts.pace == 0.0 {
                Pace::Unlimited
            } else {
                Pace::SamplesPerSec(opts.pace * header.sample_rate_hz.unwrap_or(500e3))
            };
            std::thread::spawn(move || match capture {
                Some(path) => client::stream_file(addr, &header, &path, pace),
                None => client::stream_samples(addr, &header, &samples, pace),
            })
        })
        .collect();
    let transcripts: Vec<std::io::Result<Vec<String>>> = uploads
        .into_iter()
        .map(|h| h.join().expect("upload thread"))
        .collect();

    // Score each stream: bit identity, drops, truth.
    let mut failures: Vec<String> = Vec::new();
    let mut served_names: Vec<(String, usize)> = Vec::new();
    for (stream, transcript) in streams.iter().zip(&transcripts) {
        let lines = match transcript {
            Ok(lines) => lines,
            Err(e) => {
                failures.push(format!("stream {}: transport failed: {e}", stream.name));
                continue;
            }
        };
        let scored = score_healthy(&deployment, stream, opts, lines);
        served_names.push((scored.served_name, stream.header.channel.unwrap_or(0)));
        failures.extend(scored.failures);
        if !opts.quiet {
            println!("{}", scored.report_line);
        }
    }

    // Metrics: the in-process daemon's port, or --metrics-addr.
    let metrics_addr = match (&local, &opts.metrics_addr) {
        (_, Some(addr)) => Some(addr.clone()),
        (Some(d), None) => d.metrics_addr().map(|a| a.to_string()),
        (None, None) => None,
    };
    match metrics_addr {
        Some(addr) => match client::fetch_metrics(&addr) {
            Ok(doc) => {
                // Metrics lines carry the daemon-assigned names too.
                failures.extend(check_metrics(&doc, &served_names));
            }
            Err(e) => failures.push(format!("metrics fetch from {addr} failed: {e}")),
        },
        None => {
            if !opts.quiet {
                println!("stress: no metrics address known; skipping the metrics check");
            }
        }
    }

    if let Some(daemon) = local {
        daemon.shutdown();
    }
    if failures.is_empty() {
        println!(
            "stress PASS: {} streams bit-identical to batch decode, zero ring drops",
            streams.len()
        );
        0
    } else {
        for f in &failures {
            eprintln!("stress FAIL: {f}");
        }
        1
    }
}

/// Entry point for `netscatter stress`: parses flags and runs the harness.
pub fn stress_main(args: &[String]) -> i32 {
    match parse_stress_args(args) {
        Ok(opts) => run_stress(&opts),
        Err(e) => {
            if e.code == 0 {
                println!("{}", e.message);
            } else {
                eprintln!("{}", e.message);
                eprintln!("run `netscatter stress --help` for usage");
            }
            e.code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stress_flags_parse_with_shared_experiment_semantics() {
        let opts = parse_stress_args(&args(&[
            "--streams",
            "6",
            "--seed",
            "7",
            "--arrival-rate",
            "25",
            "--pace",
            "0",
            "--quiet",
        ]))
        .expect("flags parse");
        assert_eq!(opts.streams, 6);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.rate_hz, 25.0);
        assert_eq!(opts.pace, 0.0);
        assert!(opts.quiet);
        // Stress defaults override the Scenario defaults…
        assert_eq!(opts.devices, 8);
        assert_eq!(opts.payload_bits, 8);
        assert_eq!(opts.stream_secs, 0.5);
        // …and the user's flags override the stress defaults.
        let opts = parse_stress_args(&args(&["--devices", "4"])).unwrap();
        assert_eq!(opts.devices, 4);
    }

    #[test]
    fn chaos_flags_parse() {
        let opts = parse_stress_args(&args(&["--streams", "2"])).unwrap();
        assert!(!opts.chaos, "chaos must be opt-in");
        assert_eq!(opts.expect_max_conns, 0);
        let opts = parse_stress_args(&args(&["--chaos", "--expect-max-conns", "16"])).unwrap();
        assert!(opts.chaos);
        assert_eq!(opts.expect_max_conns, 16);
        let err = parse_stress_args(&args(&["--expect-max-conns", "none"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn stress_rejects_bad_flags_like_the_shared_parser() {
        for bad in [
            vec!["--streams", "0"],
            vec!["--streams", "many"],
            vec!["--pace", "-1"],
            vec!["--arrival-rate", "0"],
            vec!["--frobnicate"],
        ] {
            let err = parse_stress_args(&args(&bad)).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
        }
        assert_eq!(parse_stress_args(&args(&["--help"])).unwrap_err().code, 0);
    }

    #[test]
    fn truth_scoring_counts_found_rounds_and_missed_bits() {
        let stream = SynthStream {
            name: "t".into(),
            header: StreamHeader::named("t"),
            samples: Vec::new(),
            truth: vec![
                StreamRoundTruth {
                    start_sample: 1000,
                    sent: vec![Some(vec![true, false]), None],
                },
                StreamRoundTruth {
                    start_sample: 50_000,
                    sent: vec![Some(vec![true, true]), None],
                },
            ],
            bins: vec![3, 9],
            round_samples: 400,
        };
        // One packet near the first round, nothing near the second.
        let round = netscatter::receiver::DecodedRound {
            devices: vec![netscatter::receiver::DecodedDevice {
                chirp_bin: 3,
                preamble_power: 1.0,
                bits: vec![true, true],
            }],
        };
        let packets = vec![DecodedPacket {
            index: 0,
            start_sample: 1010,
            round,
        }];
        let score = score_truth(&stream, &packets);
        assert_eq!(score.rounds_sent, 2);
        assert_eq!(score.rounds_found, 1);
        assert_eq!(score.bits_sent, 4);
        // One bit wrong in the found round, both bits of the missed round.
        assert_eq!(score.bit_errors, 3);
    }

    #[test]
    fn coding_flag_parses_and_validates_frame_geometry() {
        let opts =
            parse_stress_args(&args(&["--coding", "conv", "--payload-bits", "108"])).unwrap();
        assert_eq!(opts.coding, CodingScheme::Conv);
        assert_eq!(opts.payload_bits, 108);
        // The default stays uncoded ("none" spells it out explicitly).
        assert_eq!(
            parse_stress_args(&args(&[])).unwrap().coding,
            CodingScheme::None
        );
        assert_eq!(
            parse_stress_args(&args(&["--coding", "none"]))
                .unwrap()
                .coding,
            CodingScheme::None
        );
        // The stress default of 8 payload bits cannot carry a Hamming
        // frame; the shared parser's geometry validation rejects it.
        let err = parse_stress_args(&args(&["--coding", "hamming"])).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        let err = parse_stress_args(&args(&["--coding", "turbo"])).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
    }

    #[test]
    fn channels_flag_spreads_the_fleet_over_shards() {
        let opts = parse_stress_args(&args(&["--streams", "4", "--channels", "2"])).unwrap();
        assert_eq!(opts.channels, 2);
        let deployment = Deployment::generate(
            DeploymentConfig::office(opts.devices.max(16)),
            &mut StdRng::seed_from_u64(DEPLOYMENT_SEED),
        );
        let tags: Vec<usize> = (0..4)
            .map(|i| synthesize(&deployment, &opts, i).header.channel.unwrap())
            .collect();
        assert_eq!(tags, vec![0, 1, 0, 1]);
        // The shared parser's zero rejection applies.
        let err = parse_stress_args(&args(&["--channels", "0"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn metrics_checker_flags_missing_streams_and_garbage_lines() {
        let doc = format!(
            "{}\nnetscatterd_build_info{{version=\"0.0.0\"}} 1\n\
             netscatterd_streams_total 1\n\
             netscatterd_aggregate_msamples_per_sec 1.5\n\
             netscatterd_channel_streams{{channel=\"0\"}} 1\n\
             netscatterd_channel_samples_total{{channel=\"0\"}} 4096\n\
             netscatterd_channel_msamples_per_sec{{channel=\"0\"}} 1.5\n\
             netscatterd_stream_msamples_per_sec{{stream=\"a\"}} 1.5\n\
             netscatterd_stream_channel{{stream=\"a\"}} 0\n\
             netscatterd_stream_frames_ok{{stream=\"a\"}} 0\n\
             netscatterd_stream_frames_failed_crc{{stream=\"a\"}} 0\n\
             netscatterd_stream_frame_latency_seconds_count{{stream=\"a\"}} 0\n",
            netscatter_daemon::metrics::METRICS_HEADER
        );
        assert!(check_metrics(&doc, &[("a".to_string(), 0)]).is_empty());
        let fails = check_metrics(&doc, &[("a".to_string(), 0), ("b".to_string(), 0)]);
        assert_eq!(fails.len(), 5, "{fails:?}");
        assert!(fails[0].contains("lack stream b"));
        assert!(fails[1].contains("channel tag for stream b"));
        assert!(fails[2].contains("frames_ok for stream b"));
        assert!(fails[3].contains("frames_failed_crc for stream b"));
        assert!(fails[4].contains("frame latency histogram for stream b"));
        // The v2 build_info line is part of the schema.
        let fails = check_metrics(
            &doc.replace("netscatterd_build_info{version=\"0.0.0\"} 1\n", ""),
            &[("a".to_string(), 0)],
        );
        assert!(fails.iter().any(|f| f.contains("build_info")), "{fails:?}");
        // Dropping a frame-counter line for a known stream is a failure.
        let fails = check_metrics(
            &doc.replace("netscatterd_stream_frames_ok{stream=\"a\"} 0\n", ""),
            &[("a".to_string(), 0)],
        );
        assert!(
            fails.iter().any(|f| f.contains("frames_ok for stream a")),
            "{fails:?}"
        );
        // A stream tagged on a channel the document does not roll up.
        let fails = check_metrics(&doc, &[("a".to_string(), 1)]);
        assert!(fails.iter().any(|f| f.contains("channel 1")), "{fails:?}");
        // A channel tag that contradicts the header.
        let fails = check_metrics(
            &doc.replace(
                "netscatterd_stream_channel{stream=\"a\"} 0",
                "netscatterd_stream_channel{stream=\"a\"} 2",
            ),
            &[("a".to_string(), 0)],
        );
        assert!(
            fails.iter().any(|f| f.contains("header said 0")),
            "{fails:?}"
        );
        let garbage = format!(
            "{}\nwhat even is this\n",
            netscatter_daemon::metrics::METRICS_HEADER
        );
        assert!(!check_metrics(&garbage, &[]).is_empty());
    }
}

//! Shared synthetic workloads for benches and the CI perf snapshot.
//!
//! The `decode_throughput` criterion bench and the `perf_snapshot` binary
//! time the same workload — a fully superposed concurrent round — so the
//! construction lives here once; if the bin-spacing rule or the bit pattern
//! changes, both consumers keep measuring the same thing.

use netscatter_dsp::Complex64;
use netscatter_phy::distributed::OnOffModulator;
use netscatter_phy::params::PhyProfile;
use netscatter_phy::preamble::PreambleBuilder;

/// Builds a superposed round waveform (8-symbol preamble followed by
/// `payload_symbols` payload symbols) for `n_devices` ideal devices on
/// SKIP-spaced bins, each transmitting the deterministic
/// `(symbol + bin) % 3 != 0` bit pattern. Returns the waveform and the
/// assigned bins.
pub fn build_concurrent_round(
    profile: &PhyProfile,
    n_devices: usize,
    payload_symbols: usize,
) -> (Vec<Complex64>, Vec<usize>) {
    let params = profile.modulation.chirp();
    let n = params.num_bins();
    let spacing = (n / n_devices.max(1)).max(profile.skip);
    let bins: Vec<usize> = (0..n_devices).map(|i| (i * spacing) % n).collect();
    let mut stream = vec![Complex64::ZERO; (8 + payload_symbols) * n];
    for &bin in &bins {
        let preamble = PreambleBuilder::new(params, bin).build(0.0, 0.0, 1.0);
        for (acc, s) in stream.iter_mut().zip(preamble.iter()) {
            *acc += *s;
        }
        let modulator = OnOffModulator::new(params, bin);
        for (s, chunk) in stream[8 * n..].chunks_exact_mut(n).enumerate() {
            modulator.add_symbol((s + bin) % 3 != 0, 0.0, 0.0, 1.0, chunk);
        }
    }
    (stream, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_has_preamble_plus_payload_layout() {
        let profile = PhyProfile::default();
        let n = profile.modulation.num_bins();
        let (stream, bins) = build_concurrent_round(&profile, 16, 4);
        assert_eq!(stream.len(), (8 + 4) * n);
        assert_eq!(bins.len(), 16);
        // Bins are distinct and SKIP-spaced.
        let mut sorted = bins.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        // The superposed round decodes every device cleanly.
        let rx = netscatter::receiver::ConcurrentReceiver::new(&profile).unwrap();
        let round = rx.decode_round(&stream, 0, &bins, 4).unwrap();
        assert_eq!(round.devices.len(), 16);
        for device in &round.devices {
            let expected: Vec<bool> = (0..4).map(|s| (s + device.chirp_bin) % 3 != 0).collect();
            assert_eq!(device.bits, expected, "bin {}", device.chirp_bin);
        }
    }
}

//! Sample-level network round simulation.
//!
//! The analytical delivery model in [`crate::network`] gates each device on
//! RSSI thresholds; this module instead *runs the radio*: every scheduled
//! device realizes a channel (multipath composite gain and excess delay,
//! temporally correlated fading, Doppler, hardware CFO and timing jitter),
//! synthesizes its ON-OFF-keyed CSS packet, the waveforms superpose into one
//! shared buffer, AWGN at the thermal floor is added, and the round is
//! decoded by the real [`ConcurrentReceiver`]. Deliveries and bit errors
//! fall out of the decode chain rather than a formula — the
//! `Fidelity::SampleLevel` path of Figs. 17–19.
//!
//! The channel realization is split in two so the Choir/TDMA baselines can
//! be evaluated on *identical* draws (apples-to-apples curves):
//!
//! * [`ChannelRealizer`] — owns every random channel process. Seeded from a
//!   trial seed, it produces one [`RoundChannel`] per device per round and
//!   consumes its RNG stream identically no matter which scheme asks.
//! * [`FullRoundNetwork`] — owns the NetScatter-specific state (association,
//!   power adjustment, packet impairments, payload bits, noise) on a second,
//!   independent RNG stream.
//!
//! Everything is a pure function of the trial seed, so the Monte-Carlo
//! layer can shard multi-round trials across threads and stay bit-identical
//! at any thread count.

use crate::deployment::Deployment;
use netscatter::allocator::CyclicShiftAllocator;
use netscatter::device::{BackscatterDevice, DeviceConfig, TransmitDecision};
use netscatter::protocol::RoundOutcome;
use netscatter::receiver::ConcurrentReceiver;
use netscatter_channel::doppler::backscatter_doppler_shift_hz;
use netscatter_channel::fading::TemporalFading;
use netscatter_channel::impairments::ImpairmentModel;
use netscatter_channel::multipath::PowerDelayProfile;
use netscatter_channel::noise::AwgnChannel;
use netscatter_dsp::chirp::ChirpSynthesizer;
use netscatter_dsp::units::{db_to_amplitude, db_to_linear, linear_to_db, thermal_noise_dbm};
use netscatter_dsp::Complex64;
use netscatter_phy::params::{required_snr_db, PhyProfile};
use netscatter_phy::preamble::{PREAMBLE_DOWNCHIRPS, PREAMBLE_SYMBOLS, PREAMBLE_UPCHIRPS};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Salt applied to a trial seed for the channel-realization RNG stream.
/// Both NetScatter and the baselines derive their realizer from the same
/// trial seed with this salt, which is what makes their channel draws
/// identical.
const CHANNEL_STREAM_SALT: u64 = 0xC4A1_57E4_11AB_1E5D;

/// Salt applied to a trial seed for the NetScatter-local RNG stream
/// (device statics, payload bits, packet jitter, AWGN).
const LOCAL_STREAM_SALT: u64 = 0x0DDC_0FFE_E0DD_F00D;

/// The impairment processes applied on top of a deployment's static link
/// budgets when simulating at sample level.
#[derive(Debug, Clone, Copy)]
pub struct ChannelModel {
    /// Multipath power-delay profile, realized once per device per trial
    /// (`None` disables multipath: unit composite gain, zero excess delay).
    pub multipath: Option<PowerDelayProfile>,
    /// Stationary deviation of the per-device temporal fading process, in
    /// dB (0 freezes the channel between rounds).
    pub fading_sigma_db: f64,
    /// Step-to-step correlation of the temporal fading process.
    pub fading_correlation: f64,
    /// Maximum device speed in m/s; each round draws a radial speed
    /// uniformly in `[-max, max]` per device for the Doppler shift.
    pub max_speed_mps: f64,
    /// Carrier frequency in Hz for the Doppler computation.
    pub carrier_hz: f64,
    /// Hardware impairment population (CFO + timing jitter).
    pub impairments: ImpairmentModel,
    /// Whether to add AWGN at the thermal noise floor.
    pub noise: bool,
    /// Uniform SNR boost (dB) applied to every uplink — a test hook that
    /// moves the whole deployment into the high-SNR regime without touching
    /// its geometry.
    pub snr_boost_db: f64,
}

impl ChannelModel {
    /// The busy-office model used by the paper's evaluation: 150 ns RMS
    /// delay spread, Fig. 9 temporal fading, pedestrian mobility, COTS
    /// backscatter hardware, thermal noise.
    pub fn office() -> Self {
        Self {
            multipath: Some(PowerDelayProfile::indoor(150e-9)),
            fading_sigma_db: 1.8,
            fading_correlation: 0.95,
            max_speed_mps: 1.0,
            carrier_hz: 900e6,
            impairments: ImpairmentModel::cots_backscatter(),
            noise: true,
            snr_boost_db: 0.0,
        }
    }

    /// An outdoor deployment model: 1 µs RMS delay spread from distant
    /// scatterers, slower-decorrelating shadowing with a larger deviation,
    /// vehicular-pedestrian mixed mobility (up to 5 m/s), and the same COTS
    /// backscatter hardware population. One of the workload combinations the
    /// scenario API opens up beyond the paper's office evaluation.
    pub fn outdoor() -> Self {
        Self {
            multipath: Some(PowerDelayProfile::outdoor(1e-6)),
            fading_sigma_db: 3.0,
            fading_correlation: 0.98,
            max_speed_mps: 5.0,
            carrier_hz: 900e6,
            impairments: ImpairmentModel::cots_backscatter(),
            noise: true,
            snr_boost_db: 0.0,
        }
    }

    /// A high-SNR model with negligible impairments: no multipath, frozen
    /// fading, static devices, ideal hardware (zero CFO, zero delay
    /// jitter — the calibrated mean delay is pre-compensated exactly), and
    /// a +40 dB uplink boost that puts even the weakest device far above
    /// the noise floor. Used by the property test that sample-level
    /// delivery must agree with the analytical gate.
    pub fn pristine() -> Self {
        use netscatter_channel::impairments::{CfoModel, HardwareDelayModel};
        Self {
            multipath: None,
            fading_sigma_db: 0.0,
            fading_correlation: 0.0,
            max_speed_mps: 0.0,
            carrier_hz: 900e6,
            impairments: ImpairmentModel {
                delay: HardwareDelayModel {
                    mean_s: 0.0,
                    sigma_s: 0.0,
                    jitter_sigma_s: 0.0,
                    max_s: 0.0,
                },
                cfo: CfoModel {
                    crystal_tolerance_ppm: 0.0,
                    synthesized_frequency_hz: 3e6,
                    per_packet_drift_hz: 0.0,
                },
            },
            noise: true,
            snr_boost_db: 40.0,
        }
    }
}

/// One device's channel realization for one round.
#[derive(Debug, Clone, Copy)]
pub struct RoundChannel {
    /// Composite narrowband multipath gain (unit mean power across
    /// realizations; exactly one for `multipath: None`). Carries the phase
    /// every sample of the device's waveform is rotated by.
    pub multipath_gain: Complex64,
    /// Power-weighted mean excess delay of the multipath realization, which
    /// adds to the device's timing-offset budget.
    pub excess_delay_s: f64,
    /// Temporal-fading deviation in dB, applied to both link directions
    /// (channel reciprocity).
    pub fading_db: f64,
    /// Round-trip Doppler shift for this round's radial speed, in Hz.
    pub doppler_hz: f64,
}

impl RoundChannel {
    /// Total channel power deviation in dB relative to the static link
    /// budget: multipath composite gain plus temporal fading.
    pub fn gain_db(&self) -> f64 {
        linear_to_db(self.multipath_gain.norm_sqr()) + self.fading_db
    }
}

/// Per-trial channel-realization engine: one multipath realization per
/// device (static environment), one temporal-fading process per device
/// evolved across rounds, and a fresh Doppler draw per device per round.
#[derive(Debug, Clone)]
pub struct ChannelRealizer {
    model: ChannelModel,
    /// Per-device `(composite multipath gain, excess delay)` for the trial.
    statics: Vec<(Complex64, f64)>,
    fading: Vec<TemporalFading>,
    rng: StdRng,
}

impl ChannelRealizer {
    /// Creates the realizer for one trial. Every scheme evaluating the same
    /// `(model, num_devices, trial_seed)` triple observes the exact same
    /// channel draws.
    pub fn for_trial(model: &ChannelModel, num_devices: usize, trial_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(trial_seed ^ CHANNEL_STREAM_SALT);
        let statics = (0..num_devices)
            .map(|_| match &model.multipath {
                Some(profile) => {
                    let ch = profile.realize(&mut rng);
                    (ch.flat_gain(), ch.mean_excess_delay_s())
                }
                None => (Complex64::ONE, 0.0),
            })
            .collect();
        let fading =
            vec![TemporalFading::new(model.fading_sigma_db, model.fading_correlation); num_devices];
        Self {
            model: *model,
            statics,
            fading,
            rng,
        }
    }

    /// Number of devices this realizer covers.
    pub fn num_devices(&self) -> usize {
        self.statics.len()
    }

    /// Advances every per-device process by one round and returns the
    /// realizations in device order.
    pub fn next_round(&mut self) -> Vec<RoundChannel> {
        let model = self.model;
        self.statics
            .iter()
            .zip(self.fading.iter_mut())
            .map(|(&(gain, delay), fading)| {
                let fading_db = fading.step(&mut self.rng);
                let radial_mps = if model.max_speed_mps > 0.0 {
                    self.rng
                        .gen_range(-model.max_speed_mps..=model.max_speed_mps)
                } else {
                    0.0
                };
                RoundChannel {
                    multipath_gain: gain,
                    excess_delay_s: delay,
                    fading_db,
                    doppler_hz: backscatter_doppler_shift_hz(radial_mps, model.carrier_hz),
                }
            })
            .collect()
    }
}

/// Ground truth of one simulated round.
#[derive(Debug, Clone)]
pub struct RoundTruth {
    /// The round outcome in protocol terms (scheduled / detected / clean /
    /// bit counts), ready for [`netscatter::protocol::NetworkProtocol`].
    pub outcome: RoundOutcome,
    /// Per scheduled device (deployment order): whether its payload was
    /// decoded without a single bit error. Devices that skipped the round
    /// count as not delivered.
    pub delivered: Vec<bool>,
    /// Per scheduled device: whether it decided to transmit this round.
    pub transmitted: Vec<bool>,
}

/// Everything [`FullRoundNetwork::simulate_round_with`] knows about one
/// round: the protocol-level truth plus the raw bits on both ends of the
/// channel, per device.
#[derive(Debug, Clone)]
pub struct RoundDetail {
    /// The protocol-level round truth (raw-bit delivery semantics).
    pub truth: RoundTruth,
    /// What each device put on the air (`None` for skipped/re-associated).
    pub sent: Vec<Option<Vec<bool>>>,
    /// What the receiver recovered per device (`None` when the device
    /// skipped or its bin was not detected).
    pub received: Vec<Option<Vec<bool>>>,
}

/// The sample-level round simulator for one trial: a deployment subset with
/// live device state, a channel realizer, and the AP receiver.
#[derive(Debug, Clone)]
pub struct FullRoundNetwork {
    profile: PhyProfile,
    model: ChannelModel,
    /// Static downlink/uplink budgets of the scheduled devices
    /// (deployment order).
    downlink_dbm: Vec<f64>,
    uplink_dbm: Vec<f64>,
    devices: Vec<BackscatterDevice>,
    /// Power-aware cyclic-shift assignment (deployment order).
    bins: Vec<usize>,
    realizer: ChannelRealizer,
    rng: StdRng,
    receiver: ConcurrentReceiver,
    synth: ChirpSynthesizer,
    noise_floor_dbm: f64,
    /// Reused round waveform buffer.
    stream: Vec<Complex64>,
    /// Reused one-symbol synthesis scratch.
    scratch: Vec<Complex64>,
}

impl FullRoundNetwork {
    /// Builds the simulator for the first `num_devices` devices of a
    /// deployment. Cyclic shifts are assigned power-aware: devices sorted by
    /// descending uplink RSSI fill the allocator's interleaved slots, so
    /// similar-strength devices are spectral neighbours and the strongest
    /// and weakest ends sit half the spectrum apart (§3.2.3).
    pub fn for_trial(
        deployment: &Deployment,
        num_devices: usize,
        model: &ChannelModel,
        trial_seed: u64,
    ) -> Self {
        let profile = deployment.config.profile;
        let num_devices = num_devices
            .min(deployment.devices.len())
            .min(profile.modulation.num_bins() / profile.skip.max(1));
        let links = &deployment.devices[..num_devices];
        let mut rng = StdRng::seed_from_u64(trial_seed ^ LOCAL_STREAM_SALT);
        // Power-aware slots: rank by descending uplink strength, then map
        // ranks through the allocator's interleaved slot layout. Ranks are
        // *strided* across the full slot space so a sparsely loaded network
        // still puts its strongest and weakest devices half the spectrum
        // apart — packing n ≪ capacity devices into the first n slots would
        // leave a 35 dB-weaker device within a few bins of the strongest
        // one's side lobes.
        let allocator = CyclicShiftAllocator::new(&profile);
        let stride = (allocator.total_slots() / num_devices.max(1)).max(1);
        let mut order: Vec<usize> = (0..num_devices).collect();
        order.sort_by(|&a, &b| {
            links[b]
                .uplink_rssi_dbm
                .total_cmp(&links[a].uplink_rssi_dbm)
        });
        let mut bins = vec![0usize; num_devices];
        for (rank, &device) in order.iter().enumerate() {
            bins[device] = allocator.slot_to_bin(rank * stride);
        }
        let devices: Vec<BackscatterDevice> = links
            .iter()
            .zip(&bins)
            .map(|(link, &bin)| {
                let mut dev = BackscatterDevice::new(
                    DeviceConfig::default(),
                    profile,
                    &model.impairments,
                    &mut rng,
                );
                dev.accept_assignment(bin, link.downlink_rssi_dbm);
                dev
            })
            .collect();
        let mut receiver =
            ConcurrentReceiver::new(&profile).expect("profile zero-padding is a power of two");
        if model.noise {
            // Detection floor at the modulation's minimum demodulation SNR
            // over the (unit-power) noise: a device's dechirped peak is
            // `a²·N²` and a noise bin averages `N`, so requiring
            // `peak > S_req·N²` is the same post-FFT SNR test the Table 1
            // sensitivities encode.
            receiver.detection_floor_fraction =
                db_to_linear(required_snr_db(profile.modulation.spreading_factor));
        }
        Self {
            profile,
            model: *model,
            downlink_dbm: links.iter().map(|l| l.downlink_rssi_dbm).collect(),
            uplink_dbm: links.iter().map(|l| l.uplink_rssi_dbm).collect(),
            devices,
            bins,
            realizer: ChannelRealizer::for_trial(model, num_devices, trial_seed),
            rng,
            receiver,
            synth: ChirpSynthesizer::new(profile.modulation.chirp()),
            noise_floor_dbm: thermal_noise_dbm(
                profile.modulation.bandwidth_hz,
                profile.modulation.noise_figure_db,
            ),
            stream: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of scheduled devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The power-aware cyclic-shift assignment, in deployment order.
    pub fn assigned_bins(&self) -> &[usize] {
        &self.bins
    }

    /// The detection floor fraction this simulator's receiver runs with
    /// (the post-FFT SNR test when noise is modeled; the receiver default
    /// otherwise). The streaming gateway mirrors it so streaming and batch
    /// decode score identically.
    pub fn detection_floor_fraction(&self) -> f64 {
        self.receiver.detection_floor_fraction
    }

    /// Whether the channel model adds AWGN at the thermal floor.
    pub fn noise_enabled(&self) -> bool {
        self.model.noise
    }

    /// The duration of one round's waveform in seconds (preamble plus
    /// `payload_bits` payload symbols at the profile's symbol rate).
    pub fn round_duration_s(&self, payload_bits: usize) -> f64 {
        (PREAMBLE_SYMBOLS + payload_bits) as f64 * self.profile.modulation.symbol_duration_s()
    }

    /// Synthesizes the next round's superposed waveform into the internal
    /// buffer — query reception, power adjustment, per-device channel
    /// realization and chirp synthesis — *without* AWGN or decoding, and
    /// returns what every device put on the air (`None` for devices that
    /// skipped or re-associated). The waveform is available through
    /// [`Self::round_waveform`] until the next synthesis.
    ///
    /// [`Self::simulate_round`] builds on this; the streaming gateway's
    /// round synthesizer calls it directly to splice rounds into a
    /// continuous stream.
    pub fn synthesize_round(&mut self, payload_bits: usize) -> Vec<Option<Vec<bool>>> {
        self.synthesize_round_with(payload_bits, None)
    }

    /// [`Self::synthesize_round`] with an optional payload provider: when
    /// given, each transmitting device's `payload_bits` on-air bits come
    /// from `provider(device_index)` (the coded link layer supplies FEC
    /// frames this way) instead of the local RNG's fair-coin draws. With
    /// `None` the RNG stream is consumed exactly as the seed behavior did,
    /// so every uncoded golden result is untouched.
    pub fn synthesize_round_with(
        &mut self,
        payload_bits: usize,
        mut provider: Option<&mut dyn FnMut(usize) -> Vec<bool>>,
    ) -> Vec<Option<Vec<bool>>> {
        let n = self.profile.modulation.num_bins();
        let num_devices = self.devices.len();
        let total = (PREAMBLE_SYMBOLS + payload_bits) * n;
        self.stream.clear();
        self.stream.resize(total, Complex64::ZERO);
        let channels = self.realizer.next_round();
        let mut sent: Vec<Option<Vec<bool>>> = Vec::with_capacity(num_devices);
        for (i, &ch) in channels.iter().enumerate() {
            // Downlink as the device's envelope detector sees it this round
            // (reciprocal fading on top of the static budget).
            let downlink_dbm = self.downlink_dbm[i] + ch.fading_db;
            let gain = match self.devices[i].power_adjust_and_decide(downlink_dbm) {
                TransmitDecision::Transmit(gain) => gain,
                TransmitDecision::Skip => {
                    sent.push(None);
                    continue;
                }
                TransmitDecision::Reassociate => {
                    // The association exchange happens out of band; the
                    // device rejoins on the same shift with a fresh power
                    // baseline and sits this round out.
                    self.devices[i].accept_assignment(self.bins[i], downlink_dbm);
                    sent.push(None);
                    continue;
                }
            };
            let packet = self.devices[i].packet_impairments(&self.model.impairments, &mut self.rng);
            let timing_offset_s = packet.timing_offset_s + ch.excess_delay_s;
            let freq_offset_hz = packet.freq_offset_hz + ch.doppler_hz;
            let bits: Vec<bool> = match provider.as_mut() {
                Some(supply) => {
                    let bits = supply(i);
                    assert_eq!(
                        bits.len(),
                        payload_bits,
                        "payload provider must fill the on-air budget exactly"
                    );
                    bits
                }
                None => (0..payload_bits).map(|_| self.rng.gen_bool(0.5)).collect(),
            };
            // Amplitude relative to unit noise power: uplink budget, fading
            // (both legs), the device's chosen backscatter gain, and the
            // model's SNR boost. The multipath composite gain contributes
            // magnitude *and* phase.
            let amp_db = self.uplink_dbm[i] + self.model.snr_boost_db + ch.fading_db + gain.db()
                - self.noise_floor_dbm;
            let gain_c = ch.multipath_gain.scale(db_to_amplitude(amp_db));
            self.superpose_device(i, timing_offset_s, freq_offset_hz, gain_c, &bits, n);
            sent.push(Some(bits));
        }
        sent
    }

    /// The waveform of the most recent [`Self::synthesize_round`] (noise
    /// free; AWGN is the caller's concern when splicing into a stream).
    pub fn round_waveform(&self) -> &[Complex64] {
        &self.stream
    }

    /// Simulates one complete round — query reception, power adjustment,
    /// waveform synthesis and superposition, AWGN, and the real
    /// [`ConcurrentReceiver`] decode — and returns the per-device truth.
    ///
    /// Every scheduled device draws `payload_bits` random payload bits; a
    /// device is *delivered* when the receiver detected it and decoded all
    /// of its bits correctly.
    pub fn simulate_round(&mut self, payload_bits: usize) -> RoundTruth {
        self.simulate_round_with(payload_bits, None).truth
    }

    /// [`Self::simulate_round`] with a payload provider (see
    /// [`Self::synthesize_round_with`]) and the full per-device detail: what
    /// each device put on the air and what the receiver recovered for its
    /// bin. The coded link layer feeds FEC frames in and runs the frame
    /// decode + CRC over what comes back.
    pub fn simulate_round_with(
        &mut self,
        payload_bits: usize,
        provider: Option<&mut dyn FnMut(usize) -> Vec<bool>>,
    ) -> RoundDetail {
        let num_devices = self.devices.len();
        let sent = self.synthesize_round_with(payload_bits, provider);
        if self.model.noise {
            AwgnChannel::with_noise_power(1.0).apply(&mut self.rng, &mut self.stream);
        }
        let round = self
            .receiver
            .decode_round(&self.stream, 0, &self.bins, payload_bits)
            .expect("stream is sized for exactly one round");
        let mut delivered = vec![false; num_devices];
        let mut transmitted = vec![false; num_devices];
        let mut received: Vec<Option<Vec<bool>>> = vec![None; num_devices];
        let mut detected = 0usize;
        let mut correct_bits = 0usize;
        let mut transmitted_bits = 0usize;
        for i in 0..num_devices {
            let Some(bits) = &sent[i] else { continue };
            transmitted[i] = true;
            transmitted_bits += bits.len();
            let Some(decoded) = round.bits_for(self.bins[i]) else {
                continue;
            };
            detected += 1;
            let matching = decoded.iter().zip(bits).filter(|(a, b)| a == b).count();
            correct_bits += matching;
            delivered[i] = decoded.len() == bits.len() && matching == bits.len();
            received[i] = Some(decoded.to_vec());
        }
        let decoded_clean = delivered.iter().filter(|d| **d).count();
        RoundDetail {
            truth: RoundTruth {
                outcome: RoundOutcome {
                    scheduled: num_devices,
                    detected,
                    decoded_clean,
                    correct_bits,
                    // Only bits that actually went on the air: devices that
                    // skipped (or re-associated) this round transmit nothing,
                    // so they must not show up as phantom bit errors.
                    transmitted_bits,
                },
                delivered,
                transmitted,
            },
            sent,
            received,
        }
    }

    /// Adds one device's full packet (preamble + payload) onto the round
    /// buffer. The up- and downchirp symbols are synthesized once each into
    /// the scratch buffer and then accumulated with the complex channel
    /// gain, so the steady-state cost is two chirp syntheses plus one
    /// multiply-accumulate pass per occupied symbol.
    fn superpose_device(
        &mut self,
        device: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        gain: Complex64,
        bits: &[bool],
        n: usize,
    ) {
        let bin = self.bins[device];
        self.synth.impaired_upchirp_into(
            bin,
            timing_offset_s,
            freq_offset_hz,
            1.0,
            &mut self.scratch,
        );
        for symbol in 0..PREAMBLE_UPCHIRPS {
            accumulate_scaled(
                &mut self.stream[symbol * n..(symbol + 1) * n],
                &self.scratch,
                gain,
            );
        }
        for (symbol, &bit) in bits.iter().enumerate() {
            if bit {
                let start = (PREAMBLE_SYMBOLS + symbol) * n;
                accumulate_scaled(&mut self.stream[start..start + n], &self.scratch, gain);
            }
        }
        self.synth.impaired_downchirp_into(
            bin,
            timing_offset_s,
            freq_offset_hz,
            1.0,
            &mut self.scratch,
        );
        for symbol in 0..PREAMBLE_DOWNCHIRPS {
            let start = (PREAMBLE_UPCHIRPS + symbol) * n;
            accumulate_scaled(&mut self.stream[start..start + n], &self.scratch, gain);
        }
    }
}

/// `out[i] += symbol[i] · gain` — the complex-gain superposition primitive.
fn accumulate_scaled(out: &mut [Complex64], symbol: &[Complex64], gain: Complex64) {
    for (o, s) in out.iter_mut().zip(symbol) {
        *o += *s * gain;
    }
}

/// Draws the per-trial seed from a shard RNG. Exactly one `u64` per trial
/// is consumed, so every scheme sharing the shard stream derives the same
/// sequence of trial seeds.
pub fn trial_seed(shard_rng: &mut StdRng) -> u64 {
    shard_rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;

    fn deployment(n: usize) -> Deployment {
        Deployment::generate(DeploymentConfig::office(n), &mut StdRng::seed_from_u64(17))
    }

    #[test]
    fn realizer_streams_are_identical_for_a_trial_seed() {
        let model = ChannelModel::office();
        let mut a = ChannelRealizer::for_trial(&model, 8, 99);
        let mut b = ChannelRealizer::for_trial(&model, 8, 99);
        for _ in 0..3 {
            let ra = a.next_round();
            let rb = b.next_round();
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.multipath_gain, y.multipath_gain);
                assert_eq!(x.fading_db, y.fading_db);
                assert_eq!(x.doppler_hz, y.doppler_hz);
                assert_eq!(x.excess_delay_s, y.excess_delay_s);
            }
        }
        assert_eq!(a.num_devices(), 8);
    }

    #[test]
    fn pristine_channel_is_static_and_clean() {
        let model = ChannelModel::pristine();
        let mut realizer = ChannelRealizer::for_trial(&model, 4, 5);
        for _ in 0..3 {
            for ch in realizer.next_round() {
                assert_eq!(ch.multipath_gain, Complex64::ONE);
                assert_eq!(ch.excess_delay_s, 0.0);
                assert_eq!(ch.fading_db, 0.0);
                assert_eq!(ch.doppler_hz, 0.0);
                assert_eq!(ch.gain_db(), 0.0);
            }
        }
    }

    #[test]
    fn office_channel_realizations_have_multipath_and_bounded_fading() {
        let model = ChannelModel::office();
        let mut realizer = ChannelRealizer::for_trial(&model, 64, 3);
        let rounds: Vec<Vec<RoundChannel>> = (0..20).map(|_| realizer.next_round()).collect();
        // Multipath statics persist across rounds within the trial.
        for round in &rounds[1..] {
            for (a, b) in round.iter().zip(&rounds[0]) {
                assert_eq!(a.multipath_gain, b.multipath_gain);
                assert_eq!(a.excess_delay_s, b.excess_delay_s);
            }
        }
        // Fading evolves and stays in the Fig. 9 envelope.
        let mut moved = 0;
        for (a, b) in rounds[1].iter().zip(&rounds[0]) {
            if a.fading_db != b.fading_db {
                moved += 1;
            }
            assert!(a.fading_db.abs() < 12.0);
        }
        assert!(moved > 32, "fading froze: only {moved} devices moved");
    }

    #[test]
    fn full_round_at_high_snr_delivers_every_transmitter() {
        let dep = deployment(64);
        let mut net = FullRoundNetwork::for_trial(&dep, 16, &ChannelModel::pristine(), 7);
        let truth = net.simulate_round(8);
        assert_eq!(truth.outcome.scheduled, 16);
        let transmitted = truth.transmitted.iter().filter(|t| **t).count();
        assert!(transmitted >= 15, "only {transmitted} devices transmitted");
        assert_eq!(truth.outcome.decoded_clean, transmitted);
        assert_eq!(truth.outcome.detected, transmitted);
        assert_eq!(
            truth.outcome.correct_bits,
            transmitted * 8,
            "every transmitted bit must decode at high SNR"
        );
    }

    #[test]
    fn payload_provider_controls_the_on_air_bits() {
        let dep = deployment(64);
        let mut net = FullRoundNetwork::for_trial(&dep, 8, &ChannelModel::pristine(), 7);
        let pattern: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let mut provider = |device: usize| {
            let mut bits = pattern.clone();
            bits[0] = device % 2 == 0;
            bits
        };
        let detail = net.simulate_round_with(16, Some(&mut provider));
        let mut checked = 0;
        for (i, sent) in detail.sent.iter().enumerate() {
            let Some(sent) = sent else { continue };
            assert_eq!(sent[0], i % 2 == 0, "provider bits reach the air");
            assert_eq!(&sent[1..], &pattern[1..]);
            // At pristine SNR the receiver recovers exactly what went out.
            assert_eq!(detail.received[i].as_deref(), Some(&sent[..]));
            checked += 1;
        }
        assert!(checked >= 7, "only {checked} devices transmitted");
    }

    #[test]
    fn assigned_bins_are_distinct_and_power_ordered() {
        let dep = deployment(64);
        let net = FullRoundNetwork::for_trial(&dep, 64, &ChannelModel::office(), 1);
        let bins = net.assigned_bins();
        let mut seen = std::collections::HashSet::new();
        for &b in bins {
            assert!(seen.insert(b), "bin {b} assigned twice");
        }
        // The strongest device sits on the rank-0 slot (bin 0).
        let strongest = (0..64)
            .max_by(|&a, &b| {
                dep.devices[a]
                    .uplink_rssi_dbm
                    .total_cmp(&dep.devices[b].uplink_rssi_dbm)
            })
            .unwrap();
        assert_eq!(bins[strongest], 0);
    }

    #[test]
    fn trial_is_deterministic_for_a_seed() {
        let dep = deployment(32);
        let model = ChannelModel::office();
        let run = |seed: u64| {
            let mut net = FullRoundNetwork::for_trial(&dep, 32, &model, seed);
            (0..2).map(|_| net.simulate_round(12)).collect::<Vec<_>>()
        };
        let a = run(11);
        let b = run(11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.delivered, y.delivered);
        }
        let c = run(12);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.outcome != y.outcome),
            "different seeds should change at least one round"
        );
    }
}

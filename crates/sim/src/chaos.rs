//! The deterministic fault-injection chaos harness: `netscatter stress
//! --chaos`.
//!
//! Runs a mixed fleet against a live `netscatterd`: the usual healthy
//! synthesized streams (scored for bit identity exactly like plain
//! `stress`) plus one misbehaving connection per fault kind in
//! [`FaultKind`]. The attack schedule is a pure function of `--seed`, so
//! a failing CI run reproduces locally byte for byte.
//!
//! The harness fails unless *all* of the following hold:
//!
//! * the daemon survives the whole matrix (it keeps serving, and its
//!   metrics endpoint still answers afterwards);
//! * every healthy stream — including the ragged-split one, whose writes
//!   are deliberately never sample-aligned — stays bit-identical to the
//!   batch pipeline's decode with zero ring drops;
//! * every faulted connection that can still read its socket receives a
//!   terminal `end`/`error` record with the expected machine-readable
//!   `code` (header faults, stalls, the injected worker panic);
//! * no serving thread leaks: after a grace period every
//!   `netscatterd_stream_active` metric reports 0;
//! * the `--max-conns` admission cap rejects an over-cap connection with
//!   an immediate `code:"overloaded"` record (checked on a side daemon
//!   in-process, or against `--expect-max-conns` for `--connect`).
//!
//! Against `--connect`, the external daemon must run with
//! `--enable-fault-injection` and short `--header-timeout` /
//! `--idle-timeout` values, and should be dedicated to the harness (the
//! leak check expects every stream to be finished afterwards).

use crate::deployment::{Deployment, DeploymentConfig};
use crate::stress::{
    check_metrics, records_of, score_healthy, stream_config, synthesize, StressOptions,
    SynthStream, DEPLOYMENT_SEED,
};
use netscatter::json::Json;
use netscatter_daemon::client::{self, connect_with_retry, RetryPolicy};
use netscatter_daemon::protocol::{self, code, StreamHeader};
use netscatter_daemon::{Daemon, DaemonConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Watchdog on every socket read: a daemon that never answers (or never
/// times a faulted stream out) fails the harness instead of hanging it.
const READ_WATCHDOG: Duration = Duration::from_secs(30);

/// Grace period for the post-matrix leak check: how long the daemon gets
/// to notice dropped sockets and mark their streams inactive.
const LEAK_GRACE: Duration = Duration::from_secs(10);

/// The fault matrix. One faulted connection per kind runs concurrently
/// with the healthy fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Some header bytes, then the connection closes — the daemon must
    /// answer `header_truncated`.
    TruncatedHeader,
    /// A header line that is not JSON — `bad_header`.
    GarbageHeader,
    /// A header line past the 64 KiB bound, never newline-terminated —
    /// `header_too_large`.
    OversizedHeader,
    /// Slowloris: header bytes trickled slower than the header deadline —
    /// `header_timeout`.
    SlowHeader,
    /// A valid stream that goes silent mid-ingest with the socket open —
    /// an `end` record coded `idle_timeout`.
    MidStreamStall,
    /// A valid stream whose socket is dropped (no half-close) between
    /// rounds — the daemon must reap it without a client to answer.
    MidStreamDisconnect,
    /// A valid stream dropped mid-round *and* mid-sample (the cut is not
    /// 8-byte aligned) — worst-case abrupt death.
    KillMidRound,
    /// A healthy stream written in seed-deterministic ragged pieces that
    /// are never sample-aligned — must stay bit-identical to batch
    /// decode.
    RaggedSplits,
    /// A header-injected decode-worker panic (`fault_panic_span`) — the
    /// engine's supervision must surface `worker_panic` cleanly.
    WorkerPanic,
}

impl FaultKind {
    const ALL: [FaultKind; 9] = [
        FaultKind::TruncatedHeader,
        FaultKind::GarbageHeader,
        FaultKind::OversizedHeader,
        FaultKind::SlowHeader,
        FaultKind::MidStreamStall,
        FaultKind::MidStreamDisconnect,
        FaultKind::KillMidRound,
        FaultKind::RaggedSplits,
        FaultKind::WorkerPanic,
    ];

    fn label(self) -> &'static str {
        match self {
            FaultKind::TruncatedHeader => "truncated-header",
            FaultKind::GarbageHeader => "garbage-header",
            FaultKind::OversizedHeader => "oversized-header",
            FaultKind::SlowHeader => "slow-header",
            FaultKind::MidStreamStall => "mid-stream-stall",
            FaultKind::MidStreamDisconnect => "mid-stream-disconnect",
            FaultKind::KillMidRound => "kill-mid-round",
            FaultKind::RaggedSplits => "ragged-splits",
            FaultKind::WorkerPanic => "worker-panic",
        }
    }
}

/// What one faulted connection produced.
struct FaultOutcome {
    kind: FaultKind,
    /// Expectation violations (empty = the daemon handled the fault as
    /// specified).
    failures: Vec<String>,
    /// Human summary for the report.
    detail: String,
}

/// Opens a chaos connection: retried connect (exercising the client's
/// backoff path), watchdog read timeout, bounded writes.
fn chaos_connect(addr: &str, seed: u64) -> std::io::Result<TcpStream> {
    let sock = connect_with_retry(addr, &RetryPolicy::new(4, seed))?;
    sock.set_read_timeout(Some(READ_WATCHDOG))?;
    sock.set_write_timeout(Some(Duration::from_secs(10)))?;
    let _ = sock.set_nodelay(true);
    Ok(sock)
}

/// Reads NDJSON lines from `sock` until EOF (or the read watchdog trips).
fn drain_lines(sock: &TcpStream) -> Vec<String> {
    let Ok(clone) = sock.try_clone() else {
        return Vec::new();
    };
    let mut lines = Vec::new();
    for line in BufReader::new(clone).lines() {
        match line {
            Ok(l) => lines.push(l),
            Err(_) => break,
        }
    }
    lines
}

/// Requires the last record of `kind` in `lines` to carry `code`; any
/// other shape is an expectation violation.
fn expect_terminal(label: &str, lines: &[String], kind: &str, expected: &str) -> Vec<String> {
    let records = records_of(lines, kind);
    let Some(last) = records.last() else {
        return vec![format!(
            "{label}: expected a terminal {kind:?} record with code {expected:?}, got {} lines: {lines:?}",
            lines.len()
        )];
    };
    let got = Json::parse(last)
        .ok()
        .and_then(|d| d.get("code").and_then(Json::as_str).map(String::from));
    if got.as_deref() == Some(expected) {
        Vec::new()
    } else {
        vec![format!(
            "{label}: terminal {kind:?} record carries code {got:?}, expected {expected:?} ({last})"
        )]
    }
}

/// Header faults: sends `bytes` (optionally half-closing after), then
/// checks the daemon's terminal error record.
fn header_fault(
    addr: &str,
    seed: u64,
    kind: FaultKind,
    bytes: &[u8],
    half_close: bool,
    expected: &str,
) -> FaultOutcome {
    let label = kind.label();
    let mut failures = Vec::new();
    let mut detail = String::new();
    match chaos_connect(addr, seed) {
        Ok(mut sock) => {
            // The daemon may cut us mid-write (oversized headers): a write
            // error past that point is the daemon doing its job.
            let _ = sock.write_all(bytes);
            if half_close {
                let _ = sock.shutdown(Shutdown::Write);
            }
            let lines = drain_lines(&sock);
            failures.extend(expect_terminal(label, &lines, "error", expected));
            detail = format!("{} record(s), expected error {expected}", lines.len());
        }
        Err(e) => failures.push(format!("{label}: connect failed: {e}")),
    }
    FaultOutcome {
        kind,
        failures,
        detail,
    }
}

/// Slowloris: trickles header bytes slower than any sane header deadline
/// until the daemon cuts the connection with `header_timeout`.
fn slow_header(addr: &str, seed: u64, header: &StreamHeader) -> FaultOutcome {
    let kind = FaultKind::SlowHeader;
    let label = kind.label();
    let mut failures = Vec::new();
    let mut detail = String::new();
    match chaos_connect(addr, seed) {
        Ok(mut sock) => {
            let mut line = header.to_json_line();
            line.push('\n');
            // One byte per 100 ms: a 2 s header deadline fires after ~20
            // bytes. Repeat the line if the daemon is (mis)configured with
            // a deadline longer than one pass; the watchdog bounds us.
            let bytes: Vec<u8> = line.as_bytes().iter().copied().cycle().take(600).collect();
            let started = Instant::now();
            for b in &bytes {
                if sock.write_all(std::slice::from_ref(b)).is_err() {
                    break; // the daemon hung up — exactly what we want
                }
                std::thread::sleep(Duration::from_millis(100));
                if started.elapsed() > READ_WATCHDOG {
                    break;
                }
            }
            let lines = drain_lines(&sock);
            failures.extend(expect_terminal(
                label,
                &lines,
                "error",
                code::HEADER_TIMEOUT,
            ));
            detail = format!(
                "cut after {:.1}s of trickling",
                started.elapsed().as_secs_f64()
            );
        }
        Err(e) => failures.push(format!("{label}: connect failed: {e}")),
    }
    FaultOutcome {
        kind,
        failures,
        detail,
    }
}

/// Sends the header plus a prefix of the samples, then goes silent with
/// the socket open: the daemon's idle deadline must end the stream with
/// `idle_timeout` (decoding everything received first).
fn mid_stream_stall(addr: &str, seed: u64, stream: &SynthStream) -> FaultOutcome {
    let kind = FaultKind::MidStreamStall;
    let label = kind.label();
    let mut failures = Vec::new();
    let mut detail = String::new();
    match chaos_connect(addr, seed) {
        Ok(mut sock) => {
            let mut line = stream.header.to_json_line();
            line.push('\n');
            let bytes = protocol::encode_cf32le(&stream.samples);
            let prefix = &bytes[..bytes.len() / 3 / 8 * 8];
            if let Err(e) = sock.write_all(line.as_bytes()).and(sock.write_all(prefix)) {
                failures.push(format!("{label}: upload failed: {e}"));
            } else {
                // No half-close: from the daemon's side the stream is
                // alive but silent. Wait for it to time us out.
                let lines = drain_lines(&sock);
                failures.extend(expect_terminal(label, &lines, "end", code::IDLE_TIMEOUT));
                detail = format!("{} record(s) after the stall", lines.len());
            }
        }
        Err(e) => failures.push(format!("{label}: connect failed: {e}")),
    }
    FaultOutcome {
        kind,
        failures,
        detail,
    }
}

/// Sends the header plus `cut` bytes of samples, then drops the socket
/// outright — no half-close, no reads. The daemon must reap the stream on
/// its own; the post-matrix leak check verifies it did.
fn abrupt_disconnect(
    addr: &str,
    seed: u64,
    kind: FaultKind,
    stream: &SynthStream,
    cut: usize,
) -> FaultOutcome {
    let label = kind.label();
    let mut failures = Vec::new();
    match chaos_connect(addr, seed) {
        Ok(mut sock) => {
            let mut line = stream.header.to_json_line();
            line.push('\n');
            let bytes = protocol::encode_cf32le(&stream.samples);
            let cut = cut.min(bytes.len());
            if let Err(e) = sock
                .write_all(line.as_bytes())
                .and(sock.write_all(&bytes[..cut]))
            {
                failures.push(format!("{label}: upload failed: {e}"));
            }
            // Drop: the daemon discovers the death on its next read.
        }
        Err(e) => failures.push(format!("{label}: connect failed: {e}")),
    }
    FaultOutcome {
        kind,
        failures,
        detail: "socket dropped; leak check verifies the reap".to_string(),
    }
}

/// Uploads a full healthy stream in seed-deterministic ragged pieces
/// (1–37 bytes, deliberately never a multiple of the 8-byte sample) and
/// returns the transcript — scored for bit identity by the caller. The
/// upload is paced to the stream's sample rate: the splits are the
/// attack, not the throughput (zero ring drops is part of the score).
fn ragged_upload(addr: &str, seed: u64, stream: &SynthStream) -> Result<Vec<String>, String> {
    let sock = chaos_connect(addr, seed).map_err(|e| format!("connect failed: {e}"))?;
    let reader = {
        let clone = sock.try_clone().map_err(|e| e.to_string())?;
        std::thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(clone).lines() {
                match line {
                    Ok(l) => lines.push(l),
                    Err(_) => break,
                }
            }
            lines
        })
    };
    let mut sock = sock;
    let mut line = stream.header.to_json_line();
    line.push('\n');
    sock.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
    let bytes = protocol::encode_cf32le(&stream.samples);
    let rate = stream.header.sample_rate_hz.unwrap_or(500e3);
    let bytes_per_sec = rate * 8.0;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_caf3);
    let mut cursor = 0usize;
    let started = Instant::now();
    while cursor < bytes.len() {
        let mut n = rng.gen_range(1usize..=37).min(bytes.len() - cursor);
        // Keep the pieces off sample boundaries whenever there is room:
        // the daemon's carry logic is the thing under test.
        if n % 8 == 0 && cursor + n < bytes.len() {
            n += 1;
        }
        sock.write_all(&bytes[cursor..cursor + n])
            .map_err(|e| e.to_string())?;
        cursor += n;
        let due = cursor as f64 / bytes_per_sec;
        let elapsed = started.elapsed().as_secs_f64();
        if due > elapsed + 1e-3 {
            std::thread::sleep(Duration::from_secs_f64(due - elapsed));
        }
    }
    sock.shutdown(Shutdown::Write).map_err(|e| e.to_string())?;
    Ok(reader.join().unwrap_or_default())
}

/// Streams a full payload under a header that injects a decode-worker
/// panic on the first span: the engine supervision must answer with a
/// `worker_panic` error record, and the daemon must keep serving.
fn worker_panic(addr: &str, seed: u64, stream: &SynthStream) -> FaultOutcome {
    let kind = FaultKind::WorkerPanic;
    let label = kind.label();
    let mut failures = Vec::new();
    let mut detail = String::new();
    match chaos_connect(addr, seed) {
        Ok(sock) => {
            let reader = sock.try_clone().map(|clone| {
                std::thread::spawn(move || {
                    let mut lines = Vec::new();
                    for line in BufReader::new(clone).lines() {
                        match line {
                            Ok(l) => lines.push(l),
                            Err(_) => break,
                        }
                    }
                    lines
                })
            });
            let mut sock = sock;
            let mut header = stream.header.clone();
            header.fault_panic_span = Some(0);
            let mut line = header.to_json_line();
            line.push('\n');
            // The daemon tears the stream down as soon as the panic
            // cascades, so mid-upload write errors are expected.
            let _ = sock.write_all(line.as_bytes());
            let bytes = protocol::encode_cf32le(&stream.samples);
            for chunk in bytes.chunks(1 << 14) {
                if sock.write_all(chunk).is_err() {
                    break;
                }
            }
            let _ = sock.shutdown(Shutdown::Write);
            let lines = match reader {
                Ok(handle) => handle.join().unwrap_or_default(),
                Err(e) => {
                    failures.push(format!("{label}: socket clone failed: {e}"));
                    Vec::new()
                }
            };
            if let Some(error) = records_of(&lines, "error").last() {
                let got = Json::parse(error)
                    .ok()
                    .and_then(|d| d.get("code").and_then(Json::as_str).map(String::from));
                if got.as_deref() == Some(code::FAULT_INJECTION_DISABLED) {
                    failures.push(format!(
                        "{label}: daemon refused the injection — start it with --enable-fault-injection"
                    ));
                }
            }
            failures.extend(expect_terminal(label, &lines, "error", code::WORKER_PANIC));
            detail = format!("{} record(s), supervision answered", lines.len());
        }
        Err(e) => failures.push(format!("{label}: connect failed: {e}")),
    }
    FaultOutcome {
        kind,
        failures,
        detail,
    }
}

/// Verifies the admission cap: fills `cap` serving slots with held-open
/// streams, then expects the next connection to be rejected immediately
/// with `code:"overloaded"`.
fn check_admission(addr: &str, cap: usize, template: &StreamHeader, seed: u64) -> Vec<String> {
    let mut failures = Vec::new();
    let mut holders = Vec::new();
    for i in 0..cap {
        match chaos_connect(addr, seed + i as u64) {
            Ok(mut sock) => {
                let mut header = template.clone();
                header.name = format!("chaos-hold{i}");
                let mut line = header.to_json_line();
                line.push('\n');
                if let Err(e) = sock.write_all(line.as_bytes()) {
                    failures.push(format!("admission: holder {i} header failed: {e}"));
                    continue;
                }
                // Wait for `ready`: the holder's serving thread is live
                // and its slot counted before we probe.
                if let Ok(clone) = sock.try_clone() {
                    let mut first = String::new();
                    let _ = BufReader::new(clone).read_line(&mut first);
                    if !first.contains("ready") {
                        failures.push(format!(
                            "admission: holder {i} got {first:?} instead of ready"
                        ));
                    }
                }
                holders.push(sock);
            }
            Err(e) => failures.push(format!("admission: holder {i} connect failed: {e}")),
        }
    }
    if failures.is_empty() {
        match chaos_connect(addr, seed + cap as u64) {
            Ok(sock) => {
                let lines = drain_lines(&sock);
                failures.extend(expect_terminal(
                    "admission",
                    &lines,
                    "error",
                    code::OVERLOADED,
                ));
            }
            Err(e) => failures.push(format!("admission: probe connect failed: {e}")),
        }
    }
    drop(holders);
    failures
}

/// Polls the metrics endpoint until every `netscatterd_stream_active`
/// line reports 0 (all serving threads done) or the grace period runs
/// out. Returns the last document plus any failures.
fn await_quiescence(metrics_addr: &str) -> (String, Vec<String>) {
    let started = Instant::now();
    let mut doc = String::new();
    loop {
        match client::fetch_metrics(metrics_addr) {
            Ok(d) => {
                doc = d;
                let leaked: Vec<&str> = doc
                    .lines()
                    .filter(|l| l.starts_with("netscatterd_stream_active{") && !l.ends_with(" 0"))
                    .collect();
                if leaked.is_empty() {
                    return (doc, Vec::new());
                }
                if started.elapsed() > LEAK_GRACE {
                    return (
                        doc.clone(),
                        leaked
                            .iter()
                            .map(|l| format!("leaked serving thread: {l}"))
                            .collect(),
                    );
                }
            }
            Err(e) => {
                if started.elapsed() > LEAK_GRACE {
                    return (
                        doc,
                        vec![format!("metrics endpoint stopped answering: {e}")],
                    );
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs the chaos harness; returns the process exit code (0 = pass).
pub fn run_chaos(opts: &StressOptions) -> i32 {
    let deployment = Deployment::generate(
        DeploymentConfig::office(opts.devices.max(16)),
        &mut StdRng::seed_from_u64(DEPLOYMENT_SEED),
    );

    // Healthy fleet plus one payload stream per fault that needs real
    // samples — each synthesized from its own offset seed, renamed so the
    // metrics lines read as what they are.
    let healthy: Vec<SynthStream> = (0..opts.streams)
        .map(|i| synthesize(&deployment, opts, i))
        .collect();
    let payload = |tag: &str, offset: usize| {
        let mut s = synthesize(&deployment, opts, 1000 + offset);
        s.name = format!("chaos-{tag}");
        s.header.name = s.name.clone();
        s
    };
    let stall = payload("stall", 0);
    let disconnect = payload("disconnect", 1);
    let kill = payload("kill", 2);
    let ragged = payload("ragged", 3);
    let panic_stream = payload("panic", 4);

    // The daemon under attack: in-process (with chaos deadlines and fault
    // injection enabled) or --connect.
    let local = if opts.connect.is_none() {
        let base = stream_config(&deployment, &healthy[0], opts);
        let rate = healthy[0].header.sample_rate_hz.unwrap_or(500e3);
        let mut config = DaemonConfig::new(base);
        config.default_sample_rate_hz = rate;
        config.header_deadline = Some(Duration::from_millis(1200));
        config.idle_deadline = Some(Duration::from_millis(900));
        config.allow_fault_injection = true;
        match Daemon::start(config) {
            Ok(d) => Some(d),
            Err(e) => {
                eprintln!("chaos: failed to start in-process daemon: {e}");
                return 1;
            }
        }
    } else {
        None
    };
    let ingest = match (&opts.connect, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(d)) => d.ingest_addr().to_string(),
        (None, None) => unreachable!("no daemon"),
    };

    let seed = opts.seed;
    let mut failures: Vec<String> = Vec::new();

    // Launch everything concurrently: the healthy fleet through the
    // ordinary client (with reconnect backoff), the faults through their
    // raw-socket runners.
    let healthy_uploads: Vec<_> = healthy
        .iter()
        .map(|s| {
            let addr = ingest.clone();
            let header = s.header.clone();
            let samples = s.samples.clone();
            let pace = if opts.pace == 0.0 {
                client::Pace::Unlimited
            } else {
                client::Pace::SamplesPerSec(opts.pace * header.sample_rate_hz.unwrap_or(500e3))
            };
            let policy = RetryPolicy::new(4, seed);
            std::thread::spawn(move || {
                client::stream_samples_with_retry(addr, &header, &samples, pace, &policy)
            })
        })
        .collect();
    let ragged_transcript = {
        let addr = ingest.clone();
        let stream = &ragged;
        std::thread::scope(|scope| {
            let ragged_handle = scope.spawn(|| ragged_upload(&addr, seed ^ 0x7a66, stream));
            let fault_handles = [
                scope.spawn(|| {
                    header_fault(
                        &ingest,
                        seed ^ 1,
                        FaultKind::TruncatedHeader,
                        br#"{"stream":"chaos-tru"#,
                        true,
                        code::HEADER_TRUNCATED,
                    )
                }),
                scope.spawn(|| {
                    header_fault(
                        &ingest,
                        seed ^ 2,
                        FaultKind::GarbageHeader,
                        b"these bytes are not a header\n",
                        false,
                        code::BAD_HEADER,
                    )
                }),
                scope.spawn(|| {
                    let oversized = vec![b'a'; 80 << 10];
                    header_fault(
                        &ingest,
                        seed ^ 3,
                        FaultKind::OversizedHeader,
                        &oversized,
                        false,
                        code::HEADER_TOO_LARGE,
                    )
                }),
                scope.spawn(|| slow_header(&ingest, seed ^ 4, &StreamHeader::named("chaos-slow"))),
                scope.spawn(|| mid_stream_stall(&ingest, seed ^ 5, &stall)),
                scope.spawn(|| {
                    let bytes = protocol::encode_cf32le(&disconnect.samples).len();
                    abrupt_disconnect(
                        &ingest,
                        seed ^ 6,
                        FaultKind::MidStreamDisconnect,
                        &disconnect,
                        bytes / 2 / 8 * 8,
                    )
                }),
                scope.spawn(|| {
                    // Mid-round *and* mid-sample: the cut is odd on purpose.
                    let bytes = protocol::encode_cf32le(&kill.samples).len();
                    abrupt_disconnect(
                        &ingest,
                        seed ^ 7,
                        FaultKind::KillMidRound,
                        &kill,
                        (bytes / 3) | 1,
                    )
                }),
                scope.spawn(|| worker_panic(&ingest, seed ^ 8, &panic_stream)),
            ];
            for handle in fault_handles {
                let outcome = handle.join().expect("fault runner panicked");
                if !opts.quiet {
                    println!(
                        "chaos {}: {}",
                        outcome.kind.label(),
                        if outcome.failures.is_empty() {
                            if outcome.detail.is_empty() {
                                "ok".to_string()
                            } else {
                                format!("ok ({})", outcome.detail)
                            }
                        } else {
                            "FAIL".to_string()
                        }
                    );
                }
                failures.extend(outcome.failures);
            }
            ragged_handle.join().expect("ragged upload panicked")
        })
    };

    // Score the healthy fleet and the ragged stream for bit identity.
    let mut served_names: Vec<(String, usize)> = Vec::new();
    for (stream, upload) in healthy.iter().zip(healthy_uploads) {
        match upload.join().expect("healthy upload panicked") {
            Ok(lines) => {
                let scored = score_healthy(&deployment, stream, opts, &lines);
                served_names.push((scored.served_name, stream.header.channel.unwrap_or(0)));
                failures.extend(scored.failures);
                if !opts.quiet {
                    println!("{}", scored.report_line);
                }
            }
            Err(e) => failures.push(format!("stream {}: transport failed: {e}", stream.name)),
        }
    }
    match ragged_transcript {
        Ok(lines) => {
            let scored = score_healthy(&deployment, &ragged, opts, &lines);
            served_names.push((scored.served_name, ragged.header.channel.unwrap_or(0)));
            failures.extend(scored.failures);
            if !opts.quiet {
                println!("{} [ragged splits]", scored.report_line);
            }
        }
        Err(e) => failures.push(format!("ragged-splits: {e}")),
    }

    // Admission: a dedicated max_conns=1 side daemon in-process, or the
    // --connect daemon's declared cap.
    if let Some(_daemon) = &local {
        let base = stream_config(&deployment, &healthy[0], opts);
        let mut config = DaemonConfig::new(base);
        config.metrics = None;
        config.max_conns = 1;
        config.idle_deadline = Some(Duration::from_secs(5));
        match Daemon::start(config) {
            Ok(side) => {
                failures.extend(check_admission(
                    &side.ingest_addr().to_string(),
                    1,
                    &healthy[0].header,
                    seed ^ 0xada1,
                ));
                side.shutdown();
            }
            Err(e) => failures.push(format!("admission: side daemon failed to start: {e}")),
        }
    } else if opts.expect_max_conns > 0 {
        failures.extend(check_admission(
            &ingest,
            opts.expect_max_conns,
            &healthy[0].header,
            seed ^ 0xada1,
        ));
    } else if !opts.quiet {
        println!("chaos admission: skipped (pass --expect-max-conns with --connect)");
    }

    // Survival, consistency, leaks: the metrics endpoint must still
    // answer, parse cleanly, report every scored stream, and show zero
    // active serving threads once the grace period ends.
    let metrics_addr = match (&local, &opts.metrics_addr) {
        (_, Some(addr)) => Some(addr.clone()),
        (Some(d), None) => d.metrics_addr().map(|a| a.to_string()),
        (None, None) => None,
    };
    match metrics_addr {
        Some(addr) => {
            let (doc, leaks) = await_quiescence(&addr);
            failures.extend(leaks);
            if doc.is_empty() {
                failures.push(format!("no metrics document from {addr}"));
            } else {
                failures.extend(check_metrics(&doc, &served_names));
            }
        }
        None => failures.push(
            "chaos needs a metrics endpoint for the survival/leak checks (--metrics-addr)"
                .to_string(),
        ),
    }

    if let Some(daemon) = local {
        // The in-process registry double-checks the leak count.
        let registry = daemon.registry();
        let deadline = Instant::now() + LEAK_GRACE;
        while registry.active_streams() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
        if registry.active_streams() > 0 {
            failures.push(format!(
                "{} serving thread(s) still active after the grace period",
                registry.active_streams()
            ));
        }
        daemon.shutdown();
    }

    if failures.is_empty() {
        println!(
            "chaos PASS: daemon survived {} faults; {} healthy streams bit-identical; no leaks",
            FaultKind::ALL.len(),
            healthy.len() + 1
        );
        0
    } else {
        for f in &failures {
            eprintln!("chaos FAIL: {f}");
        }
        1
    }
}

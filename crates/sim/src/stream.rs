//! Live round synthesis as a continuous sample stream.
//!
//! [`RoundArrivalSource`] replays the sample-level simulator
//! ([`crate::fullround`]) as an *asynchronous* stream for the streaming
//! gateway: rounds arrive at Poisson-distributed instants (thinned by a
//! recharge dead time — harvesting tags cannot respond back to back), the
//! network idles between them, and when the channel model calls for it the
//! whole stream — idle gaps included — rides on unit-power AWGN at the
//! thermal floor. The gateway sees exactly what an AP front-end would hand
//! it: a continuous baseband stream in which it must find the rounds
//! itself.
//!
//! Ground truth (round start sample and the bits every device put on the
//! air) is recorded behind a shared handle so the experiment can score the
//! gateway's output after the stream has been consumed on the producer
//! thread.

use crate::deployment::Deployment;
use crate::fullround::{ChannelModel, FullRoundNetwork};
use netscatter_coding::frame::FrameCodec;
use netscatter_coding::CodingScheme;
use netscatter_dsp::Complex64;
use netscatter_gateway::StreamSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Salt applied to the trial seed for the arrival-process RNG stream (kept
/// distinct from the channel/local streams of [`crate::fullround`]).
const ARRIVAL_STREAM_SALT: u64 = 0xA11_1FA1_57AC_AB1E;

/// Salt applied to the trial seed for the stream-noise RNG.
const STREAM_NOISE_SALT: u64 = 0x5707_CA57_0FF1_CE00;

/// Salt applied to the trial seed for the coded-frame data RNG.
const FRAME_DATA_SALT: u64 = 0x00C0_DED0_F4A3_DA7A;

/// What one round put on the air, for scoring the gateway's decode.
#[derive(Debug, Clone)]
pub struct StreamRoundTruth {
    /// Absolute stream index of the round's first sample.
    pub start_sample: u64,
    /// Per device (deployment order): the payload bits it transmitted, or
    /// `None` if it sat the round out.
    pub sent: Vec<Option<Vec<bool>>>,
}

/// Shared handle to the ground truth a [`RoundArrivalSource`] accumulates.
pub type StreamTruth = Arc<Mutex<Vec<StreamRoundTruth>>>;

/// Configuration of the arrival process.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalConfig {
    /// Exponential arrival rate of rounds, in rounds per second, on top of
    /// the recharge dead time.
    pub rate_hz: f64,
    /// Total stream duration in seconds.
    pub stream_secs: f64,
    /// Payload bits per device per round.
    pub payload_bits: usize,
}

/// A [`StreamSource`] that synthesizes rounds with Poisson arrivals.
pub struct RoundArrivalSource {
    net: FullRoundNetwork,
    cfg: ArrivalConfig,
    sample_rate_hz: f64,
    /// Samples of one full round waveform.
    round_samples: u64,
    /// Minimum idle samples between rounds (the recharge dead time: one
    /// round's airtime).
    recharge_samples: u64,
    /// Total samples the stream will produce.
    total_samples: u64,
    /// Samples produced so far.
    produced: u64,
    /// Pending round waveform and the read cursor into it.
    pending: Vec<Complex64>,
    pending_cursor: usize,
    /// Idle samples still to emit before the next round may start.
    gap_remaining: u64,
    arrivals: StdRng,
    noise: StdRng,
    add_noise: bool,
    /// When set, every transmitting device's on-air bits are one CRC-framed,
    /// FEC-coded frame of random data instead of raw fair-coin bits.
    codec: Option<FrameCodec>,
    frame_data: StdRng,
    rounds_started: u64,
    truth: StreamTruth,
}

impl RoundArrivalSource {
    /// Builds the source for the first `num_devices` devices of
    /// `deployment` under `model`, seeded by `trial_seed`. The first round
    /// never starts before one recharge gap, so the gateway's energy gate
    /// always has idle samples to calibrate on.
    pub fn new(
        deployment: &Deployment,
        num_devices: usize,
        model: &ChannelModel,
        cfg: ArrivalConfig,
        trial_seed: u64,
    ) -> Self {
        let net = FullRoundNetwork::for_trial(deployment, num_devices, model, trial_seed);
        let sample_rate_hz = deployment.config.profile.modulation.chirp().bandwidth_hz();
        let round_secs = net.round_duration_s(cfg.payload_bits);
        let round_samples = (round_secs * sample_rate_hz).round() as u64;
        let arrivals = StdRng::seed_from_u64(trial_seed ^ ARRIVAL_STREAM_SALT);
        let add_noise = net.noise_enabled();
        let mut source = Self {
            net,
            cfg,
            sample_rate_hz,
            round_samples,
            recharge_samples: round_samples,
            total_samples: (cfg.stream_secs * sample_rate_hz).round() as u64,
            produced: 0,
            pending: Vec::new(),
            pending_cursor: 0,
            gap_remaining: 0,
            arrivals,
            noise: StdRng::seed_from_u64(trial_seed ^ STREAM_NOISE_SALT),
            add_noise,
            codec: None,
            frame_data: StdRng::seed_from_u64(trial_seed ^ FRAME_DATA_SALT),
            rounds_started: 0,
            truth: Arc::new(Mutex::new(Vec::new())),
        };
        source.gap_remaining = source.draw_gap();
        // Guarantee the stream carries at least one round whenever its
        // duration can hold the recharge gap plus a round at all: clamp the
        // *first* gap (and only the first — later arrivals stay a clean
        // thinned-Poisson process) so the opening exponential draw cannot
        // push the whole schedule past the end of a short stream.
        let latest_first_gap = source.total_samples.saturating_sub(source.round_samples);
        if latest_first_gap >= source.recharge_samples {
            source.gap_remaining = source.gap_remaining.min(latest_first_gap);
        }
        source
    }

    /// Switches the source to the coded link layer: every transmitting
    /// device's `payload_bits` on-air bits become one `scheme` frame
    /// (sequence number = round index, random data bits from a dedicated
    /// RNG stream). Fails like [`FrameCodec::new`] when the scheme cannot
    /// fill `payload_bits` exactly; `CodingScheme::None` is a no-op.
    pub fn with_coding(mut self, scheme: CodingScheme) -> Result<Self, String> {
        self.codec = match scheme {
            CodingScheme::None => None,
            scheme => Some(FrameCodec::new(scheme, self.cfg.payload_bits)?),
        };
        Ok(self)
    }

    /// The ground-truth handle; clone it before handing the source to the
    /// producer thread.
    pub fn truth(&self) -> StreamTruth {
        self.truth.clone()
    }

    /// The power-aware cyclic-shift assignment (deployment order) the
    /// gateway should listen on.
    pub fn assigned_bins(&self) -> &[usize] {
        self.net.assigned_bins()
    }

    /// The detection floor the batch simulator's receiver would use for
    /// this population — hand it to the gateway so streaming and batch
    /// decode apply the same presence test.
    pub fn detection_floor_fraction(&self) -> f64 {
        self.net.detection_floor_fraction()
    }

    /// Samples in one full round waveform.
    pub fn round_samples(&self) -> u64 {
        self.round_samples
    }

    /// Total samples the stream will produce.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Draws the idle gap before the next round: the recharge dead time
    /// plus an exponential inter-arrival draw at `rate_hz`.
    fn draw_gap(&mut self) -> u64 {
        let u: f64 = self.arrivals.gen_range(0.0..1.0);
        let exp_s = -(1.0 - u).ln() / self.cfg.rate_hz.max(1e-9);
        self.recharge_samples + (exp_s * self.sample_rate_hz).round() as u64
    }

    /// Synthesizes the next round into `pending` and records its truth.
    fn start_round(&mut self) {
        let seq = self.rounds_started as u8; // wraps with the frame header
        self.rounds_started += 1;
        let sent = match self.codec.as_ref() {
            None => self.net.synthesize_round(self.cfg.payload_bits),
            Some(codec) => {
                let rng = &mut self.frame_data;
                let mut provider = |_device: usize| {
                    let data: Vec<bool> =
                        (0..codec.data_bits()).map(|_| rng.gen_bool(0.5)).collect();
                    codec.encode_frame(seq, &data)
                };
                self.net
                    .synthesize_round_with(self.cfg.payload_bits, Some(&mut provider))
            }
        };
        self.pending.clear();
        self.pending.extend_from_slice(self.net.round_waveform());
        self.pending_cursor = 0;
        self.truth
            .lock()
            .expect("truth lock")
            .push(StreamRoundTruth {
                start_sample: self.produced,
                sent,
            });
    }
}

impl StreamSource for RoundArrivalSource {
    fn fill(&mut self, out: &mut [Complex64]) -> usize {
        let mut written = 0usize;
        while written < out.len() && self.produced < self.total_samples {
            if self.pending_cursor < self.pending.len() {
                // Mid-round: copy waveform samples.
                let n = (out.len() - written)
                    .min(self.pending.len() - self.pending_cursor)
                    .min((self.total_samples - self.produced) as usize);
                out[written..written + n]
                    .copy_from_slice(&self.pending[self.pending_cursor..self.pending_cursor + n]);
                self.pending_cursor += n;
                written += n;
                self.produced += n as u64;
                continue;
            }
            if self.gap_remaining == 0 {
                // A new round may start — but only if it fits entirely
                // before the end of the stream (a truncated round would be
                // undecodable by construction).
                if self.produced + self.round_samples <= self.total_samples {
                    self.start_round();
                    self.gap_remaining = self.draw_gap();
                    continue;
                }
                // Pad the remainder with idle samples.
                self.gap_remaining = self.total_samples - self.produced;
            }
            // Idle: emit zeros.
            let n = (out.len() - written)
                .min(self.gap_remaining as usize)
                .min((self.total_samples - self.produced) as usize);
            out[written..written + n].fill(Complex64::ZERO);
            self.gap_remaining -= n as u64;
            written += n;
            self.produced += n as u64;
        }
        if self.add_noise && written > 0 {
            // Unit-power AWGN over everything — idle gaps included — so the
            // gateway's noise-floor estimate sees the same floor the batch
            // simulator models.
            netscatter_channel::noise::AwgnChannel::with_noise_power(1.0)
                .apply(&mut self.noise, &mut out[..written]);
        }
        written
    }

    fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;

    fn source(devices: usize, model: &ChannelModel, secs: f64, seed: u64) -> RoundArrivalSource {
        let dep = Deployment::generate(
            DeploymentConfig::office(devices.max(16)),
            &mut StdRng::seed_from_u64(17),
        );
        RoundArrivalSource::new(
            &dep,
            devices,
            model,
            ArrivalConfig {
                rate_hz: 20.0,
                stream_secs: secs,
                payload_bits: 8,
            },
            seed,
        )
    }

    /// Drains a source into one buffer via arbitrary fill sizes.
    fn drain(src: &mut RoundArrivalSource, chunk: usize) -> Vec<Complex64> {
        let mut all = Vec::new();
        let mut buf = vec![Complex64::ZERO; chunk];
        loop {
            let got = src.fill(&mut buf);
            all.extend_from_slice(&buf[..got]);
            if got < buf.len() {
                return all;
            }
        }
    }

    #[test]
    fn stream_has_poisson_rounds_and_exact_length() {
        let mut src = source(8, &ChannelModel::pristine(), 0.5, 3);
        let total = src.total_samples();
        let stream = drain(&mut src, 1000);
        assert_eq!(stream.len() as u64, total);
        let truth = src.truth();
        let rounds = truth.lock().unwrap();
        assert!(
            !rounds.is_empty() && rounds.len() <= 12,
            "{} rounds in 0.5 s at ~≤20/s",
            rounds.len()
        );
        // Rounds never overlap and always fit inside the stream.
        let round_len = (src.net.round_duration_s(8) * src.sample_rate_hz()) as u64;
        let mut last_end = 0u64;
        for r in rounds.iter() {
            assert!(r.start_sample >= last_end, "rounds overlap");
            assert!(r.start_sample + round_len <= total, "round truncated");
            last_end = r.start_sample + round_len;
        }
        // The first round leaves the gateway at least a recharge gap of
        // idle samples to calibrate on.
        assert!(rounds[0].start_sample >= round_len);
    }

    #[test]
    fn truth_marks_round_energy_where_it_claims() {
        // Pristine minus its thermal noise: the idle gaps are exactly zero.
        let mut silent = ChannelModel::pristine();
        silent.noise = false;
        let mut src = source(8, &silent, 0.5, 5);
        let truth = src.truth();
        let stream = drain(&mut src, 4096);
        let rounds = truth.lock().unwrap();
        for r in rounds.iter() {
            let s = r.start_sample as usize;
            let energy: f64 = stream[s..s + 64].iter().map(|x| x.norm_sqr()).sum();
            assert!(energy > 1.0, "no signal at claimed round start {s}");
            // Pristine model has no noise: the sample before the round is
            // exactly idle.
            assert_eq!(stream[s - 1], Complex64::ZERO);
        }
    }

    #[test]
    fn fill_chunking_does_not_change_the_stream() {
        let a = drain(&mut source(4, &ChannelModel::pristine(), 0.2, 9), 64);
        let b = drain(&mut source(4, &ChannelModel::pristine(), 0.2, 9), 4097);
        assert_eq!(a, b, "pristine stream must be fill-size invariant");
    }

    #[test]
    fn coded_source_puts_crc_clean_frames_on_the_air() {
        let dep =
            Deployment::generate(DeploymentConfig::office(16), &mut StdRng::seed_from_u64(17));
        let cfg = ArrivalConfig {
            rate_hz: 20.0,
            stream_secs: 0.5,
            payload_bits: 70, // Hamming(7,4): 8 data bits per frame
        };
        let mut src = RoundArrivalSource::new(&dep, 4, &ChannelModel::pristine(), cfg, 11)
            .with_coding(CodingScheme::Hamming)
            .unwrap();
        let truth = src.truth();
        let _ = drain(&mut src, 2048);
        let rounds = truth.lock().unwrap();
        assert!(!rounds.is_empty());
        let codec = FrameCodec::new(CodingScheme::Hamming, 70).unwrap();
        for (i, round) in rounds.iter().enumerate() {
            for sent in round.sent.iter().flatten() {
                let out = codec.decode_frame(sent);
                assert!(out.crc_ok, "round {i}: on-air bits are a valid frame");
                assert_eq!(out.seq, i as u8, "frame seq tracks the round index");
                assert_eq!(out.data.len(), 8);
            }
        }
        // A geometry the scheme cannot fill fails at construction.
        let bad = RoundArrivalSource::new(
            &dep,
            4,
            &ChannelModel::pristine(),
            ArrivalConfig {
                payload_bits: 8,
                ..cfg
            },
            1,
        )
        .with_coding(CodingScheme::Conv);
        assert!(bad.is_err());
    }

    #[test]
    fn office_model_rides_on_noise() {
        let mut src = source(4, &ChannelModel::office(), 0.02, 1);
        let stream = drain(&mut src, 512);
        let idle_power: f64 = stream[..256].iter().map(|x| x.norm_sqr()).sum::<f64>() / 256.0;
        assert!(
            (idle_power - 1.0).abs() < 0.4,
            "idle should sit at the unit noise floor, got {idle_power}"
        );
    }
}

//! Network-level accounting: NetScatter versus the TDMA LoRa-backscatter
//! baselines (Figs. 17–19).
//!
//! The metrics follow §4.4 exactly:
//!
//! * **Network PHY rate** — correctly delivered payload bits divided by the
//!   payload airtime only.
//! * **Link-layer data rate** — delivered payload bits divided by the full
//!   schedule including the AP query and preambles.
//! * **Network latency** — the time to collect one payload from every
//!   scheduled device.
//!
//! For NetScatter all scheduled devices share one query, one preamble
//! window, and one payload window; for the baselines every device pays its
//! own query + preamble + payload. Delivery is gated by each scheme's
//! sensitivity and, for NetScatter, by the power-aware allocation's dynamic
//! range (35 dB measured in §4.3): a device whose uplink sits further than
//! the dynamic range below the strongest concurrent device cannot be
//! decoded and is excluded from that round's deliveries.

use crate::deployment::Deployment;
use crate::fullround::{trial_seed, ChannelModel, ChannelRealizer, FullRoundNetwork};
use crate::montecarlo::MonteCarlo;
use netscatter::protocol::{NetworkProtocol, RoundOutcome, RoundTiming};
use netscatter::query::QueryMessage;
use netscatter_baselines::tdma::{LoraBackscatterNetwork, LoraScheme};
use netscatter_phy::params::PhyProfile;
use serde::{Deserialize, Serialize};

/// How deliveries are determined when computing network metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// The closed-form gate: RSSI thresholds (sensitivity, envelope
    /// detector, receiver dynamic range) decide delivery analytically.
    Analytical,
    /// Sample-level simulation: every round synthesizes the superposed
    /// waveform of all scheduled devices through the channel models and
    /// decodes it with the real [`netscatter::receiver::ConcurrentReceiver`]
    /// (see [`crate::fullround`]).
    SampleLevel,
}

/// Independent multi-round trials per sample-level metrics evaluation.
pub const SAMPLE_LEVEL_TRIALS: usize = 2;
/// Rounds simulated per sample-level trial (temporal fading evolves across
/// the rounds of a trial).
pub const SAMPLE_LEVEL_ROUNDS_PER_TRIAL: usize = 2;

/// Which NetScatter configuration to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetScatterVariant {
    /// Config 1: cyclic shifts assigned at association; the per-round query
    /// is the minimal 32-bit message.
    Config1,
    /// Config 2: every query carries a full reassignment (1760+ bits).
    Config2,
    /// Ideal: config 1 with no losses (the "NetScatter (Ideal)" curve of
    /// Fig. 17).
    Ideal,
}

/// Network-level metrics for one scheme at one network size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeMetrics {
    /// Number of devices scheduled.
    pub num_devices: usize,
    /// Network PHY rate in bits per second.
    pub phy_rate_bps: f64,
    /// Link-layer data rate in bits per second.
    pub link_layer_rate_bps: f64,
    /// Latency to collect one payload from every device, in seconds.
    pub latency_s: f64,
    /// Number of devices actually delivered.
    pub delivered: usize,
}

/// The receiver's practical near-far dynamic range with power-aware
/// assignment (§4.3: 35 dB).
pub const NETSCATTER_DYNAMIC_RANGE_DB: f64 = 35.0;

/// A zero-device round has no deliveries, no airtime attributable to
/// payload, and no latency: every rate is exactly zero. Returning this
/// well-defined empty value keeps a `num_devices == 0` sweep point from
/// folding `strongest` to −∞ and pushing a degenerate round through the
/// protocol accounting.
fn empty_metrics() -> SchemeMetrics {
    SchemeMetrics {
        num_devices: 0,
        phy_rate_bps: 0.0,
        link_layer_rate_bps: 0.0,
        latency_s: 0.0,
        delivered: 0,
    }
}

/// The query message a variant transmits per round.
fn variant_query(variant: NetScatterVariant, num_devices: usize) -> QueryMessage {
    match variant {
        NetScatterVariant::Config1 | NetScatterVariant::Ideal => QueryMessage::config1(0),
        NetScatterVariant::Config2 => {
            QueryMessage::config2(0, (0..num_devices).map(|i| (i % 256) as u8).collect())
        }
    }
}

/// Computes NetScatter metrics for the first `num_devices` devices of a
/// deployment, each delivering `payload_bits` bits in one concurrent round,
/// using the analytical delivery gate.
pub fn netscatter_metrics(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    variant: NetScatterVariant,
) -> SchemeMetrics {
    netscatter_metrics_analytical(deployment, num_devices, payload_bits, variant)
}

/// The number of devices a fidelity evaluation actually schedules: bounded
/// by the deployment size and, for sample fidelity, by the spectrum
/// capacity (`2^SF / SKIP` slots) — one concurrent round cannot carry more.
/// Both schemes clamp identically so their channel realizers stay in
/// lock-step on the shared trial seeds.
fn schedulable_devices(deployment: &Deployment, num_devices: usize) -> usize {
    num_devices
        .min(deployment.devices.len())
        .min(deployment.config.profile.max_concurrent_devices())
}

/// Computes NetScatter metrics at the requested fidelity.
///
/// * [`Fidelity::Analytical`] ignores `model` and `mc` and evaluates the
///   closed-form RSSI gate.
/// * [`Fidelity::SampleLevel`] runs [`SAMPLE_LEVEL_TRIALS`] independent
///   multi-round trials through the full synthesize → superpose → decode
///   chain of [`crate::fullround`], sharded deterministically by `mc`. The
///   `Ideal` variant stays analytical — it is the no-loss upper bound by
///   definition. `num_devices` is clamped to the spectrum capacity
///   (`2^SF / SKIP`): a single concurrent round cannot schedule more.
pub fn netscatter_metrics_with(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    variant: NetScatterVariant,
    fidelity: Fidelity,
    model: &ChannelModel,
    mc: &MonteCarlo,
) -> SchemeMetrics {
    let num_devices = schedulable_devices(deployment, num_devices);
    if num_devices == 0 {
        return empty_metrics();
    }
    if fidelity == Fidelity::Analytical || variant == NetScatterVariant::Ideal {
        return netscatter_metrics_analytical(deployment, num_devices, payload_bits, variant);
    }
    let profile = deployment.config.profile;
    let timing =
        RoundTiming::netscatter(&profile, &variant_query(variant, num_devices), payload_bits);
    // Each trial builds its simulator from one `u64` drawn from the shard
    // stream, runs its rounds sequentially (temporal fading evolves), and
    // reports the per-round outcomes. The shard layout and RNG streams are
    // fixed by `(mc.seed, SAMPLE_LEVEL_TRIALS)`, so the result is
    // bit-identical at any thread count.
    let per_shard: Vec<Vec<Vec<RoundOutcome>>> =
        mc.run_shards(SAMPLE_LEVEL_TRIALS, |rng, range| {
            range
                .map(|_| {
                    let seed = trial_seed(rng);
                    let mut net = FullRoundNetwork::for_trial(deployment, num_devices, model, seed);
                    (0..SAMPLE_LEVEL_ROUNDS_PER_TRIAL)
                        .map(|_| net.simulate_round(payload_bits).outcome)
                        .collect()
                })
                .collect::<Vec<Vec<RoundOutcome>>>()
        });
    let mut protocol = NetworkProtocol::new(profile);
    let mut delivered_total = 0usize;
    let mut rounds = 0usize;
    for outcome in per_shard.into_iter().flatten().flatten() {
        delivered_total += outcome.decoded_clean;
        rounds += 1;
        protocol.record_round(timing, outcome);
    }
    let metrics = protocol.metrics().expect("at least one round recorded");
    SchemeMetrics {
        num_devices,
        phy_rate_bps: metrics.phy_rate_bps,
        link_layer_rate_bps: metrics.link_layer_rate_bps,
        latency_s: metrics.latency_s,
        // Mean deliveries per round, rounded to the nearest device.
        delivered: (delivered_total as f64 / rounds as f64).round() as usize,
    }
}

fn netscatter_metrics_analytical(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    variant: NetScatterVariant,
) -> SchemeMetrics {
    let profile = deployment.config.profile;
    let num_devices = num_devices.min(deployment.devices.len());
    if num_devices == 0 {
        return empty_metrics();
    }
    let devices = &deployment.devices[..num_devices];
    let timing =
        RoundTiming::netscatter(&profile, &variant_query(variant, num_devices), payload_bits);
    // Delivery model: a device is delivered when (a) it hears the query,
    // (b) its uplink clears the distributed-CSS sensitivity, and (c) with
    // power adaptation it fits inside the receiver dynamic range relative to
    // the strongest scheduled device. The Ideal variant skips the losses.
    let sensitivity = profile.modulation.sensitivity_dbm();
    let strongest = devices
        .iter()
        .map(|d| d.uplink_rssi_dbm)
        .fold(f64::NEG_INFINITY, f64::max);
    let delivered = devices
        .iter()
        .filter(|d| {
            if variant == NetScatterVariant::Ideal {
                return true;
            }
            let hears = d.downlink_rssi_dbm >= profile.envelope_sensitivity_dbm;
            let decodable = d.uplink_rssi_dbm >= sensitivity;
            // Power adaptation lets strong devices back off by up to 10 dB,
            // shrinking the spread the receiver must absorb.
            let effective_gap = (strongest - 10.0).max(d.uplink_rssi_dbm) - d.uplink_rssi_dbm;
            hears && decodable && effective_gap <= NETSCATTER_DYNAMIC_RANGE_DB
        })
        .count();
    let correct_bits = delivered * payload_bits;
    let mut protocol = NetworkProtocol::new(profile);
    protocol.record_round(
        timing,
        RoundOutcome {
            scheduled: num_devices,
            detected: delivered,
            decoded_clean: delivered,
            correct_bits,
            transmitted_bits: num_devices * payload_bits,
        },
    );
    let metrics = protocol.metrics().expect("one round recorded");
    SchemeMetrics {
        num_devices,
        phy_rate_bps: metrics.phy_rate_bps,
        link_layer_rate_bps: metrics.link_layer_rate_bps,
        latency_s: metrics.latency_s,
        delivered,
    }
}

/// Computes the TDMA LoRa-backscatter baseline metrics for the first
/// `num_devices` devices of a deployment (analytical fidelity: static link
/// budgets only).
pub fn lora_backscatter_metrics(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    scheme: LoraScheme,
) -> SchemeMetrics {
    let num_devices = num_devices.min(deployment.devices.len());
    if num_devices == 0 {
        return empty_metrics();
    }
    let rssi: Vec<f64> = deployment.devices[..num_devices]
        .iter()
        .map(|d| d.uplink_rssi_dbm)
        .collect();
    lora_round_metrics(deployment.config.profile, scheme, &rssi, payload_bits)
}

/// The TDMA baseline at the requested fidelity. Under
/// [`Fidelity::SampleLevel`] every trial derives its channel realizations
/// from the *same* trial seeds as [`netscatter_metrics_with`] on the same
/// `mc`, so both schemes face identical multipath/fading/Doppler draws —
/// the apples-to-apples requirement of the Fig. 17–19 curves. The baseline
/// serves one device at a time, so its deliveries remain a per-round RSSI
/// reachability question (no concurrent decode), but that RSSI now moves
/// with the realized channel.
pub fn lora_backscatter_metrics_with(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    scheme: LoraScheme,
    fidelity: Fidelity,
    model: &ChannelModel,
    mc: &MonteCarlo,
) -> SchemeMetrics {
    let num_devices = schedulable_devices(deployment, num_devices);
    if num_devices == 0 {
        return empty_metrics();
    }
    if fidelity == Fidelity::Analytical {
        return lora_backscatter_metrics(deployment, num_devices, payload_bits, scheme);
    }
    let profile = deployment.config.profile;
    let static_rssi: Vec<f64> = deployment.devices[..num_devices]
        .iter()
        .map(|d| d.uplink_rssi_dbm)
        .collect();
    let per_shard: Vec<Vec<Vec<Vec<f64>>>> = mc.run_shards(SAMPLE_LEVEL_TRIALS, |rng, range| {
        range
            .map(|_| {
                let seed = trial_seed(rng);
                let mut realizer = ChannelRealizer::for_trial(model, num_devices, seed);
                (0..SAMPLE_LEVEL_ROUNDS_PER_TRIAL)
                    .map(|_| {
                        realizer
                            .next_round()
                            .iter()
                            .zip(&static_rssi)
                            .map(|(ch, rssi)| rssi + model.snr_boost_db + ch.gain_db())
                            .collect()
                    })
                    .collect()
            })
            .collect::<Vec<Vec<Vec<f64>>>>()
    });
    let rounds: Vec<Vec<f64>> = per_shard.into_iter().flatten().flatten().collect();
    let num_rounds = rounds.len();
    let mut acc = empty_metrics();
    for rssi in &rounds {
        let m = lora_round_metrics(profile, scheme, rssi, payload_bits);
        acc.phy_rate_bps += m.phy_rate_bps;
        acc.link_layer_rate_bps += m.link_layer_rate_bps;
        acc.latency_s += m.latency_s;
        acc.delivered += m.delivered;
    }
    SchemeMetrics {
        num_devices,
        phy_rate_bps: acc.phy_rate_bps / num_rounds as f64,
        link_layer_rate_bps: acc.link_layer_rate_bps / num_rounds as f64,
        latency_s: acc.latency_s / num_rounds as f64,
        delivered: (acc.delivered as f64 / num_rounds as f64).round() as usize,
    }
}

/// One TDMA schedule pass over per-round effective RSSIs.
fn lora_round_metrics(
    profile: PhyProfile,
    scheme: LoraScheme,
    rssi: &[f64],
    payload_bits: usize,
) -> SchemeMetrics {
    let net = LoraBackscatterNetwork::new(profile, scheme);
    let (phy, link, latency) = net.network_metrics(rssi, payload_bits);
    let delivered = rssi
        .iter()
        .filter(|r| net.serve_device(**r, payload_bits).reachable)
        .count();
    SchemeMetrics {
        num_devices: rssi.len(),
        phy_rate_bps: phy,
        link_layer_rate_bps: link,
        latency_s: latency,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment(n: usize) -> Deployment {
        Deployment::generate(DeploymentConfig::office(n), &mut StdRng::seed_from_u64(17))
    }

    #[test]
    fn zero_scheduled_devices_yield_well_defined_empty_metrics() {
        // Regression: a 0-device sweep point used to fold `strongest` to
        // −∞ and push a degenerate 0-device round through the protocol
        // accounting. All metrics must be exactly zero and finite.
        let dep = deployment(8);
        for variant in [
            NetScatterVariant::Config1,
            NetScatterVariant::Config2,
            NetScatterVariant::Ideal,
        ] {
            let m = netscatter_metrics(&dep, 0, 40, variant);
            assert_eq!(m.num_devices, 0);
            assert_eq!(m.delivered, 0);
            assert_eq!(m.phy_rate_bps, 0.0);
            assert_eq!(m.link_layer_rate_bps, 0.0);
            assert_eq!(m.latency_s, 0.0);
        }
        let m = lora_backscatter_metrics(&dep, 0, 40, LoraScheme::fixed());
        assert_eq!((m.num_devices, m.delivered), (0, 0));
        assert!(m.phy_rate_bps == 0.0 && m.link_layer_rate_bps == 0.0 && m.latency_s == 0.0);
        // Sample-level fidelity takes the same early exit.
        let mc = MonteCarlo::with_threads(1, 1);
        let m = netscatter_metrics_with(
            &dep,
            0,
            40,
            NetScatterVariant::Config1,
            Fidelity::SampleLevel,
            &ChannelModel::office(),
            &mc,
        );
        assert_eq!((m.num_devices, m.delivered), (0, 0));
        assert_eq!(m.latency_s, 0.0);
    }

    #[test]
    fn device_counts_beyond_spectrum_capacity_are_clamped() {
        // One concurrent round can schedule at most 2^SF / SKIP devices;
        // requesting more must clamp consistently across schemes so the
        // reported num_devices matches what was simulated and both
        // realizers consume identical RNG streams.
        let dep = Deployment::generate(
            crate::deployment::DeploymentConfig::office(300),
            &mut StdRng::seed_from_u64(5),
        );
        let capacity = dep.config.profile.max_concurrent_devices();
        assert_eq!(capacity, 256);
        let mc = MonteCarlo::with_threads(3, 1);
        let ns = netscatter_metrics_with(
            &dep,
            300,
            8,
            NetScatterVariant::Config1,
            Fidelity::SampleLevel,
            &ChannelModel::pristine(),
            &mc,
        );
        assert_eq!(ns.num_devices, capacity);
        let lora = lora_backscatter_metrics_with(
            &dep,
            300,
            8,
            LoraScheme::fixed(),
            Fidelity::SampleLevel,
            &ChannelModel::pristine(),
            &mc,
        );
        assert_eq!(lora.num_devices, capacity);
    }

    #[test]
    fn netscatter_phy_rate_scales_with_devices() {
        let dep = deployment(256);
        let m16 = netscatter_metrics(&dep, 16, 40, NetScatterVariant::Config1);
        let m256 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        assert!(m256.phy_rate_bps > 8.0 * m16.phy_rate_bps);
        // At 256 devices the PHY rate approaches the 250 kbps aggregate
        // (976 bps per device), minus the devices that cannot be delivered.
        assert!(m256.phy_rate_bps > 150_000.0, "got {}", m256.phy_rate_bps);
        assert!(m256.phy_rate_bps <= 250_000.0 + 1.0);
        assert!(m256.delivered > 200);
    }

    #[test]
    fn ideal_variant_is_an_upper_bound() {
        let dep = deployment(256);
        let real = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let ideal = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Ideal);
        assert!(ideal.phy_rate_bps >= real.phy_rate_bps);
        assert_eq!(ideal.delivered, 256);
        assert!((ideal.phy_rate_bps - 250_000.0).abs() < 1_000.0);
    }

    #[test]
    fn config2_query_lowers_link_rate_but_not_phy_rate() {
        let dep = deployment(256);
        let c1 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let c2 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config2);
        assert!((c1.phy_rate_bps - c2.phy_rate_bps).abs() < 1e-6);
        assert!(c2.link_layer_rate_bps < c1.link_layer_rate_bps);
        assert!(c2.latency_s > c1.latency_s);
    }

    #[test]
    fn netscatter_latency_is_flat_while_lora_latency_grows() {
        let dep = deployment(256);
        let ns64 = netscatter_metrics(&dep, 64, 40, NetScatterVariant::Config1);
        let ns256 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        assert!((ns256.latency_s / ns64.latency_s) < 1.05);
        let lora64 = lora_backscatter_metrics(&dep, 64, 40, LoraScheme::fixed());
        let lora256 = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::fixed());
        assert!(lora256.latency_s / lora64.latency_s > 3.5);
    }

    #[test]
    fn netscatter_beats_lora_baselines_at_256_devices() {
        // Fig. 18 / Fig. 19 headline: an order of magnitude or more at the
        // link layer against both baselines.
        let dep = deployment(256);
        let ns = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let fixed = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::fixed());
        let adapted = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::rate_adapted());
        let gain_fixed = ns.link_layer_rate_bps / fixed.link_layer_rate_bps;
        let gain_adapted = ns.link_layer_rate_bps / adapted.link_layer_rate_bps;
        assert!(
            gain_fixed > 20.0,
            "gain over fixed-rate LoRa backscatter is only {gain_fixed:.1}x"
        );
        assert!(
            gain_adapted > 5.0,
            "gain over rate-adapted LoRa backscatter is only {gain_adapted:.1}x"
        );
        let lat_gain = fixed.latency_s / ns.latency_s;
        assert!(lat_gain > 20.0, "latency gain only {lat_gain:.1}x");
    }
}

//! Network-level accounting: NetScatter versus the TDMA LoRa-backscatter
//! baselines (Figs. 17–19).
//!
//! The metrics follow §4.4 exactly:
//!
//! * **Network PHY rate** — correctly delivered payload bits divided by the
//!   payload airtime only.
//! * **Link-layer data rate** — delivered payload bits divided by the full
//!   schedule including the AP query and preambles.
//! * **Network latency** — the time to collect one payload from every
//!   scheduled device.
//!
//! For NetScatter all scheduled devices share one query, one preamble
//! window, and one payload window; for the baselines every device pays its
//! own query + preamble + payload. Delivery is gated by each scheme's
//! sensitivity and, for NetScatter, by the power-aware allocation's dynamic
//! range (35 dB measured in §4.3): a device whose uplink sits further than
//! the dynamic range below the strongest concurrent device cannot be
//! decoded and is excluded from that round's deliveries.

use crate::deployment::Deployment;
use netscatter::protocol::{NetworkProtocol, RoundOutcome, RoundTiming};
use netscatter::query::QueryMessage;
use netscatter_baselines::tdma::{LoraBackscatterNetwork, LoraScheme};
use netscatter_phy::params::PhyProfile;
use serde::{Deserialize, Serialize};

/// Which NetScatter configuration to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetScatterVariant {
    /// Config 1: cyclic shifts assigned at association; the per-round query
    /// is the minimal 32-bit message.
    Config1,
    /// Config 2: every query carries a full reassignment (1760+ bits).
    Config2,
    /// Ideal: config 1 with no losses (the "NetScatter (Ideal)" curve of
    /// Fig. 17).
    Ideal,
}

/// Network-level metrics for one scheme at one network size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeMetrics {
    /// Number of devices scheduled.
    pub num_devices: usize,
    /// Network PHY rate in bits per second.
    pub phy_rate_bps: f64,
    /// Link-layer data rate in bits per second.
    pub link_layer_rate_bps: f64,
    /// Latency to collect one payload from every device, in seconds.
    pub latency_s: f64,
    /// Number of devices actually delivered.
    pub delivered: usize,
}

/// The receiver's practical near-far dynamic range with power-aware
/// assignment (§4.3: 35 dB).
pub const NETSCATTER_DYNAMIC_RANGE_DB: f64 = 35.0;

/// Computes NetScatter metrics for the first `num_devices` devices of a
/// deployment, each delivering `payload_bits` bits in one concurrent round.
pub fn netscatter_metrics(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    variant: NetScatterVariant,
) -> SchemeMetrics {
    let profile = deployment.config.profile;
    let num_devices = num_devices.min(deployment.devices.len());
    let devices = &deployment.devices[..num_devices];
    // Query choice by variant.
    let query = match variant {
        NetScatterVariant::Config1 | NetScatterVariant::Ideal => QueryMessage::config1(0),
        NetScatterVariant::Config2 => {
            QueryMessage::config2(0, (0..num_devices).map(|i| (i % 256) as u8).collect())
        }
    };
    let timing = RoundTiming::netscatter(&profile, &query, payload_bits);
    // Delivery model: a device is delivered when (a) it hears the query,
    // (b) its uplink clears the distributed-CSS sensitivity, and (c) with
    // power adaptation it fits inside the receiver dynamic range relative to
    // the strongest scheduled device. The Ideal variant skips the losses.
    let sensitivity = profile.modulation.sensitivity_dbm();
    let strongest = devices
        .iter()
        .map(|d| d.uplink_rssi_dbm)
        .fold(f64::NEG_INFINITY, f64::max);
    let delivered = devices
        .iter()
        .filter(|d| {
            if variant == NetScatterVariant::Ideal {
                return true;
            }
            let hears = d.downlink_rssi_dbm >= profile.envelope_sensitivity_dbm;
            let decodable = d.uplink_rssi_dbm >= sensitivity;
            // Power adaptation lets strong devices back off by up to 10 dB,
            // shrinking the spread the receiver must absorb.
            let effective_gap = (strongest - 10.0).max(d.uplink_rssi_dbm) - d.uplink_rssi_dbm;
            hears && decodable && effective_gap <= NETSCATTER_DYNAMIC_RANGE_DB
        })
        .count();
    let correct_bits = delivered * payload_bits;
    let mut protocol = NetworkProtocol::new(profile);
    protocol.record_round(
        timing,
        RoundOutcome {
            scheduled: num_devices,
            detected: delivered,
            decoded_clean: delivered,
            correct_bits,
            transmitted_bits: num_devices * payload_bits,
        },
    );
    let metrics = protocol.metrics().expect("one round recorded");
    SchemeMetrics {
        num_devices,
        phy_rate_bps: metrics.phy_rate_bps,
        link_layer_rate_bps: metrics.link_layer_rate_bps,
        latency_s: metrics.latency_s,
        delivered,
    }
}

/// Computes the TDMA LoRa-backscatter baseline metrics for the first
/// `num_devices` devices of a deployment.
pub fn lora_backscatter_metrics(
    deployment: &Deployment,
    num_devices: usize,
    payload_bits: usize,
    scheme: LoraScheme,
) -> SchemeMetrics {
    let profile: PhyProfile = deployment.config.profile;
    let num_devices = num_devices.min(deployment.devices.len());
    let rssi: Vec<f64> = deployment.devices[..num_devices]
        .iter()
        .map(|d| d.uplink_rssi_dbm)
        .collect();
    let net = LoraBackscatterNetwork::new(profile, scheme);
    let (phy, link, latency) = net.network_metrics(&rssi, payload_bits);
    let delivered = rssi
        .iter()
        .filter(|r| net.serve_device(**r, payload_bits).reachable)
        .count();
    SchemeMetrics {
        num_devices,
        phy_rate_bps: phy,
        link_layer_rate_bps: link,
        latency_s: latency,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment(n: usize) -> Deployment {
        Deployment::generate(DeploymentConfig::office(n), &mut StdRng::seed_from_u64(17))
    }

    #[test]
    fn netscatter_phy_rate_scales_with_devices() {
        let dep = deployment(256);
        let m16 = netscatter_metrics(&dep, 16, 40, NetScatterVariant::Config1);
        let m256 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        assert!(m256.phy_rate_bps > 8.0 * m16.phy_rate_bps);
        // At 256 devices the PHY rate approaches the 250 kbps aggregate
        // (976 bps per device), minus the devices that cannot be delivered.
        assert!(m256.phy_rate_bps > 150_000.0, "got {}", m256.phy_rate_bps);
        assert!(m256.phy_rate_bps <= 250_000.0 + 1.0);
        assert!(m256.delivered > 200);
    }

    #[test]
    fn ideal_variant_is_an_upper_bound() {
        let dep = deployment(256);
        let real = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let ideal = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Ideal);
        assert!(ideal.phy_rate_bps >= real.phy_rate_bps);
        assert_eq!(ideal.delivered, 256);
        assert!((ideal.phy_rate_bps - 250_000.0).abs() < 1_000.0);
    }

    #[test]
    fn config2_query_lowers_link_rate_but_not_phy_rate() {
        let dep = deployment(256);
        let c1 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let c2 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config2);
        assert!((c1.phy_rate_bps - c2.phy_rate_bps).abs() < 1e-6);
        assert!(c2.link_layer_rate_bps < c1.link_layer_rate_bps);
        assert!(c2.latency_s > c1.latency_s);
    }

    #[test]
    fn netscatter_latency_is_flat_while_lora_latency_grows() {
        let dep = deployment(256);
        let ns64 = netscatter_metrics(&dep, 64, 40, NetScatterVariant::Config1);
        let ns256 = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        assert!((ns256.latency_s / ns64.latency_s) < 1.05);
        let lora64 = lora_backscatter_metrics(&dep, 64, 40, LoraScheme::fixed());
        let lora256 = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::fixed());
        assert!(lora256.latency_s / lora64.latency_s > 3.5);
    }

    #[test]
    fn netscatter_beats_lora_baselines_at_256_devices() {
        // Fig. 18 / Fig. 19 headline: an order of magnitude or more at the
        // link layer against both baselines.
        let dep = deployment(256);
        let ns = netscatter_metrics(&dep, 256, 40, NetScatterVariant::Config1);
        let fixed = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::fixed());
        let adapted = lora_backscatter_metrics(&dep, 256, 40, LoraScheme::rate_adapted());
        let gain_fixed = ns.link_layer_rate_bps / fixed.link_layer_rate_bps;
        let gain_adapted = ns.link_layer_rate_bps / adapted.link_layer_rate_bps;
        assert!(
            gain_fixed > 20.0,
            "gain over fixed-rate LoRa backscatter is only {gain_fixed:.1}x"
        );
        assert!(
            gain_adapted > 5.0,
            "gain over rate-adapted LoRa backscatter is only {gain_adapted:.1}x"
        );
        let lat_gain = fixed.latency_s / ns.latency_s;
        assert!(lat_gain > 20.0, "latency gain only {lat_gain:.1}x");
    }
}

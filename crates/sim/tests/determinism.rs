//! The determinism-under-parallelism contract of the sharded Monte-Carlo
//! layer: for a fixed seed, every sharded experiment must produce
//! bit-identical output no matter how many worker threads run it.

use netscatter_sim::ber::{
    max_tolerable_power_difference_db_sharded, near_far_ber_sharded, NearFarConfig,
};
use netscatter_sim::montecarlo::{parallel_map, MonteCarlo};

#[test]
fn sharded_near_far_ber_is_bit_identical_across_1_2_4_shards() {
    let cfg = NearFarConfig::paper(35.0);
    // 200 symbols span multiple shards, so the 2- and 4-thread runs really
    // do interleave shard execution.
    let reference = near_far_ber_sharded(&MonteCarlo::with_threads(42, 1), &cfg, -10.0, 200);
    for threads in [2usize, 4] {
        let ber = near_far_ber_sharded(&MonteCarlo::with_threads(42, threads), &cfg, -10.0, 200);
        assert_eq!(
            ber.to_bits(),
            reference.to_bits(),
            "BER differs at {threads} threads: {ber} vs {reference}"
        );
    }
}

#[test]
fn sharded_power_sweep_is_bit_identical_across_1_2_4_shards() {
    let params = netscatter_dsp::ChirpParams::new(500e3, 9).unwrap();
    let reference = max_tolerable_power_difference_db_sharded(
        &MonteCarlo::with_threads(7, 1),
        params,
        64,
        0.05,
        64,
        30.0,
    );
    for threads in [2usize, 4] {
        let got = max_tolerable_power_difference_db_sharded(
            &MonteCarlo::with_threads(7, threads),
            params,
            64,
            0.05,
            64,
            30.0,
        );
        assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
    }
}

#[test]
fn different_seeds_change_the_estimate() {
    // Sanity check that the determinism above is not a constant function.
    let cfg = NearFarConfig::paper(0.0);
    let a = near_far_ber_sharded(&MonteCarlo::with_threads(1, 2), &cfg, -22.0, 192);
    let b = near_far_ber_sharded(&MonteCarlo::with_threads(2, 2), &cfg, -22.0, 192);
    // At -22 dB the BER is noisy enough that two seeds virtually never agree
    // to the last bit on 192 symbols.
    assert_ne!(a.to_bits(), b.to_bits());
}

#[test]
fn figure_reports_are_identical_at_any_thread_count() {
    // fig12 drives near_far_ber_sharded internally; the whole report string
    // must be byte-identical whether its Monte-Carlo cells run on 1, 2 or 4
    // worker threads.
    use netscatter_sim::experiments::{fig12_with_threads, Scale};
    let reference = fig12_with_threads(Scale::Quick, 5, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            fig12_with_threads(Scale::Quick, 5, threads),
            reference,
            "fig12 report differs at {threads} threads"
        );
    }
}

#[test]
fn parallel_map_is_order_preserving_for_network_sweep_shapes() {
    let sizes = [1usize, 64, 256];
    let doubled: Vec<usize> = sizes.iter().map(|n| n * 2).collect();
    for threads in [1usize, 2, 4] {
        assert_eq!(parallel_map(&sizes, threads, |n| n * 2), doubled);
    }
}

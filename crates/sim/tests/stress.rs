//! End-to-end stress harness run: synthesized concurrent TCP streams
//! against an in-process daemon must pass all three gates (bit identity,
//! zero drops, complete metrics) and exit 0.

use netscatter_sim::stress::{parse_stress_args, run_stress};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn stress_harness_passes_with_concurrent_synthesized_streams() {
    // Small and fast, but genuinely concurrent: 4 sockets, distinct seeds,
    // spread over 2 RF channels so the metrics gate also demands the
    // schema-complete per-channel rollup and the aggregate rate.
    // Wire speed plus a ring that holds each whole stream keeps the run
    // deterministic on unoptimized test builds (drop-oldest cannot fire),
    // while still exercising the full TCP → engine → NDJSON path.
    let opts = parse_stress_args(&args(&[
        "--streams",
        "4",
        "--channels",
        "2",
        "--devices",
        "4",
        "--stream-secs",
        "0.15",
        "--arrival-rate",
        "30",
        "--pace",
        "0",
        "--ring-slots",
        "256",
        "--chunk-samples",
        "2048",
        "--threads",
        "2",
        "--quiet",
    ]))
    .expect("stress flags parse");
    assert_eq!(run_stress(&opts), 0, "stress harness must pass");
}

#[test]
fn stress_cf32_dir_uploads_through_capture_files() {
    let dir = std::env::temp_dir().join("netscatter_stress_cf32");
    let opts = parse_stress_args(&args(&[
        "--streams",
        "2",
        "--devices",
        "4",
        "--stream-secs",
        "0.1",
        "--arrival-rate",
        "30",
        "--pace",
        "0",
        "--ring-slots",
        "256",
        "--chunk-samples",
        "2048",
        "--threads",
        "2",
        "--cf32-dir",
        dir.to_str().unwrap(),
        "--quiet",
    ]))
    .expect("stress flags parse");
    assert_eq!(run_stress(&opts), 0, "replay-file stress must pass");
    assert!(
        dir.join("stress0.cf32").exists() && dir.join("stress1.cf32").exists(),
        "capture files written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stress_connect_against_a_dead_address_fails_cleanly() {
    let opts = parse_stress_args(&args(&[
        "--streams",
        "1",
        "--devices",
        "4",
        "--stream-secs",
        "0.05",
        "--connect",
        "127.0.0.1:1", // nothing listens here
        "--quiet",
    ]))
    .expect("stress flags parse");
    assert_eq!(
        run_stress(&opts),
        1,
        "unreachable daemon is a failure, not a panic"
    );
}

//! Contract tests of the sample-level network simulator:
//!
//! 1. **Agreement** — at high SNR with negligible impairments, deliveries
//!    produced by the real superposition + decode chain match the
//!    analytical RSSI gate (within a small tolerance) at 16/64/256 devices.
//! 2. **Determinism** — sample-level metrics and the sample-level Fig. 17
//!    report are bit-identical at every worker-thread count.
//! 3. **Headline gains** — the NetScatter-vs-LoRa-backscatter gains of
//!    Figs. 18–19 still hold when deliveries come from the decode chain
//!    under the realistic office channel model.

use netscatter_baselines::tdma::LoraScheme;
use netscatter_sim::deployment::{Deployment, DeploymentConfig};
use netscatter_sim::experiments::{fig17_fidelity, Scale};
use netscatter_sim::fullround::ChannelModel;
use netscatter_sim::montecarlo::MonteCarlo;
use netscatter_sim::network::{
    lora_backscatter_metrics_with, netscatter_metrics, netscatter_metrics_with, Fidelity,
    NetScatterVariant,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn deployment() -> Deployment {
    Deployment::generate(
        DeploymentConfig::office(256),
        &mut StdRng::seed_from_u64(17),
    )
}

#[test]
fn sample_level_delivery_agrees_with_analytical_gate_at_high_snr() {
    let dep = deployment();
    let model = ChannelModel::pristine();
    let mc = MonteCarlo::with_threads(42, 2);
    for n in [16usize, 64, 256] {
        let analytical = netscatter_metrics(&dep, n, 40, NetScatterVariant::Config1);
        let sample = netscatter_metrics_with(
            &dep,
            n,
            40,
            NetScatterVariant::Config1,
            Fidelity::SampleLevel,
            &model,
            &mc,
        );
        let tolerance = (n / 20).max(1);
        assert!(
            analytical.delivered.abs_diff(sample.delivered) <= tolerance,
            "n={n}: analytical delivered {} vs sample-level {} (tolerance {tolerance})",
            analytical.delivered,
            sample.delivered
        );
        // The rates follow the deliveries: within 10% at high SNR.
        let ratio = sample.phy_rate_bps / analytical.phy_rate_bps;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "n={n}: phy-rate ratio {ratio}"
        );
    }
}

#[test]
fn sample_level_rounds_are_bit_identical_across_thread_counts() {
    let dep = deployment();
    let model = ChannelModel::office();
    let run = |threads: usize| {
        netscatter_metrics_with(
            &dep,
            64,
            40,
            NetScatterVariant::Config1,
            Fidelity::SampleLevel,
            &model,
            &MonteCarlo::with_threads(7, threads),
        )
    };
    let reference = run(1);
    for threads in [2usize, 4] {
        let got = run(threads);
        assert_eq!(
            got.phy_rate_bps.to_bits(),
            reference.phy_rate_bps.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(got, reference, "threads = {threads}");
    }
}

#[test]
fn sample_level_fig17_report_is_identical_at_any_thread_count() {
    let reference = fig17_fidelity(Scale::Quick, 5, Fidelity::SampleLevel, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            fig17_fidelity(Scale::Quick, 5, Fidelity::SampleLevel, threads),
            reference,
            "fig17 sample-level report differs at {threads} threads"
        );
    }
    assert!(reference.contains("sample-level delivery"));
}

#[test]
fn netscatter_beats_lora_baselines_at_256_devices_sample_level() {
    // The Fig. 18 / Fig. 19 headline must survive the move from the
    // analytical gate to real decoded rounds under the office channel.
    let dep = deployment();
    let model = ChannelModel::office();
    let mc = MonteCarlo::with_threads(42, 2);
    let ns = netscatter_metrics_with(
        &dep,
        256,
        40,
        NetScatterVariant::Config1,
        Fidelity::SampleLevel,
        &model,
        &mc,
    );
    let fixed = lora_backscatter_metrics_with(
        &dep,
        256,
        40,
        LoraScheme::fixed(),
        Fidelity::SampleLevel,
        &model,
        &mc,
    );
    let adapted = lora_backscatter_metrics_with(
        &dep,
        256,
        40,
        LoraScheme::rate_adapted(),
        Fidelity::SampleLevel,
        &model,
        &mc,
    );
    let gain_fixed = ns.link_layer_rate_bps / fixed.link_layer_rate_bps;
    let gain_adapted = ns.link_layer_rate_bps / adapted.link_layer_rate_bps;
    assert!(
        gain_fixed > 20.0,
        "sample-level gain over fixed-rate LoRa backscatter is only {gain_fixed:.1}x"
    );
    assert!(
        gain_adapted > 5.0,
        "sample-level gain over rate-adapted LoRa backscatter is only {gain_adapted:.1}x"
    );
    let lat_gain = fixed.latency_s / ns.latency_s;
    assert!(lat_gain > 20.0, "latency gain only {lat_gain:.1}x");
    // And the decode chain must actually deliver a large share of the
    // deployment each round under the office impairments.
    assert!(
        ns.delivered > 64,
        "only {} of 256 devices delivered per round",
        ns.delivered
    );
}

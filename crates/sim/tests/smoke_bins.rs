//! Smoke test: every experiment driver binary runs to completion on a small
//! problem size and prints a non-empty report.
//!
//! The binaries are executed as real subprocesses (cargo exposes their paths
//! through `CARGO_BIN_EXE_*`), so this also covers argument parsing and the
//! `--quick` scale switch, not just the underlying `experiments::*` calls.

use std::process::Command;

fn run(exe: &str, args: &[&str]) {
    let output = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} {args:?} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.trim().lines().count() >= 2,
        "{exe} printed no report:\n{stdout}",
    );
}

macro_rules! smoke {
    ($($name:ident => $args:expr;)*) => {$(
        #[test]
        fn $name() {
            run(env!(concat!("CARGO_BIN_EXE_", stringify!($name))), &$args);
        }
    )*};
}

smoke! {
    table1 => [];
    fig04 => ["--quick"];
    fig08 => [];
    fig09 => ["--quick"];
    fig12 => ["--quick"];
    fig14 => ["--quick"];
    fig15 => ["--quick"];
    fig16 => [];
    fig17 => ["--quick"];
    fig18 => ["--quick"];
    fig19 => ["--quick"];
    analysis_choir => [];
    analysis_capacity => [];
}

#[test]
fn network_figs_run_at_sample_fidelity() {
    // The tentpole smoke: Figs. 17–19 end-to-end through the sample-level
    // superposition + decode chain.
    for exe in [
        env!("CARGO_BIN_EXE_fig17"),
        env!("CARGO_BIN_EXE_fig18"),
        env!("CARGO_BIN_EXE_fig19"),
    ] {
        run(exe, &["--quick", "--fidelity", "sample"]);
    }
}

#[test]
fn perf_snapshot_writes_bench_json() {
    let out = std::env::temp_dir().join("netscatter_perf_snapshot_test.json");
    let net_out = std::env::temp_dir().join("netscatter_perf_snapshot_net_test.json");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&net_out);
    run(
        env!("CARGO_BIN_EXE_perf_snapshot"),
        &[
            "--out",
            out.to_str().unwrap(),
            "--network-out",
            net_out.to_str().unwrap(),
        ],
    );
    let json = std::fs::read_to_string(&out).expect("snapshot file written");
    for key in [
        "netscatter-perf-snapshot-v1",
        "padded_spectrum_ns",
        "symbols_per_sec",
        "fig15b_quick_ms",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let json = std::fs::read_to_string(&net_out).expect("network snapshot written");
    for key in [
        "netscatter-network-bench-v1",
        "device_symbols_per_sec",
        "\"devices\": 256",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&net_out);
}

//! Smoke test: the unified `netscatter` CLI and every shim binary run to
//! completion on a small problem size and print a non-empty report.
//!
//! The binaries are executed as real subprocesses (cargo exposes their paths
//! through `CARGO_BIN_EXE_*`), so this also covers the shared argument
//! parsing (`--quick`, `--seed`, `--threads`, `--fidelity`, `--format`),
//! not just the underlying `experiments::*` calls.

use std::process::{Command, Output};

fn spawn(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"))
}

fn run(exe: &str, args: &[&str]) -> String {
    let output = spawn(exe, args);
    assert!(
        output.status.success(),
        "{exe} {args:?} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        stdout.trim().lines().count() >= 2,
        "{exe} printed no report:\n{stdout}",
    );
    stdout
}

macro_rules! smoke {
    ($($name:ident => $args:expr;)*) => {$(
        #[test]
        fn $name() {
            run(env!(concat!("CARGO_BIN_EXE_", stringify!($name))), &$args);
        }
    )*};
}

smoke! {
    table1 => [];
    fig04 => ["--quick"];
    fig08 => [];
    fig09 => ["--quick"];
    fig12 => ["--quick"];
    fig14 => ["--quick"];
    fig15 => ["--quick"];
    fig16 => [];
    fig17 => ["--quick"];
    fig18 => ["--quick"];
    fig19 => ["--quick"];
    analysis_choir => [];
    analysis_capacity => [];
}

#[test]
fn network_figs_run_at_sample_fidelity() {
    // The sample-level smoke: Figs. 17–19 end-to-end through the
    // superposition + decode chain, via the shim flag surface.
    for exe in [
        env!("CARGO_BIN_EXE_fig17"),
        env!("CARGO_BIN_EXE_fig18"),
        env!("CARGO_BIN_EXE_fig19"),
    ] {
        run(exe, &["--quick", "--fidelity", "sample"]);
    }
}

#[test]
fn shims_accept_the_universal_seed_and_threads_flags() {
    // The seed is a flag now, not a constant baked into each binary: a
    // different seed must change the Monte-Carlo figures...
    let exe = env!("CARGO_BIN_EXE_fig04");
    let default = run(exe, &["--quick"]);
    let same = run(exe, &["--quick", "--seed", "42", "--threads", "2"]);
    let reseeded = run(exe, &["--quick", "--seed", "7"]);
    assert_eq!(default, same, "seed 42 is the default");
    assert_ne!(default, reseeded, "--seed must reach the experiment");
    // ...and unknown arguments still fail loudly.
    let bad = spawn(exe, &["--qiuck"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn netscatter_list_enumerates_all_former_drivers() {
    let exe = env!("CARGO_BIN_EXE_netscatter");
    let listing = run(exe, &["list"]);
    for id in [
        "table1",
        "fig04",
        "fig08",
        "fig09",
        "fig12",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "analysis_choir",
        "analysis_capacity",
        "gateway",
        "goodput",
        "latency",
        "perf",
    ] {
        assert!(listing.contains(id), "list is missing {id}:\n{listing}");
    }
}

#[test]
fn netscatter_run_emits_schema_versioned_json_for_every_driver() {
    use netscatter::json::Json;
    let exe = env!("CARGO_BIN_EXE_netscatter");
    // Every registered experiment except `perf` (covered by the snapshot
    // test below, where its JSON artifacts are exercised): run at quick
    // scale and validate the structured output parses and is stamped.
    for id in [
        "table1",
        "fig04",
        "fig08",
        "fig09",
        "fig12",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "analysis_choir",
        "analysis_capacity",
        "gateway",
        "goodput",
        "latency",
    ] {
        let stdout = run(exe, &["run", id, "--quick", "--format", "json"]);
        let doc = Json::parse(&stdout).unwrap_or_else(|e| panic!("{id}: invalid JSON: {e}"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(1),
            "{id}: missing schema_version"
        );
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some(id));
        assert!(
            !doc.get("tables")
                .and_then(Json::as_array)
                .expect("tables array")
                .is_empty(),
            "{id}: no tables"
        );
    }
}

#[test]
fn netscatter_sweep_produces_one_result_per_grid_point() {
    use netscatter::json::Json;
    let exe = env!("CARGO_BIN_EXE_netscatter");
    let stdout = run(
        exe,
        &[
            "sweep",
            "fig17",
            "--quick",
            "--set",
            "devices=16,48",
            "--set",
            "seed=1,2",
            "--format",
            "json",
        ],
    );
    let doc = Json::parse(&stdout).expect("sweep JSON parses");
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), 4, "2x2 grid");
    for r in results {
        assert_eq!(r.get("schema_version").and_then(Json::as_u64), Some(1));
    }
    // The swept field actually varies across results.
    let devices: Vec<u64> = results
        .iter()
        .map(|r| {
            r.get("scenario")
                .and_then(|s| s.get("devices"))
                .and_then(Json::as_u64)
                .expect("devices in scenario")
        })
        .collect();
    assert_eq!(devices, [16, 16, 48, 48]);
}

#[test]
fn netscatter_rejects_unknown_experiments_and_flags() {
    let exe = env!("CARGO_BIN_EXE_netscatter");
    for args in [
        ["run", "fig99"].as_slice(),
        ["run", "fig08", "--format", "yaml"].as_slice(),
        ["sweep", "fig17", "--set", "volume=11"].as_slice(),
        ["sweep", "fig17"].as_slice(),
        ["frobnicate"].as_slice(),
    ] {
        let out = spawn(exe, args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(
            !spawn(exe, args).stderr.is_empty(),
            "{args:?} needs a message"
        );
    }
}

#[test]
fn perf_snapshot_writes_schema_versioned_bench_json() {
    use netscatter::json::Json;
    let out = std::env::temp_dir().join("netscatter_perf_snapshot_test.json");
    let net_out = std::env::temp_dir().join("netscatter_perf_snapshot_net_test.json");
    let stream_out = std::env::temp_dir().join("netscatter_perf_snapshot_stream_test.json");
    let coding_out = std::env::temp_dir().join("netscatter_perf_snapshot_coding_test.json");
    let latency_out = std::env::temp_dir().join("netscatter_perf_snapshot_latency_test.json");
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&net_out);
    let _ = std::fs::remove_file(&stream_out);
    let _ = std::fs::remove_file(&coding_out);
    let _ = std::fs::remove_file(&latency_out);
    run(
        env!("CARGO_BIN_EXE_perf_snapshot"),
        &[
            "--out",
            out.to_str().unwrap(),
            "--network-out",
            net_out.to_str().unwrap(),
            "--stream-out",
            stream_out.to_str().unwrap(),
            "--coding-out",
            coding_out.to_str().unwrap(),
            "--latency-out",
            latency_out.to_str().unwrap(),
        ],
    );
    for (path, experiment, table, rate_column) in [
        (&out, "bench_decode", "decode", "symbols_per_sec"),
        (
            &net_out,
            "bench_network",
            "network",
            "device_symbols_per_sec",
        ),
        (&stream_out, "bench_stream", "stream", "msamples_per_sec"),
    ] {
        let text = std::fs::read_to_string(path).expect("snapshot file written");
        let doc = Json::parse(&text).expect("BENCH artifact is valid JSON");
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some(experiment)
        );
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        let t = &tables[0];
        assert_eq!(t.get("name").and_then(Json::as_str), Some(table));
        let columns = t.get("columns").and_then(Json::as_array).expect("columns");
        assert!(
            columns
                .iter()
                .any(|c| c.get("name").and_then(Json::as_str) == Some(rate_column)),
            "{experiment} is missing the {rate_column} column"
        );
        let rows = t.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 3, "{experiment}: 16/64/256-device rows");
    }
    // BENCH_stream additionally carries the multi-channel sharding table
    // ({1, 2, 4} channels, saturated + real-time-paced aggregates) and the
    // scaling/speedup scalars the CI gate reads.
    {
        let text = std::fs::read_to_string(&stream_out).expect("stream snapshot");
        let doc = Json::parse(&text).expect("BENCH_stream is valid JSON");
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        let multi = &tables[1];
        assert_eq!(
            multi.get("name").and_then(Json::as_str),
            Some("multi_channel")
        );
        let rows = multi.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 3, "1/2/4-channel rows");
        for (row, expected_k) in rows.iter().zip([1.0, 2.0, 4.0]) {
            let row = row.as_array().expect("row array");
            assert_eq!(row[0].as_f64(), Some(expected_k));
            for cell in &row[1..] {
                assert!(cell.as_f64().unwrap() > 0.0, "non-positive rate in {row:?}");
            }
        }
        let scalars = doc.get("scalars").expect("scalars object");
        let scalar = |name: &str| {
            scalars
                .get(name)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("BENCH_stream lacks scalar {name}"))
        };
        assert!(scalar("single_channel_msamples_per_sec") > 0.0);
        assert!(scalar("speedup_vs_pre_refactor") > 0.0);
        // Real-time-paced sources deliver at 500 ksps each, so doubling
        // the channels must grow the sustained aggregate materially even
        // on a single-core runner (the saturated counterpart may stay
        // flat there — that one is recorded, not gated).
        assert!(scalar("channel_scaling_1_to_2") > 1.5);
        assert!(scalar("saturated_channel_scaling_1_to_2") > 0.0);
    }
    // BENCH_coding carries one row per FEC scheme (hamming/rs/conv/
    // fountain) with positive encode and decode Msymbols/s.
    {
        let text = std::fs::read_to_string(&coding_out).expect("coding snapshot");
        let doc = Json::parse(&text).expect("BENCH_coding is valid JSON");
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("bench_coding")
        );
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        let t = &tables[0];
        assert_eq!(t.get("name").and_then(Json::as_str), Some("coding"));
        let columns = t.get("columns").and_then(Json::as_array).expect("columns");
        for name in ["encode_msymbols_per_sec", "decode_msymbols_per_sec"] {
            assert!(
                columns
                    .iter()
                    .any(|c| c.get("name").and_then(Json::as_str) == Some(name)),
                "BENCH_coding is missing the {name} column"
            );
        }
        let rows = t.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 4, "one row per FEC scheme");
        for row in rows {
            let row = row.as_array().expect("row array");
            let (rate, enc, dec) = (
                row[2].as_f64().unwrap(),
                row[3].as_f64().unwrap(),
                row[4].as_f64().unwrap(),
            );
            assert!(
                rate > 0.0 && rate <= 1.0,
                "code rate out of range in {row:?}"
            );
            assert!(enc > 0.0 && dec > 0.0, "non-positive codec rate in {row:?}");
        }
    }
    // BENCH_latency carries the per-stage quantile table (five stages per
    // device count) plus the p99 ingest->emit scalar the CI gate reads.
    {
        let text = std::fs::read_to_string(&latency_out).expect("latency snapshot");
        let doc = Json::parse(&text).expect("BENCH_latency is valid JSON");
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("bench_latency")
        );
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        let t = &tables[0];
        assert_eq!(t.get("name").and_then(Json::as_str), Some("latency"));
        let columns = t.get("columns").and_then(Json::as_array).expect("columns");
        for name in ["devices", "stage", "count", "p50_ms", "p95_ms", "p99_ms"] {
            assert!(
                columns
                    .iter()
                    .any(|c| c.get("name").and_then(Json::as_str) == Some(name)),
                "BENCH_latency is missing the {name} column"
            );
        }
        let rows = t.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 15, "5 stages x 16/64/256-device rows");
        // The end-to-end row (stage 0) at every size saw packets and its
        // quantiles are ordered.
        for row in rows {
            let row = row.as_array().expect("row array");
            let (stage, count) = (row[1].as_f64().unwrap(), row[2].as_f64().unwrap());
            let (p50, p95, p99) = (
                row[3].as_f64().unwrap(),
                row[4].as_f64().unwrap(),
                row[5].as_f64().unwrap(),
            );
            assert!(p50 <= p95 && p95 <= p99, "unordered quantiles in {row:?}");
            if stage == 0.0 {
                assert!(count > 0.0, "no ingest->emit packets in {row:?}");
                assert!(p99 > 0.0, "zero ingest->emit p99 in {row:?}");
            }
        }
        assert_eq!(
            tables[1].get("name").and_then(Json::as_str),
            Some("detect_samples")
        );
        let scalars = doc.get("scalars").expect("scalars object");
        let p99 = scalars
            .get("p99_ingest_to_emit_ms")
            .and_then(Json::as_f64)
            .expect("BENCH_latency lacks the p99 scalar");
        assert!(p99 > 0.0, "non-positive p99 ingest->emit latency");
    }
    // Unknown --format values are rejected with a usage error, not
    // silently defaulted.
    let bad = spawn(
        env!("CARGO_BIN_EXE_perf_snapshot"),
        &["--format", "xml", "--out", out.to_str().unwrap()],
    );
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--format"));
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&net_out);
    let _ = std::fs::remove_file(&stream_out);
    let _ = std::fs::remove_file(&coding_out);
    let _ = std::fs::remove_file(&latency_out);
}

#[test]
fn gateway_runs_at_both_fidelities_and_sweeps() {
    use netscatter::json::Json;
    let exe = env!("CARGO_BIN_EXE_netscatter");
    // Both fidelities through the real CLI, values deliberately
    // mixed-case (the enum-valued flags are case-insensitive). Small
    // stream/population so the smoke stays fast.
    for fidelity in ["Analytical", "SAMPLE"] {
        let stdout = run(
            exe,
            &[
                "run",
                "gateway",
                "--quick",
                "--devices",
                "16",
                "--payload-bits",
                "8",
                "--stream-secs",
                "0.1",
                "--arrival-rate",
                "30",
                "--fidelity",
                fidelity,
                "--format",
                "JSON",
            ],
        );
        let doc = Json::parse(&stdout).expect("gateway JSON parses");
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("gateway")
        );
    }
    // A sweep over chunk sizes: one result per grid point, and the decoded
    // payload statistics must be chunk-size invariant even though the
    // timing columns are not.
    let stdout = run(
        exe,
        &[
            "sweep",
            "gateway",
            "--quick",
            "--devices",
            "16",
            "--payload-bits",
            "8",
            "--stream-secs",
            "0.1",
            "--arrival-rate",
            "30",
            "--set",
            "chunk_samples=500,4096",
            "--format",
            "json",
        ],
    );
    let doc = Json::parse(&stdout).expect("sweep JSON parses");
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert_eq!(results.len(), 2);
    let decoded: Vec<String> = results
        .iter()
        .map(|r| {
            let tables = r.get("tables").and_then(Json::as_array).expect("tables");
            let rows = tables[0]
                .get("rows")
                .and_then(Json::as_array)
                .expect("rows");
            // devices, offered, decoded, false alarms, delivery, ber —
            // everything except the two trailing timing columns.
            rows.iter()
                .map(|row| {
                    let cells = row.as_array().expect("row");
                    format!("{:?}", &cells[..cells.len() - 2])
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect();
    assert_eq!(
        decoded[0], decoded[1],
        "decode statistics must not depend on the chunk size"
    );
}

#[test]
fn netscatter_run_suggests_the_nearest_experiment_id() {
    let exe = env!("CARGO_BIN_EXE_netscatter");
    let out = spawn(exe, &["run", "gatway", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean \"gateway\"?"),
        "missing suggestion:\n{stderr}"
    );
}

//! Golden parity: the redesigned experiment API must render byte-identical
//! text to the pre-redesign per-figure binaries.
//!
//! The files under `tests/golden/` were captured from the binaries as they
//! existed before the `Experiment`/`ExperimentResult` redesign, at quick
//! scale with the then-hardcoded seed 42 (and default fidelity; one extra
//! golden pins `fig17 --fidelity sample`). Each test runs the registered
//! experiment at the same scenario and compares `render_text` — plus the
//! trailing newline `println!` used to add — against the captured bytes.
//! Also covers the serde story: JSON → struct → JSON round trips for real
//! experiment results.

use netscatter::json::Json;
use netscatter_sim::experiment::{ExperimentResult, SCHEMA_VERSION};
use netscatter_sim::experiments::find;
use netscatter_sim::scenario::{Scale, Scenario};
use netscatter_sim::Fidelity;

/// The scenario the pre-redesign binaries ran under with `--quick`:
/// quick scale, seed 42, analytical fidelity, office deployment.
fn golden_scenario() -> Scenario {
    Scenario::builder().scale(Scale::Quick).seed(42).build()
}

fn assert_matches_golden(id: &str, scenario: &Scenario, golden: &str) {
    let exp = find(id).unwrap_or_else(|| panic!("{id} not registered"));
    let text = exp.render_text(&exp.run(scenario));
    // The former binaries printed the report through `println!`, so the
    // captured stdout is the report plus one extra newline.
    assert_eq!(
        format!("{text}\n"),
        golden,
        "{id}: text rendering diverged from the pre-redesign binary output"
    );
}

macro_rules! golden {
    ($($name:ident => $id:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_matches_golden(
                $id,
                &golden_scenario(),
                include_str!(concat!("golden/", $id, ".txt")),
            );
        }
    )*};
}

golden! {
    table1_matches_pre_redesign_output => "table1";
    fig04_matches_pre_redesign_output => "fig04";
    fig08_matches_pre_redesign_output => "fig08";
    fig09_matches_pre_redesign_output => "fig09";
    fig12_matches_pre_redesign_output => "fig12";
    fig14_matches_pre_redesign_output => "fig14";
    fig15_matches_pre_redesign_output => "fig15";
    fig16_matches_pre_redesign_output => "fig16";
    fig17_matches_pre_redesign_output => "fig17";
    fig18_matches_pre_redesign_output => "fig18";
    fig19_matches_pre_redesign_output => "fig19";
    analysis_choir_matches_pre_redesign_output => "analysis_choir";
    analysis_capacity_matches_pre_redesign_output => "analysis_capacity";
}

#[test]
fn fig17_sample_fidelity_matches_pre_redesign_output() {
    let mut scenario = golden_scenario();
    scenario.fidelity = Fidelity::SampleLevel;
    assert_matches_golden("fig17", &scenario, include_str!("golden/fig17_sample.txt"));
}

#[test]
fn experiment_results_round_trip_through_json() {
    // Real (cheap) experiments, not synthetic fixtures: run, serialize,
    // parse, deserialize, and compare structs and re-serialized bytes.
    let scenario = golden_scenario();
    for id in ["table1", "fig08", "analysis_capacity"] {
        let exp = find(id).unwrap();
        let original = exp.run(&scenario);
        assert_eq!(original.schema_version, SCHEMA_VERSION);
        let text = original.to_json().to_string_pretty();
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION),
            "{id}: schema_version must be explicit in the JSON"
        );
        let parsed = ExperimentResult::from_json(&doc).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(parsed, original, "{id}: JSON -> struct round trip");
        assert_eq!(
            parsed.to_json().to_string_pretty(),
            text,
            "{id}: struct -> JSON is byte-stable"
        );
    }
}

#[test]
fn rendering_is_a_pure_function_of_the_result() {
    // Two runs at the same scenario produce identical structures and
    // therefore identical renderings in every sink.
    let exp = find("fig04").unwrap();
    let scenario = golden_scenario();
    let a = exp.run(&scenario);
    let b = exp.run(&scenario);
    assert_eq!(a, b);
    assert_eq!(exp.render_text(&a), exp.render_text(&b));
    assert_eq!(a.to_csv(), b.to_csv());
}

//! Property-based contracts for the coded link layer.
//!
//! The three codec guarantees the satellite pins down:
//! 1. clean payloads round-trip bit-identically through every codec;
//! 2. random error patterns up to each code's guaranteed capability are
//!    corrected exactly;
//! 3. patterns beyond the capability are *flagged*, never silently
//!    delivered as corrupt application data — at the codec level where the
//!    code detects it, and at the frame level by the CRC-16 backstop for
//!    codes (Hamming, convolutional) that can miscorrect.
//!
//! Plus the framing contract: segmentation survives arbitrary bit-slicing
//! offsets — any payload length reassembles exactly.

use netscatter_coding::conv::ConvCodec;
use netscatter_coding::frame::{FrameAssembler, FrameCodec, FrameOutcome};
use netscatter_coding::hamming::HammingCodec;
use netscatter_coding::rs::{RsCodec, RS_PARITY_BYTES};
use netscatter_coding::{block_codec, Codec, CodingScheme};
use proptest::prelude::*;

/// A payload_bits geometry valid for every framed scheme: 16 data bits.
fn framed_payload_bits(scheme: CodingScheme) -> usize {
    match scheme {
        CodingScheme::None => unreachable!("none is not framed"),
        CodingScheme::Hamming => 84,
        CodingScheme::Rs => 112,
        CodingScheme::Conv => 108,
        CodingScheme::Fountain => 48,
    }
}

fn scheme_from_index(i: usize) -> CodingScheme {
    [
        CodingScheme::Hamming,
        CodingScheme::Rs,
        CodingScheme::Conv,
        CodingScheme::Fountain,
    ][i % 4]
}

fn bits_from_seed(seed: u64, len: usize) -> Vec<bool> {
    (0..len)
        .map(|i| (seed >> (i % 61)) & 1 == (i as u64 / 61) % 2)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: clean round trips are bit-identical for every codec at
    /// arbitrary granule-aligned lengths.
    #[test]
    fn codecs_round_trip_clean_payloads(scheme_i in 0usize..4, granules in 3usize..40, seed in 0u64..u64::MAX) {
        let codec = block_codec(scheme_from_index(scheme_i));
        let data = bits_from_seed(seed, granules * codec.data_granule());
        let coded = codec.encode(&data);
        prop_assert_eq!(coded.len(), codec.encoded_len(data.len()));
        let decoded = codec.decode(&coded);
        prop_assert!(!decoded.failed);
        prop_assert_eq!(decoded.corrected, 0);
        prop_assert_eq!(decoded.bits, data);
    }

    /// Contract 2 (Hamming): one error per 7-bit codeword always corrects.
    #[test]
    fn hamming_corrects_one_error_per_codeword(words in 2usize..30, seed in 0u64..u64::MAX) {
        let codec = HammingCodec;
        let data = bits_from_seed(seed, words * 4);
        let mut coded = codec.encode(&data);
        for w in 0..words {
            let flip = w * 7 + (seed as usize + w) % 7;
            coded[flip] = !coded[flip];
        }
        let decoded = codec.decode(&coded);
        prop_assert!(!decoded.failed);
        prop_assert_eq!(decoded.corrected, words);
        prop_assert_eq!(decoded.bits, data);
    }

    /// Contract 2 (Reed-Solomon): any ≤ t = 4 byte errors correct exactly.
    #[test]
    fn rs_corrects_up_to_t_byte_errors(msg_bytes in 5usize..40, errors in 1usize..=RS_PARITY_BYTES / 2, seed in 0u64..u64::MAX) {
        let codec = RsCodec::new();
        let data = bits_from_seed(seed, msg_bytes * 8);
        let mut coded = codec.encode(&data);
        let total_bytes = coded.len() / 8;
        let mut hit = Vec::new();
        let mut cursor = seed;
        while hit.len() < errors {
            cursor = cursor.wrapping_mul(6364136223846793005).wrapping_add(1);
            let byte = (cursor >> 33) as usize % total_bytes;
            if !hit.contains(&byte) {
                hit.push(byte);
            }
        }
        for &byte in &hit {
            let bit = byte * 8 + (cursor as usize + byte) % 8;
            coded[bit] = !coded[bit];
        }
        let decoded = codec.decode(&coded);
        prop_assert!(!decoded.failed);
        prop_assert_eq!(decoded.corrected, errors);
        prop_assert_eq!(decoded.bits, data);
    }

    /// Contract 3 (Reed-Solomon): the decoder never hands back a block it
    /// claims corrected unless it is a self-consistent codeword, and ≥ 5
    /// byte errors are overwhelmingly flagged as failures.
    #[test]
    fn rs_flags_beyond_capability(seed in 0u64..u64::MAX) {
        let codec = RsCodec::new();
        let data = bits_from_seed(seed, 24 * 8);
        let clean = codec.encode(&data);
        let total_bytes = clean.len() / 8;
        let mut cursor = seed | 1;
        let mut silent_corruptions = 0;
        for trial in 0..16u64 {
            let mut coded = clean.clone();
            let mut hit = Vec::new();
            while hit.len() < 6 {
                cursor = cursor.wrapping_mul(6364136223846793005).wrapping_add(trial);
                let byte = (cursor >> 33) as usize % total_bytes;
                if !hit.contains(&byte) {
                    hit.push(byte);
                }
            }
            for &byte in &hit {
                coded[byte * 8 + (cursor as usize + byte) % 8] ^= true;
            }
            let decoded = codec.decode(&coded);
            if !decoded.failed && decoded.bits != data {
                // Miscorrection beyond t is possible only onto another true
                // codeword — re-encoding must reproduce what was decoded.
                silent_corruptions += 1;
            }
        }
        // 6 errors land ≥ 2 beyond t; a correct decoder flags essentially
        // all of them (miscorrection odds are ~1e-4 per trial).
        prop_assert_eq!(silent_corruptions, 0);
    }

    /// Contract 2 (convolutional): isolated single errors far apart always
    /// correct (free distance 10 ⇒ ≥ 4 scattered flips are safe).
    #[test]
    fn conv_corrects_scattered_errors(data_bits in 60usize..200, seed in 0u64..u64::MAX) {
        let codec = ConvCodec;
        let data = bits_from_seed(seed, data_bits);
        let mut coded = codec.encode(&data);
        let window = coded.len() / 4;
        for w in 0..4 {
            let pos = w * window + (seed as usize >> (w * 7)) % (window / 2);
            coded[pos] = !coded[pos];
        }
        let decoded = codec.decode(&coded);
        prop_assert!(!decoded.failed);
        prop_assert_eq!(decoded.corrected, 4);
        prop_assert_eq!(decoded.bits, data);
    }

    /// Contract 3, frame level: arbitrary error patterns — any density, any
    /// scheme — either deliver the exact original data with a verified CRC
    /// or are flagged as failed frames. Never silent corruption.
    #[test]
    fn frames_never_silently_corrupt(scheme_i in 0usize..4, flips in 1usize..30, seed in 0u64..u64::MAX) {
        let scheme = scheme_from_index(scheme_i);
        let codec = FrameCodec::new(scheme, framed_payload_bits(scheme)).unwrap();
        let data = bits_from_seed(seed, codec.data_bits());
        let mut raw = codec.encode_frame((seed % 256) as u8, &data);
        let mut cursor = seed | 1;
        for _ in 0..flips {
            cursor = cursor.wrapping_mul(6364136223846793005).wrapping_add(13);
            let pos = (cursor >> 33) as usize % raw.len();
            raw[pos] = !raw[pos];
        }
        let out = codec.decode_frame(&raw);
        if out.crc_ok {
            prop_assert_eq!(out.seq, (seed % 256) as u8);
            prop_assert_eq!(out.data, data);
        }
    }

    /// Framing contract: segmentation + reassembly round-trips payloads of
    /// arbitrary length — every bit-slicing offset, ragged tails included.
    #[test]
    fn framing_survives_arbitrary_slicing_offsets(scheme_i in 0usize..4, payload_len in 0usize..600, first_seq in 0usize..256, seed in 0u64..u64::MAX) {
        let scheme = scheme_from_index(scheme_i);
        let codec = FrameCodec::new(scheme, framed_payload_bits(scheme)).unwrap();
        let assembler = FrameAssembler::new(codec);
        let payload = bits_from_seed(seed, payload_len);
        let frames = assembler.segment(&payload, first_seq as u8);
        prop_assert_eq!(frames.len(), assembler.frames_for(payload_len));
        let outcomes: Vec<FrameOutcome> = frames
            .iter()
            .map(|f| assembler.codec().decode_frame(f))
            .collect();
        for (i, out) in outcomes.iter().enumerate() {
            prop_assert!(out.crc_ok);
            prop_assert_eq!(out.seq, (first_seq as u8).wrapping_add(i as u8));
        }
        let back = assembler.reassemble(&outcomes);
        prop_assert_eq!(back.bits, payload);
        prop_assert_eq!(back.frames_ok, frames.len());
        prop_assert_eq!(back.frames_failed, 0);
    }
}

//! Convolutional K=7 rate-1/2 code with hard-decision Viterbi decoding.
//!
//! Generators 171/133 (octal) — the NASA-standard pair with free distance
//! 10. Each frame is zero-flushed with 6 tail bits so the trellis starts and
//! ends in state 0. The decoder keeps the full per-step survivor matrix
//! (frames are a few hundred bits, so the trellis is tiny) and traces back
//! from the flushed end state; the survivor layout is per-state, so
//! soft-decision branch metrics can replace the Hamming metric later
//! without touching the trellis structure.

use crate::{Codec, Decoded};

/// Constraint length (memory + 1).
pub const CONSTRAINT: usize = 7;

/// Zero tail bits flushed after the data to return the trellis to state 0.
pub const TAIL_BITS: usize = CONSTRAINT - 1;

/// Trellis states (2^(K-1)).
const STATES: usize = 1 << TAIL_BITS;

/// Generator polynomials, lowest bit = oldest register stage.
const G1: u8 = 0o171;
const G2: u8 = 0o133;

/// Parity of the masked 7-bit register.
fn parity7(x: u8) -> bool {
    (x & 0x7f).count_ones() % 2 == 1
}

/// The two output bits for register contents `reg` = input bit ‖ state.
fn branch_bits(reg: u8) -> (bool, bool) {
    (parity7(reg & G1), parity7(reg & G2))
}

/// Convolutional K=7 rate-1/2 codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvCodec;

impl Codec for ConvCodec {
    fn name(&self) -> &'static str {
        "conv"
    }

    fn data_granule(&self) -> usize {
        1
    }

    fn encoded_len(&self, data_bits: usize) -> usize {
        (data_bits + TAIL_BITS) * 2
    }

    fn data_len(&self, coded_bits: usize) -> Option<usize> {
        if coded_bits % 2 != 0 {
            return None;
        }
        (coded_bits / 2).checked_sub(TAIL_BITS).filter(|&d| d > 0)
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity((data.len() + TAIL_BITS) * 2);
        let mut state = 0u8;
        for &bit in data.iter().chain(std::iter::repeat(&false).take(TAIL_BITS)) {
            let reg = ((bit as u8) << TAIL_BITS) | state;
            let (a, b) = branch_bits(reg);
            out.push(a);
            out.push(b);
            state = reg >> 1;
        }
        out
    }

    fn decode(&self, coded: &[bool]) -> Decoded {
        let Some(data_bits) = self.data_len(coded.len()) else {
            return Decoded {
                bits: Vec::new(),
                corrected: 0,
                failed: true,
            };
        };
        let steps = coded.len() / 2;
        const INF: u32 = u32::MAX / 2;
        let mut metric = [INF; STATES];
        metric[0] = 0;
        // survivors[t][next_state] = low bit of the winning predecessor.
        let mut survivors = vec![[false; STATES]; steps];
        for (t, decisions) in survivors.iter_mut().enumerate() {
            let (r0, r1) = (coded[2 * t], coded[2 * t + 1]);
            let mut next = [INF; STATES];
            for (ns, slot) in next.iter_mut().enumerate() {
                let input = (ns >> (TAIL_BITS - 1)) as u8;
                let pred_base = (ns & (STATES / 2 - 1)) << 1;
                let mut best = INF;
                let mut best_low = false;
                for low in [false, true] {
                    let pred = pred_base | low as usize;
                    if metric[pred] >= INF {
                        continue;
                    }
                    let reg = (input << TAIL_BITS) | pred as u8;
                    let (a, b) = branch_bits(reg);
                    let cost = metric[pred] + (a != r0) as u32 + (b != r1) as u32;
                    if cost < best {
                        best = cost;
                        best_low = low;
                    }
                }
                *slot = best;
                decisions[ns] = best_low;
            }
            metric = next;
        }
        // The zero flush pins the end state; if nothing reached it the
        // stream is structurally broken.
        if metric[0] >= INF {
            return Decoded {
                bits: Vec::new(),
                corrected: 0,
                failed: true,
            };
        }
        let mut bits = vec![false; steps];
        let mut state = 0usize;
        for t in (0..steps).rev() {
            bits[t] = state >> (TAIL_BITS - 1) == 1;
            let low = survivors[t][state];
            state = ((state & (STATES / 2 - 1)) << 1) | low as usize;
        }
        bits.truncate(data_bits);
        Decoded {
            corrected: metric[0] as usize,
            bits,
            failed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_round_trip() {
        let codec = ConvCodec;
        let data: Vec<bool> = (0..75).map(|i| i % 3 == 1).collect();
        let coded = codec.encode(&data);
        assert_eq!(coded.len(), codec.encoded_len(data.len()));
        let decoded = codec.decode(&coded);
        assert_eq!(decoded.bits, data);
        assert_eq!(decoded.corrected, 0);
        assert!(!decoded.failed);
    }

    #[test]
    fn corrects_scattered_errors() {
        // Free distance 10: any 4 errors spaced apart decode correctly.
        let codec = ConvCodec;
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
        let clean = codec.encode(&data);
        for trial in 0..200 {
            let mut noisy = clean.clone();
            // Four isolated flips, each in its own 40-bit window.
            for w in 0..4 {
                let pos = w * 60 + rng.gen_range(0usize..40);
                noisy[pos] = !noisy[pos];
            }
            let decoded = codec.decode(&noisy);
            assert_eq!(decoded.bits, data, "trial {trial}");
            assert_eq!(decoded.corrected, 4);
        }
    }

    #[test]
    fn one_percent_random_ber_decodes_clean() {
        let codec = ConvCodec;
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<bool> = (0..200).map(|_| rng.gen_bool(0.5)).collect();
        let clean = codec.encode(&data);
        let mut exact = 0;
        for _ in 0..100 {
            let mut noisy = clean.clone();
            for bit in noisy.iter_mut() {
                if rng.gen_bool(0.01) {
                    *bit = !*bit;
                }
            }
            if codec.decode(&noisy).bits == data {
                exact += 1;
            }
        }
        assert!(exact >= 97, "only {exact}/100 frames survived 1% BER");
    }

    #[test]
    fn rejects_ragged_lengths() {
        assert!(ConvCodec.decode(&[true; 13]).failed);
        assert_eq!(ConvCodec.data_len(12), None); // would leave zero data bits
        assert_eq!(ConvCodec.data_len(14), Some(1));
    }
}

//! LT fountain coding for the lossy-dense broadcast mode.
//!
//! In a dense round, individual frames are erased (CRC failure) with
//! non-trivial probability; a fountain turns those erasures into a simple
//! "keep listening" story. The gateway treats every CRC-clean frame as one
//! LT symbol whose neighbor set is derived *deterministically* from the
//! symbol index — transmitter and receiver share only `(blocks, block_bits,
//! seed)`, never a neighbor list. Degrees follow the ideal soliton
//! distribution with a small degree-1 floor so peeling keeps a ripple alive
//! at the small block counts a round carries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-index RNG salt: decouples neighbor-set streams from any other use of
/// the same seed.
const LT_SALT: u64 = 0x4c54_5f53_594d_424f;

/// Probability floor for degree-1 symbols (keeps the peeling ripple alive).
const DEGREE_ONE_FLOOR: f64 = 0.08;

/// The shared transmitter/receiver parameters of one fountain session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtConfig {
    /// Source blocks the payload is split into.
    pub blocks: usize,
    /// Bits per source block (every symbol carries this many bits).
    pub block_bits: usize,
    /// Session seed; both ends derive neighbor sets from it.
    pub seed: u64,
}

/// Samples the symbol degree: ideal soliton with a degree-1 floor.
fn sample_degree(rng: &mut StdRng, blocks: usize) -> usize {
    if blocks <= 1 {
        return 1;
    }
    if rng.gen_bool(DEGREE_ONE_FLOOR) {
        return 1;
    }
    let k = blocks as f64;
    let v: f64 = rng.gen_range(0.0..1.0);
    if v < 1.0 / k {
        1
    } else {
        ((1.0 / (1.0 + 1.0 / k - v)).ceil() as usize).clamp(2, blocks)
    }
}

/// The deterministic neighbor set of symbol `index` (sorted, distinct).
pub fn neighbors(cfg: &LtConfig, index: u64) -> Vec<usize> {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ LT_SALT);
    let degree = sample_degree(&mut rng, cfg.blocks);
    let mut set = Vec::with_capacity(degree);
    while set.len() < degree {
        let pick = rng.gen_range(0..cfg.blocks);
        if !set.contains(&pick) {
            set.push(pick);
        }
    }
    set.sort_unstable();
    set
}

/// Encodes symbol `index`: the XOR of its neighbor blocks.
/// `source` must hold exactly `cfg.blocks` blocks of `cfg.block_bits` bits.
pub fn encode_symbol(cfg: &LtConfig, source: &[Vec<bool>], index: u64) -> Vec<bool> {
    assert_eq!(source.len(), cfg.blocks, "source block count mismatch");
    let mut out = vec![false; cfg.block_bits];
    for &n in &neighbors(cfg, index) {
        assert_eq!(source[n].len(), cfg.block_bits, "block {n} width mismatch");
        for (o, &b) in out.iter_mut().zip(&source[n]) {
            *o ^= b;
        }
    }
    out
}

/// Splits a payload into `blocks` zero-padded blocks for a fountain session.
pub fn blocks_from_payload(payload: &[bool], blocks: usize, block_bits: usize) -> Vec<Vec<bool>> {
    assert!(
        blocks * block_bits >= payload.len(),
        "payload overflows blocks"
    );
    (0..blocks)
        .map(|i| {
            let mut block = vec![false; block_bits];
            let start = i * block_bits;
            for (j, slot) in block.iter_mut().enumerate() {
                if let Some(&bit) = payload.get(start + j) {
                    *slot = bit;
                }
            }
            block
        })
        .collect()
}

/// Peeling (belief-propagation) LT decoder: absorb CRC-clean symbols in any
/// order; erased symbols are simply never absorbed.
#[derive(Debug)]
pub struct LtDecoder {
    cfg: LtConfig,
    recovered: Vec<Option<Vec<bool>>>,
    num_recovered: usize,
    /// Symbols still referencing ≥ 2 unrecovered blocks, kept reduced.
    pending: Vec<(Vec<usize>, Vec<bool>)>,
    symbols_absorbed: usize,
}

impl LtDecoder {
    /// A fresh decoder for one session.
    pub fn new(cfg: LtConfig) -> LtDecoder {
        LtDecoder {
            recovered: vec![None; cfg.blocks],
            cfg,
            num_recovered: 0,
            pending: Vec::new(),
            symbols_absorbed: 0,
        }
    }

    /// The session parameters.
    pub fn config(&self) -> &LtConfig {
        &self.cfg
    }

    /// Source blocks recovered so far.
    pub fn recovered_blocks(&self) -> usize {
        self.num_recovered
    }

    /// Symbols absorbed so far (excluding erasures, which are never fed).
    pub fn symbols_absorbed(&self) -> usize {
        self.symbols_absorbed
    }

    /// True once every source block is recovered.
    pub fn is_complete(&self) -> bool {
        self.num_recovered == self.cfg.blocks
    }

    /// XORs every already-recovered neighbor out of `(set, data)`.
    fn reduce(&self, set: &mut Vec<usize>, data: &mut [bool]) {
        set.retain(|&n| {
            if let Some(block) = &self.recovered[n] {
                for (d, &b) in data.iter_mut().zip(block) {
                    *d ^= b;
                }
                false
            } else {
                true
            }
        });
    }

    /// Absorbs one CRC-clean symbol and runs the peeling ripple.
    pub fn absorb(&mut self, index: u64, data: &[bool]) {
        assert_eq!(data.len(), self.cfg.block_bits, "symbol width mismatch");
        self.symbols_absorbed += 1;
        let mut set = neighbors(&self.cfg, index);
        let mut data = data.to_vec();
        self.reduce(&mut set, &mut data);
        match set.len() {
            0 => {}
            1 => self.recover(set[0], data),
            _ => self.pending.push((set, data)),
        }
    }

    /// Records a recovered block and peels everything it unlocks.
    fn recover(&mut self, block: usize, data: Vec<bool>) {
        if self.recovered[block].is_some() {
            return;
        }
        self.recovered[block] = Some(data);
        self.num_recovered += 1;
        // Ripple: reduce pending symbols against the growing recovered set
        // until a full pass makes no progress.
        loop {
            let mut progressed = false;
            let work = std::mem::take(&mut self.pending);
            for (mut set, mut data) in work {
                self.reduce(&mut set, &mut data);
                match set.len() {
                    0 => progressed = true,
                    1 => {
                        let target = set[0];
                        if self.recovered[target].is_none() {
                            self.recovered[target] = Some(data);
                            self.num_recovered += 1;
                        }
                        progressed = true;
                    }
                    _ => self.pending.push((set, data)),
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// One recovered block, if available.
    pub fn block(&self, i: usize) -> Option<&[bool]> {
        self.recovered.get(i).and_then(|b| b.as_deref())
    }

    /// The full reassembled payload once complete (blocks concatenated,
    /// including any tail padding the encoder added).
    pub fn payload(&self) -> Option<Vec<bool>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.cfg.blocks * self.cfg.block_bits);
        for block in self.recovered.iter().flatten() {
            out.extend_from_slice(block);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(seed: u64) -> (LtConfig, Vec<Vec<bool>>, Vec<bool>) {
        let cfg = LtConfig {
            blocks: 16,
            block_bits: 24,
            seed,
        };
        let payload: Vec<bool> = (0..cfg.blocks * cfg.block_bits)
            .map(|i| (i * 31 + seed as usize) % 7 < 3)
            .collect();
        let source = blocks_from_payload(&payload, cfg.blocks, cfg.block_bits);
        (cfg, source, payload)
    }

    #[test]
    fn neighbor_sets_are_deterministic_and_in_range() {
        let (cfg, _, _) = session(1);
        for index in 0..200u64 {
            let a = neighbors(&cfg, index);
            let b = neighbors(&cfg, index);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.len() <= cfg.blocks);
            assert!(a.iter().all(|&n| n < cfg.blocks));
            assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        }
    }

    #[test]
    fn lossless_stream_decodes_with_modest_overhead() {
        let (cfg, source, payload) = session(2);
        let mut dec = LtDecoder::new(cfg);
        let mut used = 0;
        for index in 0..(cfg.blocks as u64 * 6) {
            dec.absorb(index, &encode_symbol(&cfg, &source, index));
            used = index + 1;
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete(), "never completed");
        assert_eq!(dec.payload().unwrap(), payload);
        assert!(
            used <= cfg.blocks as u64 * 4,
            "needed {used} symbols for {} blocks",
            cfg.blocks
        );
    }

    #[test]
    fn survives_heavy_erasures() {
        let (cfg, source, payload) = session(3);
        let mut dec = LtDecoder::new(cfg);
        // Drop every third symbol (33% erasure — worse than any measured
        // frame-loss operating point).
        for index in 0..(cfg.blocks as u64 * 9) {
            if index % 3 == 2 {
                continue;
            }
            dec.absorb(index, &encode_symbol(&cfg, &source, index));
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.payload().unwrap(), payload);
    }

    #[test]
    fn single_block_session_is_trivially_repetition() {
        let cfg = LtConfig {
            blocks: 1,
            block_bits: 16,
            seed: 9,
        };
        let payload: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let source = blocks_from_payload(&payload, 1, 16);
        let mut dec = LtDecoder::new(cfg);
        dec.absorb(0, &encode_symbol(&cfg, &source, 0));
        assert!(dec.is_complete());
        assert_eq!(dec.payload().unwrap(), payload);
    }
}

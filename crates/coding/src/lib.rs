//! Coded link layer for the NetScatter reproduction.
//!
//! The sample-level simulator leaves a residual ~1e-2 per-device BER at 256
//! concurrent devices — raw BER is the wrong production metric, so this crate
//! supplies what a deployment actually runs on top of the PHY: forward error
//! correction, CRC-checked framing, and an optional rateless broadcast mode.
//!
//! * [`Codec`] — the block-codec contract ([`hamming::HammingCodec`],
//!   [`rs::RsCodec`], [`conv::ConvCodec`], and the pass-through
//!   [`IdentityCodec`]), each mapping a data bit-slice to an on-air bit-slice
//!   and back with an error-corrected, pass/fail-flagged [`Decoded`] result.
//! * [`frame`] — CRC-16-checked frames with sequence + length headers, and a
//!   [`frame::FrameAssembler`] that segments an application payload into
//!   frames and reassembles decoded frames with per-frame pass/fail.
//! * [`fountain`] — LT fountain coding over CRC-gated frame erasures for
//!   lossy dense rounds (broadcast mode).
//!
//! Everything here is deterministic, allocation-light, and free of floating
//! point in the encode/decode paths, so results are bit-identical at any
//! thread count.

pub mod conv;
pub mod crc;
pub mod fountain;
pub mod frame;
pub mod gf256;
pub mod hamming;
pub mod rs;

use serde::{Deserialize, Serialize};

/// The coding scheme a scenario (or stream header) selects.
///
/// `None` is the seed behavior: raw payload bits on the air, no framing.
/// `Fountain` puts uncoded CRC-framed LT symbols on the air — the rateless
/// protection comes from redundancy across rounds, not within a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingScheme {
    /// Raw bits on the air (seed behavior, no framing or CRC).
    None,
    /// Hamming(7,4): corrects 1 bit per 7-bit codeword, rate 4/7.
    Hamming,
    /// Shortened Reed-Solomon over GF(2^8) with 8 parity bytes (t = 4).
    Rs,
    /// Convolutional K=7 rate-1/2 (generators 171/133 octal), hard Viterbi.
    Conv,
    /// LT fountain broadcast mode: uncoded CRC-framed symbols, erasure
    /// recovery across rounds.
    Fountain,
}

impl CodingScheme {
    /// Every scheme, in CLI/report order.
    pub const ALL: [CodingScheme; 5] = [
        CodingScheme::None,
        CodingScheme::Hamming,
        CodingScheme::Rs,
        CodingScheme::Conv,
        CodingScheme::Fountain,
    ];

    /// The stable CLI / wire name.
    pub fn name(&self) -> &'static str {
        match self {
            CodingScheme::None => "none",
            CodingScheme::Hamming => "hamming",
            CodingScheme::Rs => "rs",
            CodingScheme::Conv => "conv",
            CodingScheme::Fountain => "fountain",
        }
    }

    /// Parses a CLI / wire name back to a scheme.
    pub fn parse(s: &str) -> Result<CodingScheme, String> {
        CodingScheme::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = CodingScheme::ALL.iter().map(|c| c.name()).collect();
                format!(
                    "unknown coding scheme '{s}' (expected one of {})",
                    names.join("|")
                )
            })
    }
}

/// The result of one block decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The recovered data bits (length = `data_len(coded.len())`).
    pub bits: Vec<bool>,
    /// How many channel errors the decoder corrected (codec-specific unit:
    /// bits for Hamming/conv path metric, symbols for Reed-Solomon).
    pub corrected: usize,
    /// True when the decoder knows the block is unrecoverable. A `false`
    /// here does NOT guarantee correctness — short codes can miscorrect
    /// beyond their design distance, which is why every frame carries a
    /// CRC-16 backstop on top.
    pub failed: bool,
}

/// A block forward-error-correction codec: fixed-rate map from data bits to
/// coded (on-air) bits and back.
pub trait Codec: Send + Sync {
    /// Stable short name ("identity", "hamming", "rs", "conv").
    fn name(&self) -> &'static str;

    /// Data-bit granularity: `encode` accepts only multiples of this.
    fn data_granule(&self) -> usize;

    /// On-air bits produced for `data_bits` data bits (must be a multiple of
    /// [`Codec::data_granule`]).
    fn encoded_len(&self, data_bits: usize) -> usize;

    /// Inverse of [`Codec::encoded_len`]: the data bits recoverable from a
    /// coded block of `coded_bits`, or `None` when no valid geometry
    /// produces that length.
    fn data_len(&self, coded_bits: usize) -> Option<usize>;

    /// Encodes `data` (length a multiple of [`Codec::data_granule`]).
    fn encode(&self, data: &[bool]) -> Vec<bool>;

    /// Decodes a coded block of a length [`Codec::data_len`] accepts.
    fn decode(&self, coded: &[bool]) -> Decoded;
}

/// The pass-through codec: coded bits are the data bits (rate 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityCodec;

impl Codec for IdentityCodec {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn data_granule(&self) -> usize {
        1
    }

    fn encoded_len(&self, data_bits: usize) -> usize {
        data_bits
    }

    fn data_len(&self, coded_bits: usize) -> Option<usize> {
        Some(coded_bits)
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        data.to_vec()
    }

    fn decode(&self, coded: &[bool]) -> Decoded {
        Decoded {
            bits: coded.to_vec(),
            corrected: 0,
            failed: false,
        }
    }
}

/// The block codec a scheme's frames run through on the air.
///
/// `None` and `Fountain` both return the identity: `None` carries no inner
/// code at all, and fountain symbols fly uncoded — their protection is the
/// cross-round LT layer in [`fountain`].
pub fn block_codec(scheme: CodingScheme) -> Box<dyn Codec> {
    match scheme {
        CodingScheme::None | CodingScheme::Fountain => Box::new(IdentityCodec),
        CodingScheme::Hamming => Box::new(hamming::HammingCodec),
        CodingScheme::Rs => Box::new(rs::RsCodec::new()),
        CodingScheme::Conv => Box::new(conv::ConvCodec),
    }
}

/// Writes `value` into `out` as `width` bits, most-significant first.
pub fn push_bits(out: &mut Vec<bool>, value: u64, width: usize) {
    for i in (0..width).rev() {
        out.push((value >> i) & 1 == 1);
    }
}

/// Reads `width` bits (most-significant first) starting at `bits[0]`.
/// Panics if `bits` is shorter than `width`.
pub fn read_bits(bits: &[bool], width: usize) -> u64 {
    let mut value = 0u64;
    for &b in &bits[..width] {
        value = (value << 1) | b as u64;
    }
    value
}

/// Packs a bit slice (MSB-first per byte) into bytes; the length must be a
/// multiple of 8.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0, "bit length must be byte-aligned");
    bits.chunks(8)
        .map(|chunk| read_bits(chunk, 8) as u8)
        .collect()
}

/// Unpacks bytes into bits, MSB-first per byte.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &byte in bytes {
        push_bits(&mut out, byte as u64, 8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_round_trip() {
        for scheme in CodingScheme::ALL {
            assert_eq!(CodingScheme::parse(scheme.name()), Ok(scheme));
        }
        assert!(CodingScheme::parse("turbo").is_err());
    }

    #[test]
    fn bit_packing_round_trips() {
        let bytes = vec![0x00, 0xff, 0xa5, 0x3c];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
        let mut bits = Vec::new();
        push_bits(&mut bits, 0xbeef, 16);
        assert_eq!(read_bits(&bits, 16), 0xbeef);
    }

    #[test]
    fn identity_codec_is_transparent() {
        let codec = IdentityCodec;
        let data = vec![true, false, true, true];
        let coded = codec.encode(&data);
        assert_eq!(coded, data);
        let decoded = codec.decode(&coded);
        assert_eq!(decoded.bits, data);
        assert!(!decoded.failed);
        assert_eq!(decoded.corrected, 0);
    }

    #[test]
    fn block_codec_covers_every_scheme() {
        for scheme in CodingScheme::ALL {
            let codec = block_codec(scheme);
            let granule = codec.data_granule();
            assert!(granule >= 1);
            let data: Vec<bool> = (0..granule * 4).map(|i| i % 3 == 0).collect();
            let coded = codec.encode(&data);
            assert_eq!(coded.len(), codec.encoded_len(data.len()));
            assert_eq!(codec.data_len(coded.len()), Some(data.len()));
            let decoded = codec.decode(&coded);
            assert_eq!(decoded.bits, data, "{} clean round trip", codec.name());
            assert!(!decoded.failed);
        }
    }
}

//! CRC-16-checked link-layer frames and payload segmentation.
//!
//! On-air layout (before the inner FEC): an 8-bit sequence number, an 8-bit
//! valid-data-bit count, a fixed-width data field, and a CRC-16 over all of
//! the preceding bits. The data field width is pinned by the scenario's
//! `payload_bits` (the on-air bits per device per round) through the
//! selected codec's rate, so every round carries exactly one frame per
//! device and the whole geometry is validated once, up front, with a clear
//! error instead of silent truncation downstream.

use crate::crc::{crc16, CRC_BITS};
use crate::{block_codec, push_bits, read_bits, Codec, CodingScheme};

/// Width of the frame sequence-number field.
pub const SEQ_BITS: usize = 8;

/// Width of the valid-data-bit-count field.
pub const LEN_BITS: usize = 8;

/// Header + CRC overhead carried by every frame.
pub const FRAME_OVERHEAD_BITS: usize = SEQ_BITS + LEN_BITS + CRC_BITS;

/// Smallest useful data field.
pub const MIN_DATA_BITS: usize = 8;

/// Largest data field the 8-bit length header can describe.
pub const MAX_DATA_BITS: usize = (1 << LEN_BITS) - 1;

/// The outcome of decoding one on-air frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameOutcome {
    /// True when the inner decode succeeded and the CRC-16 verified; only
    /// then are `seq` and `data` trustworthy.
    pub crc_ok: bool,
    /// Parsed sequence number (best-effort when `crc_ok` is false).
    pub seq: u8,
    /// The valid data bits (length-header-trimmed; best-effort junk when
    /// `crc_ok` is false).
    pub data: Vec<bool>,
    /// Channel errors the inner codec corrected (codec-specific unit).
    pub corrected: usize,
}

impl FrameOutcome {
    fn invalid() -> Self {
        FrameOutcome {
            crc_ok: false,
            seq: 0,
            data: Vec::new(),
            corrected: 0,
        }
    }
}

/// Per-scheme frame geometry + the inner codec: encodes/decodes exactly one
/// frame per `payload_bits`-bit on-air block.
pub struct FrameCodec {
    scheme: CodingScheme,
    codec: Box<dyn Codec>,
    payload_bits: usize,
    data_bits: usize,
}

impl std::fmt::Debug for FrameCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCodec")
            .field("scheme", &self.scheme)
            .field("payload_bits", &self.payload_bits)
            .field("data_bits", &self.data_bits)
            .finish()
    }
}

/// What `payload_bits` must look like for a scheme, for error messages and
/// for pickers that need a valid operating point.
fn geometry_help(scheme: CodingScheme) -> &'static str {
    match scheme {
        CodingScheme::None => "no framing (any payload_bits)",
        CodingScheme::Hamming => {
            "a multiple of 7 whose decoded 4/7 rate leaves 8..=255 data bits \
             after the 32-bit header/CRC (70..=497)"
        }
        CodingScheme::Rs => {
            "a multiple of 8 spanning 13..=43 bytes: 2-byte header + data + \
             2-byte CRC + 8 Reed-Solomon parity bytes (104..=344)"
        }
        CodingScheme::Conv => {
            "an even count whose rate-1/2 decode (minus 6 tail bits) leaves \
             8..=255 data bits after the 32-bit header/CRC (92..=586)"
        }
        CodingScheme::Fountain => {
            "at least the 32-bit header/CRC plus 8..=255 data bits (40..=287)"
        }
    }
}

/// The smallest valid `payload_bits` for each framed scheme (handy default
/// for harnesses that pick a geometry automatically).
pub fn min_payload_bits(scheme: CodingScheme) -> usize {
    match scheme {
        CodingScheme::None => 1,
        CodingScheme::Hamming => 70,
        CodingScheme::Rs => 104,
        CodingScheme::Conv => 92,
        CodingScheme::Fountain => FRAME_OVERHEAD_BITS + MIN_DATA_BITS,
    }
}

impl FrameCodec {
    /// Validates the scheme × `payload_bits` geometry and builds the codec.
    ///
    /// `payload_bits` is the on-air bit budget per device per round; the
    /// frame (header + data + CRC, then the inner FEC) must fill it exactly.
    pub fn new(scheme: CodingScheme, payload_bits: usize) -> Result<FrameCodec, String> {
        if scheme == CodingScheme::None {
            return Err("coding 'none' carries raw bits, not frames".into());
        }
        let codec = block_codec(scheme);
        let framed_bits = codec.data_len(payload_bits).ok_or_else(|| {
            format!(
                "coding '{}' cannot fill {payload_bits} on-air bits: payload_bits must be {}",
                scheme.name(),
                geometry_help(scheme)
            )
        })?;
        let data_bits = framed_bits.saturating_sub(FRAME_OVERHEAD_BITS);
        if !(MIN_DATA_BITS..=MAX_DATA_BITS).contains(&data_bits) {
            return Err(format!(
                "coding '{}' at {payload_bits} on-air bits leaves {data_bits} data bits per \
                 frame (need {MIN_DATA_BITS}..={MAX_DATA_BITS}): payload_bits must be {}",
                scheme.name(),
                geometry_help(scheme)
            ));
        }
        Ok(FrameCodec {
            scheme,
            codec,
            payload_bits,
            data_bits,
        })
    }

    /// The scheme this codec frames for.
    pub fn scheme(&self) -> CodingScheme {
        self.scheme
    }

    /// On-air bits per frame (= the scenario's `payload_bits`).
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Application data bits carried per frame.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Code rate actually achieved: data bits out of on-air bits.
    pub fn rate(&self) -> f64 {
        self.data_bits as f64 / self.payload_bits as f64
    }

    /// Encodes one frame. `data` must be at most [`FrameCodec::data_bits`]
    /// long; shorter payloads are zero-padded and the length header records
    /// the valid count.
    pub fn encode_frame(&self, seq: u8, data: &[bool]) -> Vec<bool> {
        assert!(
            data.len() <= self.data_bits,
            "frame data {} exceeds the {}-bit field",
            data.len(),
            self.data_bits
        );
        let mut framed = Vec::with_capacity(self.data_bits + FRAME_OVERHEAD_BITS);
        push_bits(&mut framed, seq as u64, SEQ_BITS);
        push_bits(&mut framed, data.len() as u64, LEN_BITS);
        framed.extend_from_slice(data);
        framed.extend(std::iter::repeat(false).take(self.data_bits - data.len()));
        let crc = crc16(&framed);
        push_bits(&mut framed, crc as u64, CRC_BITS);
        let coded = self.codec.encode(&framed);
        debug_assert_eq!(coded.len(), self.payload_bits);
        coded
    }

    /// Decodes one on-air frame of exactly [`FrameCodec::payload_bits`]
    /// bits (anything else is an immediate CRC failure).
    pub fn decode_frame(&self, raw: &[bool]) -> FrameOutcome {
        if raw.len() != self.payload_bits {
            return FrameOutcome::invalid();
        }
        let decoded = self.codec.decode(raw);
        let framed = &decoded.bits;
        if framed.len() != self.data_bits + FRAME_OVERHEAD_BITS {
            return FrameOutcome::invalid();
        }
        let seq = read_bits(framed, SEQ_BITS) as u8;
        let len = read_bits(&framed[SEQ_BITS..], LEN_BITS) as usize;
        let body = self.data_bits + SEQ_BITS + LEN_BITS;
        let crc = read_bits(&framed[body..], CRC_BITS) as u16;
        let crc_ok = !decoded.failed && len <= self.data_bits && crc16(&framed[..body]) == crc;
        let data = framed[SEQ_BITS + LEN_BITS..body][..len.min(self.data_bits)].to_vec();
        FrameOutcome {
            crc_ok,
            seq,
            data,
            corrected: decoded.corrected,
        }
    }
}

/// What [`FrameAssembler::reassemble`] recovered from a run of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reassembly {
    /// Concatenated data bits of the CRC-clean frames, in input order.
    pub bits: Vec<bool>,
    /// Frames that decoded with a verified CRC.
    pub frames_ok: usize,
    /// Frames lost to CRC failure (their data is absent from `bits`).
    pub frames_failed: usize,
}

/// Segments an application payload into frames and reassembles decoded
/// frames back into the payload with per-frame pass/fail accounting.
pub struct FrameAssembler {
    codec: FrameCodec,
}

impl FrameAssembler {
    /// Wraps a validated [`FrameCodec`].
    pub fn new(codec: FrameCodec) -> FrameAssembler {
        FrameAssembler { codec }
    }

    /// The frame geometry in use.
    pub fn codec(&self) -> &FrameCodec {
        &self.codec
    }

    /// Frames needed for a `payload_len`-bit payload.
    pub fn frames_for(&self, payload_len: usize) -> usize {
        payload_len.div_ceil(self.codec.data_bits()).max(1)
    }

    /// Splits `payload` into consecutively numbered on-air frames (sequence
    /// numbers wrap at 256). The final frame's length header records the
    /// ragged tail, so any payload length — any slicing offset — survives
    /// the round trip exactly.
    pub fn segment(&self, payload: &[bool], first_seq: u8) -> Vec<Vec<bool>> {
        let d = self.codec.data_bits();
        let mut frames = Vec::with_capacity(self.frames_for(payload.len()));
        if payload.is_empty() {
            return vec![self.codec.encode_frame(first_seq, &[])];
        }
        for (i, chunk) in payload.chunks(d).enumerate() {
            frames.push(
                self.codec
                    .encode_frame(first_seq.wrapping_add(i as u8), chunk),
            );
        }
        frames
    }

    /// Concatenates the data of CRC-clean frames (in input order) and
    /// counts per-frame pass/fail.
    pub fn reassemble(&self, frames: &[FrameOutcome]) -> Reassembly {
        let mut out = Reassembly {
            bits: Vec::new(),
            frames_ok: 0,
            frames_failed: 0,
        };
        for frame in frames {
            if frame.crc_ok {
                out.frames_ok += 1;
                out.bits.extend_from_slice(&frame.data);
            } else {
                out.frames_failed += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Valid payload_bits examples per framed scheme.
    pub(crate) fn valid_payload_bits(scheme: CodingScheme) -> usize {
        match scheme {
            CodingScheme::None => 40,
            CodingScheme::Hamming => 84,  // 48 framed bits, d = 16
            CodingScheme::Rs => 112,      // 14 bytes, d = 16
            CodingScheme::Conv => 108,    // 48 framed bits, d = 16
            CodingScheme::Fountain => 48, // identity, d = 16
        }
    }

    #[test]
    fn geometry_validation_accepts_and_rejects() {
        for scheme in [
            CodingScheme::Hamming,
            CodingScheme::Rs,
            CodingScheme::Conv,
            CodingScheme::Fountain,
        ] {
            let ok = FrameCodec::new(scheme, valid_payload_bits(scheme));
            assert!(ok.is_ok(), "{scheme:?}");
            assert_eq!(ok.unwrap().data_bits(), 16);
            let min = FrameCodec::new(scheme, min_payload_bits(scheme));
            assert!(min.is_ok(), "{scheme:?} at its documented minimum");
            // The default scenario's 40 raw bits fit no FEC geometry.
            if scheme != CodingScheme::Fountain {
                let err = FrameCodec::new(scheme, 40).unwrap_err();
                assert!(err.contains("payload_bits"), "{err}");
            }
        }
        assert!(FrameCodec::new(CodingScheme::None, 40).is_err());
        // 41 is not a multiple of anything useful for Hamming.
        assert!(FrameCodec::new(CodingScheme::Hamming, 41).is_err());
        // Too small: geometry divides but leaves < 8 data bits.
        assert!(FrameCodec::new(CodingScheme::Hamming, 63).is_err());
    }

    #[test]
    fn frames_round_trip_per_scheme() {
        for scheme in [
            CodingScheme::Hamming,
            CodingScheme::Rs,
            CodingScheme::Conv,
            CodingScheme::Fountain,
        ] {
            let codec = FrameCodec::new(scheme, valid_payload_bits(scheme)).unwrap();
            let data: Vec<bool> = (0..12).map(|i| i % 3 != 1).collect();
            let raw = codec.encode_frame(77, &data);
            assert_eq!(raw.len(), codec.payload_bits());
            let out = codec.decode_frame(&raw);
            assert!(out.crc_ok, "{scheme:?}");
            assert_eq!(out.seq, 77);
            assert_eq!(out.data, data);
        }
    }

    #[test]
    fn corrupted_frames_fail_crc_not_silently() {
        let codec = FrameCodec::new(CodingScheme::Fountain, 48).unwrap();
        let data: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let mut raw = codec.encode_frame(3, &data);
        raw[20] = !raw[20];
        let out = codec.decode_frame(&raw);
        assert!(!out.crc_ok, "uncoded flip must fail the CRC");
        // Wrong length is an immediate failure.
        assert!(!codec.decode_frame(&raw[..47]).crc_ok);
    }

    #[test]
    fn assembler_round_trips_ragged_payloads() {
        let codec = FrameCodec::new(CodingScheme::Conv, 108).unwrap();
        let assembler = FrameAssembler::new(codec);
        for len in [0usize, 1, 15, 16, 17, 100, 333] {
            let payload: Vec<bool> = (0..len).map(|i| (i * 7) % 5 < 2).collect();
            let frames = assembler.segment(&payload, 9);
            let outcomes: Vec<FrameOutcome> = frames
                .iter()
                .map(|f| assembler.codec().decode_frame(f))
                .collect();
            let back = assembler.reassemble(&outcomes);
            assert_eq!(back.bits, payload, "len {len}");
            assert_eq!(back.frames_ok, frames.len());
            assert_eq!(back.frames_failed, 0);
        }
    }

    #[test]
    fn assembler_counts_lost_frames() {
        let codec = FrameCodec::new(CodingScheme::Fountain, 48).unwrap();
        let assembler = FrameAssembler::new(codec);
        let payload: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let mut frames = assembler.segment(&payload, 0);
        frames[1][5] = !frames[1][5];
        let outcomes: Vec<FrameOutcome> = frames
            .iter()
            .map(|f| assembler.codec().decode_frame(f))
            .collect();
        let back = assembler.reassemble(&outcomes);
        assert_eq!(back.frames_ok, 3);
        assert_eq!(back.frames_failed, 1);
        assert_eq!(back.bits.len(), 48);
    }
}

//! Hamming(7,4): the lightest FEC in the stack, rate 4/7.
//!
//! Each 4-bit data granule becomes a 7-bit codeword that corrects any single
//! bit error. Two errors in one codeword miscorrect (Hamming distance 3), so
//! the codec never reports failure itself — the frame layer's CRC-16 is the
//! backstop, exactly as on a real tag where the Hamming decode is a handful
//! of XOR gates.

use crate::{Codec, Decoded};

/// Hamming(7,4) block codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct HammingCodec;

/// Encodes one data nibble `[d1, d2, d3, d4]` into a 7-bit codeword with
/// parity bits at positions 1, 2, 4 (1-indexed).
fn encode_nibble(d: [bool; 4]) -> [bool; 7] {
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p4 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p4, d[1], d[2], d[3]]
}

/// Decodes one 7-bit codeword; returns the data nibble and whether a bit was
/// corrected.
fn decode_word(c: &[bool]) -> ([bool; 4], bool) {
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s4 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = s1 as usize + 2 * s2 as usize + 4 * s4 as usize;
    let mut w = [c[0], c[1], c[2], c[3], c[4], c[5], c[6]];
    let corrected = syndrome != 0;
    if corrected {
        w[syndrome - 1] = !w[syndrome - 1];
    }
    ([w[2], w[4], w[5], w[6]], corrected)
}

impl Codec for HammingCodec {
    fn name(&self) -> &'static str {
        "hamming"
    }

    fn data_granule(&self) -> usize {
        4
    }

    fn encoded_len(&self, data_bits: usize) -> usize {
        assert_eq!(data_bits % 4, 0, "hamming data must be nibble-aligned");
        data_bits / 4 * 7
    }

    fn data_len(&self, coded_bits: usize) -> Option<usize> {
        (coded_bits % 7 == 0).then_some(coded_bits / 7 * 4)
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        assert_eq!(data.len() % 4, 0, "hamming data must be nibble-aligned");
        let mut out = Vec::with_capacity(data.len() / 4 * 7);
        for chunk in data.chunks(4) {
            out.extend_from_slice(&encode_nibble([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        out
    }

    fn decode(&self, coded: &[bool]) -> Decoded {
        if coded.len() % 7 != 0 {
            return Decoded {
                bits: Vec::new(),
                corrected: 0,
                failed: true,
            };
        }
        let mut bits = Vec::with_capacity(coded.len() / 7 * 4);
        let mut corrected = 0;
        for word in coded.chunks(7) {
            let (nibble, fixed) = decode_word(word);
            bits.extend_from_slice(&nibble);
            corrected += fixed as usize;
        }
        Decoded {
            bits,
            corrected,
            failed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_round_trip_all_nibbles() {
        let codec = HammingCodec;
        for value in 0u8..16 {
            let data: Vec<bool> = (0..4).rev().map(|i| (value >> i) & 1 == 1).collect();
            let decoded = codec.decode(&codec.encode(&data));
            assert_eq!(decoded.bits, data, "nibble {value}");
            assert_eq!(decoded.corrected, 0);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let codec = HammingCodec;
        let data = vec![true, false, true, true, false, true, false, false];
        let coded = codec.encode(&data);
        for i in 0..coded.len() {
            let mut noisy = coded.clone();
            noisy[i] = !noisy[i];
            let decoded = codec.decode(&noisy);
            assert_eq!(decoded.bits, data, "error at bit {i} not corrected");
            assert_eq!(decoded.corrected, 1);
            assert!(!decoded.failed);
        }
    }

    #[test]
    fn rejects_ragged_lengths() {
        assert!(HammingCodec.decode(&[true; 6]).failed);
        assert_eq!(HammingCodec.data_len(13), None);
        assert_eq!(HammingCodec.data_len(14), Some(8));
    }
}

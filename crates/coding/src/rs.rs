//! Shortened Reed-Solomon over GF(2^8) with 8 parity bytes (t = 4).
//!
//! Systematic encoding (message bytes followed by parity), Berlekamp-Massey
//! error-locator synthesis, brute-force Chien search, and error magnitudes
//! recovered by solving the syndrome system directly (a ≤ 4×4 Gaussian
//! elimination over GF(256) — simpler than Forney at this parity size, and
//! the decoder re-verifies every syndrome after correction so a
//! beyond-capability pattern that slips past Berlekamp-Massey is still
//! flagged rather than silently miscorrected).
//!
//! Shortening is implicit: any message length 1..=247 bytes is treated as
//! the tail of the full RS(255, 247) codeword with zero-padded (absent)
//! leading symbols.

use crate::gf256::Gf256;
use crate::{bits_to_bytes, bytes_to_bits, Codec, Decoded};

/// Parity bytes appended to every codeword (2t; corrects t = 4 byte errors).
pub const RS_PARITY_BYTES: usize = 8;

/// Longest codeword (message + parity) the field supports.
pub const RS_MAX_CODEWORD_BYTES: usize = 255;

/// Byte-oriented shortened Reed-Solomon encoder/decoder.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    /// Generator polynomial prod_{i=0}^{2t-1} (x - alpha^i), highest-degree
    /// coefficient first.
    gen: Vec<u8>,
}

impl Default for ReedSolomon {
    fn default() -> Self {
        Self::new()
    }
}

impl ReedSolomon {
    /// Builds the encoder/decoder for [`RS_PARITY_BYTES`] parity bytes.
    pub fn new() -> Self {
        let gf = Gf256::new();
        let mut gen = vec![1u8];
        for i in 0..RS_PARITY_BYTES as i64 {
            gen = gf.poly_mul(&gen, &[1, gf.pow(i)]);
        }
        ReedSolomon { gf, gen }
    }

    /// Encodes `msg` (1..=247 bytes), returning message + parity.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        assert!(
            !msg.is_empty() && msg.len() + RS_PARITY_BYTES <= RS_MAX_CODEWORD_BYTES,
            "RS message must be 1..=247 bytes, got {}",
            msg.len()
        );
        // Polynomial long division of msg(x) * x^2t by gen(x); the
        // remainder is the parity.
        let mut work = msg.to_vec();
        work.extend(std::iter::repeat(0u8).take(RS_PARITY_BYTES));
        for i in 0..msg.len() {
            let coef = work[i];
            if coef != 0 {
                for (j, &g) in self.gen.iter().enumerate().skip(1) {
                    work[i + j] ^= self.gf.mul(g, coef);
                }
            }
        }
        let mut out = msg.to_vec();
        out.extend_from_slice(&work[msg.len()..]);
        out
    }

    /// Syndromes S_i = r(alpha^i) for i in 0..2t (all zero ⇔ valid codeword).
    fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        (0..RS_PARITY_BYTES as i64)
            .map(|i| self.gf.poly_eval(codeword, self.gf.pow(i)))
            .collect()
    }

    /// Berlekamp-Massey: the error-locator polynomial (highest-degree
    /// first), or `None` when the syndromes need more than t errors.
    fn error_locator(&self, synd: &[u8]) -> Option<Vec<u8>> {
        let mut err_loc = vec![1u8];
        let mut old_loc = vec![1u8];
        for i in 0..synd.len() {
            old_loc.push(0);
            let mut delta = synd[i];
            for j in 1..err_loc.len() {
                delta ^= self.gf.mul(err_loc[err_loc.len() - 1 - j], synd[i - j]);
            }
            if delta != 0 {
                if old_loc.len() > err_loc.len() {
                    let new_loc = self.gf.poly_scale(&old_loc, delta);
                    old_loc = self.gf.poly_scale(&err_loc, self.gf.inv(delta));
                    err_loc = new_loc;
                }
                let scaled = self.gf.poly_scale(&old_loc, delta);
                err_loc = self.gf.poly_add(&err_loc, &scaled);
            }
        }
        while err_loc.len() > 1 && err_loc[0] == 0 {
            err_loc.remove(0);
        }
        let errs = err_loc.len() - 1;
        (errs * 2 <= synd.len()).then_some(err_loc)
    }

    /// Chien search: byte positions (0 = first byte) whose locator roots the
    /// polynomial contains. `None` unless the root count matches the
    /// locator degree exactly.
    fn error_positions(&self, err_loc: &[u8], n: usize) -> Option<Vec<usize>> {
        let errs = err_loc.len() - 1;
        // Berlekamp-Massey yields sigma with roots at X^-1; the reversed
        // polynomial has roots at X = alpha^(degree weight), which maps
        // straight to byte positions.
        let reversed: Vec<u8> = err_loc.iter().rev().copied().collect();
        let mut pos = Vec::with_capacity(errs);
        for i in 0..n as i64 {
            if self.gf.poly_eval(&reversed, self.gf.pow(i)) == 0 {
                pos.push(n - 1 - i as usize);
            }
        }
        (pos.len() == errs).then_some(pos)
    }

    /// Solves for the error magnitudes at `positions` from the first
    /// `positions.len()` syndromes (Vandermonde system, Gaussian
    /// elimination over GF(256)).
    fn error_magnitudes(&self, synd: &[u8], positions: &[usize], n: usize) -> Option<Vec<u8>> {
        let k = positions.len();
        // A[i][j] = X_j^i with X_j = alpha^(degree weight of position j);
        // augmented with S_i.
        let mut a: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                let mut row: Vec<u8> = positions
                    .iter()
                    .map(|&p| self.gf.pow((n - 1 - p) as i64 * i as i64))
                    .collect();
                row.push(synd[i]);
                row
            })
            .collect();
        for col in 0..k {
            let pivot = (col..k).find(|&r| a[r][col] != 0)?;
            a.swap(col, pivot);
            let inv = self.gf.inv(a[col][col]);
            for cell in a[col].iter_mut().skip(col) {
                *cell = self.gf.mul(*cell, inv);
            }
            let pivot_row = a[col].clone();
            for (r, row) in a.iter_mut().enumerate() {
                let factor = row[col];
                if r != col && factor != 0 {
                    for (cell, &p) in row.iter_mut().zip(&pivot_row).skip(col) {
                        *cell ^= self.gf.mul(factor, p);
                    }
                }
            }
        }
        Some((0..k).map(|r| a[r][k]).collect())
    }

    /// Decodes a codeword in place. Returns the number of corrected byte
    /// errors, or `None` when the word is unrecoverable.
    pub fn correct(&self, codeword: &mut [u8]) -> Option<usize> {
        let n = codeword.len();
        if n <= RS_PARITY_BYTES || n > RS_MAX_CODEWORD_BYTES {
            return None;
        }
        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| s == 0) {
            return Some(0);
        }
        let err_loc = self.error_locator(&synd)?;
        let positions = self.error_positions(&err_loc, n)?;
        let magnitudes = self.error_magnitudes(&synd, &positions, n)?;
        for (&p, &m) in positions.iter().zip(&magnitudes) {
            codeword[p] ^= m;
        }
        // Beyond-capability patterns can fool Berlekamp-Massey into a
        // low-degree locator; re-checking every syndrome catches that.
        if self.syndromes(codeword).iter().any(|&s| s != 0) {
            return None;
        }
        Some(positions.len())
    }
}

/// Bit-level [`Codec`] adapter over the byte-oriented [`ReedSolomon`].
#[derive(Debug, Clone)]
pub struct RsCodec {
    rs: ReedSolomon,
}

impl Default for RsCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl RsCodec {
    /// Builds the codec (allocates the GF tables once).
    pub fn new() -> Self {
        RsCodec {
            rs: ReedSolomon::new(),
        }
    }
}

impl Codec for RsCodec {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn data_granule(&self) -> usize {
        8
    }

    fn encoded_len(&self, data_bits: usize) -> usize {
        assert_eq!(data_bits % 8, 0, "RS data must be byte-aligned");
        data_bits + RS_PARITY_BYTES * 8
    }

    fn data_len(&self, coded_bits: usize) -> Option<usize> {
        if coded_bits % 8 != 0 {
            return None;
        }
        let n = coded_bits / 8;
        (n > RS_PARITY_BYTES && n <= RS_MAX_CODEWORD_BYTES).then(|| (n - RS_PARITY_BYTES) * 8)
    }

    fn encode(&self, data: &[bool]) -> Vec<bool> {
        bytes_to_bits(&self.rs.encode(&bits_to_bytes(data)))
    }

    fn decode(&self, coded: &[bool]) -> Decoded {
        let Some(data_bits) = self.data_len(coded.len()) else {
            return Decoded {
                bits: Vec::new(),
                corrected: 0,
                failed: true,
            };
        };
        let mut codeword = bits_to_bytes(coded);
        match self.rs.correct(&mut codeword) {
            Some(corrected) => Decoded {
                bits: bytes_to_bits(&codeword[..data_bits / 8]),
                corrected,
                failed: false,
            },
            // Unrecoverable: hand back the (uncorrected) message bytes so
            // the frame CRC can report on them, but flag the failure.
            None => Decoded {
                bits: bytes_to_bits(&codeword[..data_bits / 8]),
                corrected: 0,
                failed: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_codewords_have_zero_syndromes() {
        let rs = ReedSolomon::new();
        let msg: Vec<u8> = (0u8..32).collect();
        let mut codeword = rs.encode(&msg);
        assert_eq!(rs.correct(&mut codeword), Some(0));
        assert_eq!(&codeword[..32], &msg[..]);
    }

    #[test]
    fn corrects_up_to_four_byte_errors_anywhere() {
        let rs = ReedSolomon::new();
        let mut rng = StdRng::seed_from_u64(11);
        let msg: Vec<u8> = (0..24).map(|_| rng.gen_range(0u8..=255)).collect();
        let clean = rs.encode(&msg);
        for errors in 1..=4usize {
            for _ in 0..200 {
                let mut noisy = clean.clone();
                let mut hit = std::collections::HashSet::new();
                while hit.len() < errors {
                    hit.insert(rng.gen_range(0usize..noisy.len()));
                }
                for &p in &hit {
                    noisy[p] ^= rng.gen_range(1u8..=255);
                }
                let fixed = rs.correct(&mut noisy);
                assert_eq!(fixed, Some(errors), "{errors} errors at {hit:?}");
                assert_eq!(&noisy[..msg.len()], &msg[..]);
            }
        }
    }

    #[test]
    fn five_errors_never_silently_corrupt() {
        let rs = ReedSolomon::new();
        let mut rng = StdRng::seed_from_u64(13);
        let msg: Vec<u8> = (0..24).map(|_| rng.gen_range(0u8..=255)).collect();
        let clean = rs.encode(&msg);
        let mut flagged = 0;
        for _ in 0..300 {
            let mut noisy = clean.clone();
            let mut hit = std::collections::HashSet::new();
            while hit.len() < 5 {
                hit.insert(rng.gen_range(0usize..noisy.len()));
            }
            for &p in &hit {
                noisy[p] ^= rng.gen_range(1u8..=255);
            }
            match rs.correct(&mut noisy) {
                // Whatever the decoder lands on must be a true codeword;
                // miscorrection to a different codeword is possible beyond
                // t but must still decode self-consistently.
                Some(_) => assert!(rs.syndromes(&noisy).iter().all(|&s| s == 0)),
                None => flagged += 1,
            }
        }
        assert!(flagged > 250, "only {flagged}/300 5-error patterns flagged");
    }

    #[test]
    fn shortened_lengths_round_trip() {
        let rs = ReedSolomon::new();
        for len in [1usize, 5, 13, 100, 247] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let mut codeword = rs.encode(&msg);
            codeword[len / 2] ^= 0x5a;
            assert_eq!(rs.correct(&mut codeword), Some(1), "len {len}");
            assert_eq!(&codeword[..len], &msg[..]);
        }
    }

    #[test]
    fn bit_level_codec_round_trips() {
        let codec = RsCodec::new();
        let data: Vec<bool> = (0..13 * 8).map(|i| i % 5 < 2).collect();
        let mut coded = codec.encode(&data);
        assert_eq!(coded.len(), codec.encoded_len(data.len()));
        // Flip a whole byte worth of bits — one symbol error.
        for b in &mut coded[16..24] {
            *b = !*b;
        }
        let decoded = codec.decode(&coded);
        assert_eq!(decoded.bits, data);
        assert_eq!(decoded.corrected, 1);
        assert!(!decoded.failed);
    }
}

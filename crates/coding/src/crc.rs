//! CRC-16/CCITT-FALSE over bit slices.
//!
//! Frames are bit streams that need not be byte-aligned (Hamming frames
//! carry 4-bit granules, convolutional frames arbitrary even lengths), so
//! the CRC runs bit-serially over the exact header + data bits.

/// CRC-16 polynomial x^16 + x^12 + x^5 + 1.
pub const CRC16_POLY: u16 = 0x1021;

/// CRC-16/CCITT-FALSE initial register value.
pub const CRC16_INIT: u16 = 0xFFFF;

/// Width of the CRC field appended to every frame.
pub const CRC_BITS: usize = 16;

/// Computes the CRC-16/CCITT-FALSE of a bit stream (bit-serial, MSB-first).
pub fn crc16(bits: &[bool]) -> u16 {
    let mut crc = CRC16_INIT;
    for &bit in bits {
        let feedback = ((crc >> 15) & 1 == 1) ^ bit;
        crc <<= 1;
        if feedback {
            crc ^= CRC16_POLY;
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes_to_bits;

    #[test]
    fn matches_the_ccitt_false_check_value() {
        // The standard check: CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        let bits = bytes_to_bits(b"123456789");
        assert_eq!(crc16(&bits), 0x29B1);
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let bits = bytes_to_bits(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
        let clean = crc16(&bits);
        for i in 0..bits.len() {
            let mut corrupt = bits.clone();
            corrupt[i] = !corrupt[i];
            assert_ne!(crc16(&corrupt), clean, "flip at bit {i} undetected");
        }
    }

    #[test]
    fn empty_stream_is_the_init_value() {
        assert_eq!(crc16(&[]), CRC16_INIT);
    }
}

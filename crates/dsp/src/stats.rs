//! Small statistics toolbox used by the experiment drivers.
//!
//! Most of the paper's figures are CDFs (Fig. 4, Fig. 9, Fig. 14, Fig. 15(a))
//! or error rates over repeated trials (Fig. 12, Fig. 17–19). This module
//! provides the empirical-distribution and summary-statistics helpers those
//! drivers share, so each experiment binary stays focused on the experiment
//! itself.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance. Returns 0.0 for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Minimum of a slice (0.0 for empty input).
pub fn min(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// Maximum of a slice (0.0 for empty input).
pub fn max(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// An empirical cumulative distribution function built from samples.
///
/// # Examples
///
/// ```
/// use netscatter_dsp::stats::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.probability_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples (NaNs are removed).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn probability_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Complementary CDF, P(X > x) — the 1−CDF axis used by Fig. 14(b) and
    /// Fig. 15(a).
    pub fn probability_above(&self, x: f64) -> f64 {
        1.0 - self.probability_at_or_below(x)
    }

    /// The q-quantile (q in \[0, 1\]) using the nearest-rank method.
    /// Returns 0.0 for an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Evaluates the CDF on a regular grid of `points` values spanning the
    /// sample range, returning `(x, P(X ≤ x))` pairs — convenient for
    /// printing figure series.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let x = lo + span * i as f64 / (points.saturating_sub(1).max(1)) as f64;
                (x, self.probability_at_or_below(x))
            })
            .collect()
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// A running-average accumulator with count, used for streaming Monte-Carlo
/// statistics without storing every sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample (Welford's algorithm).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Current population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Current standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_of_known_set() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_element_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[5.0, -2.0]), -2.0);
        assert_eq!(max(&[5.0, -2.0]), 5.0);
    }

    #[test]
    fn cdf_probabilities_and_quantiles() {
        let cdf = EmpiricalCdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.probability_at_or_below(0.5), 0.0);
        assert_eq!(cdf.probability_at_or_below(1.0), 0.25);
        assert_eq!(cdf.probability_at_or_below(2.5), 0.5);
        assert_eq!(cdf.probability_at_or_below(10.0), 1.0);
        assert_eq!(cdf.probability_above(2.5), 0.5);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.median(), 2.0);
    }

    #[test]
    fn cdf_removes_nans_and_handles_empty() {
        let cdf = EmpiricalCdf::from_samples(vec![f64::NAN, 1.0, f64::NAN]);
        assert_eq!(cdf.len(), 1);
        let empty = EmpiricalCdf::from_samples(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.probability_at_or_below(1.0), 0.0);
        assert_eq!(empty.quantile(0.7), 0.0);
        assert!(empty.curve(10).is_empty());
    }

    #[test]
    fn cdf_curve_is_monotonic() {
        let cdf = EmpiricalCdf::from_samples((0..100).map(|i| (i as f64).sin()).collect());
        let curve = cdf.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_match_batch_stats() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        assert_eq!(rs.count(), 1000);
        assert!((rs.mean() - mean(&data)).abs() < 1e-9);
        assert!((rs.variance() - variance(&data)).abs() < 1e-9);
        assert!((rs.std_dev() - std_dev(&data)).abs() < 1e-9);
    }

    #[test]
    fn running_stats_empty_defaults() {
        let rs = RunningStats::new();
        assert_eq!(rs.count(), 0);
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
    }
}

//! Overlap-save FFT cross-correlation against finite templates, and the
//! chirp-bank correlation used by the streaming gateway's preamble sync.
//!
//! The NetScatter receiver detects packets by correlating the incoming
//! stream against the known preamble chirps (§3.3.1). Done naively in the
//! time domain that costs `O(n)` multiplies per candidate lag; this module
//! provides the two classic fast evaluations instead:
//!
//! * [`Correlator`] — *overlap-save* frequency-domain correlation of an
//!   arbitrary-length signal against one or more precomputed [`Template`]s.
//!   Each signal segment is transformed **once** (via the pruned
//!   [`Fft::forward_zero_padded_into`] path) and reused across every
//!   template, so correlating against `D` device templates costs one
//!   forward transform plus `D` pointwise-multiply/inverse passes per
//!   segment.
//! * [`ChirpBank`] — correlation of a single symbol against **every**
//!   cyclic-shift chirp template at once. Dechirping a symbol and taking a
//!   critically-sampled FFT yields, in bin `b`, exactly the lag-0
//!   cross-correlation against the shift-`b` chirp template (the correlation
//!   theorem specialized to the chirp alphabet, §3.1/§3.3.1). This is the
//!   fast path for the detector's preamble comb, which needs all assigned
//!   bins of a candidate symbol, not a single template.
//!
//! Both types own their scratch buffers (like `DemodWorkspace` in the phy
//! crate) so the steady-state streaming path performs no heap allocation.

use crate::chirp::{ChirpParams, ChirpSynthesizer};
use crate::complex::Complex64;
use crate::fft::{Fft, FftError};

/// A template prepared for frequency-domain correlation: the conjugated
/// spectrum of the zero-padded taps, bound to the [`Correlator`] FFT size it
/// was built with.
#[derive(Debug, Clone)]
pub struct Template {
    /// Conjugated spectrum `conj(FFT(taps ++ zeros))`, length = FFT size.
    spectrum_conj: Vec<Complex64>,
    /// Number of time-domain taps.
    len: usize,
}

impl Template {
    /// Number of time-domain taps in the template.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the template has no taps (never produced by
    /// [`Correlator::template`], which rejects empty taps).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Overlap-save FFT cross-correlator for templates of a fixed length.
///
/// The correlation computed is the standard "valid"-mode complex
/// cross-correlation
///
/// ```text
/// corr[lag] = Σ_τ signal[lag + τ] · conj(template[τ]),   τ in 0..template_len
/// ```
///
/// evaluated through the correlation theorem: multiply the segment spectrum
/// by the conjugated template spectrum and inverse-transform. With an FFT
/// size `M` and template length `n`, each segment yields `M − n + 1` valid
/// (wrap-free) lags, so long signals are processed in overlapping segments
/// hopped by that amount — the overlap-save method.
///
/// # Examples
///
/// ```
/// use netscatter_dsp::{Complex64, Correlator};
///
/// let mut corr = Correlator::new(4, 16).unwrap();
/// let taps = [Complex64::ONE, Complex64::I, -Complex64::ONE, -Complex64::I];
/// let template = corr.template(&taps).unwrap();
/// // Embed the template at offset 5 of a zero signal: the correlation
/// // peaks at lag 5 with value Σ|taps|² = 4.
/// let mut signal = vec![Complex64::ZERO; 24];
/// signal[5..9].copy_from_slice(&taps);
/// let mut out = Vec::new();
/// corr.correlate_into(&signal, &template, &mut out).unwrap();
/// let peak = (0..out.len())
///     .max_by(|&a, &b| out[a].abs().total_cmp(&out[b].abs()))
///     .unwrap();
/// assert_eq!(peak, 5);
/// assert!((out[5] - Complex64::new(4.0, 0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Correlator {
    fft: Fft,
    template_len: usize,
    /// Spectrum of the currently loaded signal segment.
    segment_spec: Vec<Complex64>,
    /// Scratch for the pointwise product / inverse transform.
    product: Vec<Complex64>,
    /// Whether [`Self::load_segment`] has been called since construction.
    loaded: bool,
}

impl Correlator {
    /// Creates a correlator for templates of `template_len` taps using
    /// `fft_size`-point transforms.
    ///
    /// `fft_size` must be a power of two strictly greater than
    /// `template_len` (otherwise a segment would yield no valid lags), and
    /// `template_len` must be non-zero.
    pub fn new(template_len: usize, fft_size: usize) -> Result<Self, FftError> {
        if template_len == 0 {
            return Err(FftError::LengthMismatch {
                expected: 1,
                actual: 0,
            });
        }
        if fft_size <= template_len {
            return Err(FftError::InputLongerThanTransform {
                input: template_len,
                size: fft_size,
            });
        }
        let fft = Fft::new(fft_size)?;
        Ok(Self {
            fft,
            template_len,
            segment_spec: vec![Complex64::ZERO; fft_size],
            product: vec![Complex64::ZERO; fft_size],
            loaded: false,
        })
    }

    /// The template length this correlator was built for.
    #[inline]
    pub fn template_len(&self) -> usize {
        self.template_len
    }

    /// The FFT size used for segment transforms.
    #[inline]
    pub fn fft_size(&self) -> usize {
        self.fft.size()
    }

    /// Number of valid (wrap-free) lags produced per loaded segment:
    /// `fft_size − template_len + 1`. This is also the hop between
    /// consecutive segments in [`Self::correlate_into`].
    #[inline]
    pub fn lags_per_segment(&self) -> usize {
        self.fft.size() - self.template_len + 1
    }

    /// Prepares a template for repeated correlation by precomputing its
    /// conjugated spectrum. `taps.len()` must equal
    /// [`Self::template_len`].
    pub fn template(&self, taps: &[Complex64]) -> Result<Template, FftError> {
        if taps.len() != self.template_len {
            return Err(FftError::LengthMismatch {
                expected: self.template_len,
                actual: taps.len(),
            });
        }
        let mut spectrum_conj = Vec::new();
        self.fft
            .forward_zero_padded_into(taps, &mut spectrum_conj)?;
        for v in spectrum_conj.iter_mut() {
            *v = v.conj();
        }
        Ok(Template {
            spectrum_conj,
            len: taps.len(),
        })
    }

    /// Loads one signal segment (at most [`Self::fft_size`] samples; shorter
    /// segments are treated as zero-extended) and caches its spectrum. The
    /// cached spectrum is shared by every subsequent
    /// [`Self::correlate_loaded_into`] call until the next load — this is
    /// the "one forward transform, many templates" half of the overlap-save
    /// sharing.
    pub fn load_segment(&mut self, segment: &[Complex64]) -> Result<(), FftError> {
        let mut spec = std::mem::take(&mut self.segment_spec);
        let result = self.fft.forward_zero_padded_into(segment, &mut spec);
        self.segment_spec = spec;
        result?;
        self.loaded = true;
        Ok(())
    }

    /// Correlates the currently loaded segment against `template`, writing
    /// the [`Self::lags_per_segment`] valid lags into `out` (cleared and
    /// refilled). Lags past the end of a short-loaded segment are the
    /// correlation against its zero extension.
    ///
    /// Returns [`FftError::LengthMismatch`] if the template was built for a
    /// different correlator geometry or no segment has been loaded.
    pub fn correlate_loaded_into(
        &mut self,
        template: &Template,
        out: &mut Vec<Complex64>,
    ) -> Result<(), FftError> {
        if template.spectrum_conj.len() != self.fft.size() || template.len != self.template_len {
            return Err(FftError::LengthMismatch {
                expected: self.fft.size(),
                actual: template.spectrum_conj.len(),
            });
        }
        if !self.loaded {
            return Err(FftError::LengthMismatch {
                expected: self.fft.size(),
                actual: 0,
            });
        }
        self.product.clear();
        self.product.extend(
            self.segment_spec
                .iter()
                .zip(template.spectrum_conj.iter())
                .map(|(x, t)| *x * *t),
        );
        self.fft.inverse_in_place(&mut self.product)?;
        let valid = self.lags_per_segment();
        out.clear();
        out.extend_from_slice(&self.product[..valid]);
        Ok(())
    }

    /// Full overlap-save correlation of `signal` against `template`: `out`
    /// receives `signal.len() − template_len + 1` lags (empty when the
    /// signal is shorter than the template), identical to the time-domain
    /// "valid"-mode correlation.
    ///
    /// The signal is processed in segments of [`Self::fft_size`] samples
    /// hopped by [`Self::lags_per_segment`]; each segment is transformed
    /// once. To correlate the same signal against many templates with
    /// shared forward transforms, drive [`Self::load_segment`] /
    /// [`Self::correlate_loaded_into`] directly instead.
    pub fn correlate_into(
        &mut self,
        signal: &[Complex64],
        template: &Template,
        out: &mut Vec<Complex64>,
    ) -> Result<(), FftError> {
        out.clear();
        if signal.len() < self.template_len {
            return Ok(());
        }
        let total = signal.len() - self.template_len + 1;
        out.reserve(total);
        let hop = self.lags_per_segment();
        let mut produced = 0;
        while produced < total {
            let seg_end = (produced + self.fft.size()).min(signal.len());
            self.load_segment(&signal[produced..seg_end])?;
            if template.spectrum_conj.len() != self.fft.size() || template.len != self.template_len
            {
                return Err(FftError::LengthMismatch {
                    expected: self.fft.size(),
                    actual: template.spectrum_conj.len(),
                });
            }
            self.product.clear();
            self.product.extend(
                self.segment_spec
                    .iter()
                    .zip(template.spectrum_conj.iter())
                    .map(|(x, t)| *x * *t),
            );
            self.fft.inverse_in_place(&mut self.product)?;
            let take = hop.min(total - produced);
            out.extend_from_slice(&self.product[..take]);
            produced += take;
        }
        Ok(())
    }
}

/// Builds the shift-`b` chirp template `ref[t] · e^{+j2πbt/n}` used by the
/// preamble correlators — the tone-offset form whose lag-0 correlation with
/// a received symbol equals bin `b` of the dechirped symbol's FFT (constant
/// phase aside, this is the cyclically shifted chirp of §2.1).
///
/// `down` selects the downchirp reference (used for the downchirp half of
/// the preamble, §3.3.1). `bin` is taken modulo `n`.
pub fn shift_template(synth: &ChirpSynthesizer, bin: usize, down: bool) -> Vec<Complex64> {
    let reference = if down {
        synth.baseline_downchirp()
    } else {
        synth.baseline_upchirp()
    };
    let n = reference.len();
    let bin = (bin % n.max(1)) as f64;
    reference
        .iter()
        .enumerate()
        .map(|(t, r)| *r * Complex64::cis(2.0 * std::f64::consts::PI * bin * t as f64 / n as f64))
        .collect()
}

/// Correlates one symbol against **every** cyclic-shift chirp template at
/// once: dechirp (multiply by the conjugate reference chirp) and take a
/// critically-sampled `n`-point FFT. Output bin `b` is then exactly
///
/// ```text
/// Σ_t symbol[t] · conj(ref[t] · e^{+j2πbt/n})
/// ```
///
/// i.e. the lag-0 cross-correlation against [`shift_template`]`(synth, b)`.
/// Compared to evaluating each template separately this computes all `n`
/// correlations in a single `n·log n` pass, and compared to the receiver's
/// zero-padded demodulation transform it is `pad×` smaller — the detector's
/// preamble comb only reads integer bins, for which the critically-sampled
/// transform is mathematically identical to the padded one.
#[derive(Debug, Clone)]
pub struct ChirpBank {
    synth: ChirpSynthesizer,
    fft: Fft,
}

impl ChirpBank {
    /// Creates a bank for the given chirp parameters (`n = 2^SF` bins).
    pub fn new(params: ChirpParams) -> Result<Self, FftError> {
        let synth = ChirpSynthesizer::new(params);
        let fft = Fft::new(params.num_bins())?;
        Ok(Self { synth, fft })
    }

    /// The chirp parameters the bank was built for.
    #[inline]
    pub fn params(&self) -> &ChirpParams {
        self.synth.params()
    }

    /// Correlates `symbol` against all `n` upchirp shift templates, writing
    /// the complex correlations into `out` (cleared and resized to `n`).
    /// `symbol` must be exactly `n` samples.
    pub fn upchirp_bank_into(
        &self,
        symbol: &[Complex64],
        out: &mut Vec<Complex64>,
    ) -> Result<(), FftError> {
        let n = self.fft.size();
        if symbol.len() != n {
            return Err(FftError::LengthMismatch {
                expected: n,
                actual: symbol.len(),
            });
        }
        self.synth.dechirp_into(symbol, out);
        self.fft.forward_in_place(out)
    }

    /// As [`Self::upchirp_bank_into`] but against the downchirp shift
    /// templates (dechirp with the baseline upchirp).
    pub fn downchirp_bank_into(
        &self,
        symbol: &[Complex64],
        out: &mut Vec<Complex64>,
    ) -> Result<(), FftError> {
        let n = self.fft.size();
        if symbol.len() != n {
            return Err(FftError::LengthMismatch {
                expected: n,
                actual: symbol.len(),
            });
        }
        self.synth.dechirp_down_into(symbol, out);
        self.fft.forward_in_place(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Direct `O(n·lags)` time-domain valid-mode correlation.
    fn direct_correlation(signal: &[Complex64], taps: &[Complex64]) -> Vec<Complex64> {
        if signal.len() < taps.len() {
            return Vec::new();
        }
        (0..=signal.len() - taps.len())
            .map(|lag| {
                taps.iter()
                    .enumerate()
                    .map(|(t, tap)| signal[lag + t] * tap.conj())
                    .sum()
            })
            .collect()
    }

    fn random_signal(rng: &mut StdRng, len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert!(Correlator::new(0, 16).is_err());
        assert!(Correlator::new(16, 16).is_err());
        assert!(Correlator::new(17, 16).is_err());
        assert!(Correlator::new(5, 24).is_err()); // not a power of two
        assert!(Correlator::new(5, 32).is_ok());
    }

    #[test]
    fn template_rejects_wrong_length() {
        let corr = Correlator::new(8, 32).unwrap();
        assert!(corr.template(&[Complex64::ONE; 7]).is_err());
        assert!(corr.template(&[Complex64::ONE; 9]).is_err());
        assert!(corr.template(&[Complex64::ONE; 8]).is_ok());
    }

    #[test]
    fn correlate_before_load_is_an_error() {
        let mut corr = Correlator::new(8, 32).unwrap();
        let template = corr.template(&[Complex64::ONE; 8]).unwrap();
        let mut out = Vec::new();
        assert!(corr.correlate_loaded_into(&template, &mut out).is_err());
    }

    #[test]
    fn template_from_other_geometry_is_rejected() {
        let small = Correlator::new(8, 32).unwrap();
        let template = small.template(&[Complex64::ONE; 8]).unwrap();
        let mut big = Correlator::new(8, 64).unwrap();
        let mut out = Vec::new();
        big.load_segment(&vec![Complex64::ONE; 64]).unwrap();
        assert!(big.correlate_loaded_into(&template, &mut out).is_err());
        assert!(big
            .correlate_into(&vec![Complex64::ONE; 64], &template, &mut out)
            .is_err());
    }

    #[test]
    fn fft_correlation_matches_time_domain_within_1e9() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for (taps_len, fft_size, signal_len) in [
            (4usize, 16usize, 4usize), // single segment, exact fit
            (4, 16, 40),               // several segments
            (7, 32, 100),              // non-power-of-two template
            (16, 64, 16),              // single-lag output
            (12, 32, 1000),            // many segments, hop 21
            (512, 4096, 9000),         // symbol-sized template (SF9 geometry)
        ] {
            let mut corr = Correlator::new(taps_len, fft_size).unwrap();
            let taps = random_signal(&mut rng, taps_len);
            let template = corr.template(&taps).unwrap();
            let signal = random_signal(&mut rng, signal_len);
            let mut out = Vec::new();
            corr.correlate_into(&signal, &template, &mut out).unwrap();
            let reference = direct_correlation(&signal, &taps);
            assert_eq!(out.len(), reference.len());
            let scale = taps_len as f64;
            for (lag, (got, want)) in out.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (*got - *want).abs() < 1e-9 * scale,
                    "taps {taps_len} fft {fft_size} signal {signal_len} lag {lag}: \
                     {got:?} != {want:?}"
                );
            }
        }
    }

    #[test]
    fn signal_shorter_than_template_yields_no_lags() {
        let mut corr = Correlator::new(8, 32).unwrap();
        let template = corr.template(&[Complex64::ONE; 8]).unwrap();
        let mut out = vec![Complex64::ONE; 3];
        corr.correlate_into(&[Complex64::ONE; 7], &template, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn loaded_segment_lags_match_zero_extension() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut corr = Correlator::new(6, 32).unwrap();
        let taps = random_signal(&mut rng, 6);
        let template = corr.template(&taps).unwrap();
        // Load a 20-sample segment: lags beyond 20-6 correlate against the
        // zero extension, exactly as if the signal were padded with zeros.
        let segment = random_signal(&mut rng, 20);
        corr.load_segment(&segment).unwrap();
        let mut out = Vec::new();
        corr.correlate_loaded_into(&template, &mut out).unwrap();
        assert_eq!(out.len(), corr.lags_per_segment());
        let mut extended = segment.clone();
        extended.resize(32 + 6, Complex64::ZERO);
        let reference = direct_correlation(&extended, &taps);
        for (lag, got) in out.iter().enumerate() {
            assert!(
                (*got - reference[lag]).abs() < 1e-9,
                "lag {lag}: {got:?} != {:?}",
                reference[lag]
            );
        }
    }

    #[test]
    fn repeated_loads_reuse_buffers_without_stale_state() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut corr = Correlator::new(5, 16).unwrap();
        let taps = random_signal(&mut rng, 5);
        let template = corr.template(&taps).unwrap();
        let mut out = Vec::new();
        for _ in 0..4 {
            let segment = random_signal(&mut rng, 16);
            corr.load_segment(&segment).unwrap();
            corr.correlate_loaded_into(&template, &mut out).unwrap();
            let reference = direct_correlation(&segment, &taps);
            for (lag, want) in reference.iter().enumerate() {
                assert!((out[lag] - *want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shift_template_correlation_equals_chirp_bank_bin() {
        // The bank output at bin b must equal the lag-0 correlation against
        // shift_template(b) — the identity the detector's comb relies on.
        let params = ChirpParams::new(500e3, 5).unwrap();
        let bank = ChirpBank::new(params).unwrap();
        let n = params.num_bins();
        let mut rng = StdRng::seed_from_u64(99);
        let symbol = random_signal(&mut rng, n);
        for down in [false, true] {
            let mut bins = Vec::new();
            if down {
                bank.downchirp_bank_into(&symbol, &mut bins).unwrap();
            } else {
                bank.upchirp_bank_into(&symbol, &mut bins).unwrap();
            }
            let synth = ChirpSynthesizer::new(params);
            for b in [0usize, 1, 5, n - 1] {
                let template = shift_template(&synth, b, down);
                let direct: Complex64 = symbol
                    .iter()
                    .zip(template.iter())
                    .map(|(s, t)| *s * t.conj())
                    .sum();
                assert!(
                    (bins[b] - direct).abs() < 1e-9 * n as f64,
                    "down={down} bin {b}: {:?} != {direct:?}",
                    bins[b]
                );
            }
        }
    }

    #[test]
    fn chirp_bank_rejects_wrong_symbol_length() {
        let params = ChirpParams::new(500e3, 5).unwrap();
        let bank = ChirpBank::new(params).unwrap();
        let mut out = Vec::new();
        assert!(bank
            .upchirp_bank_into(&vec![Complex64::ONE; 31], &mut out)
            .is_err());
        assert!(bank
            .downchirp_bank_into(&vec![Complex64::ONE; 33], &mut out)
            .is_err());
    }

    #[test]
    fn chirp_bank_detects_embedded_shift() {
        // A clean shifted upchirp correlates maximally at its own shift.
        let params = ChirpParams::new(500e3, 6).unwrap();
        let bank = ChirpBank::new(params).unwrap();
        let synth = ChirpSynthesizer::new(params);
        let n = params.num_bins();
        for shift in [0usize, 3, 17, n - 1] {
            let symbol = synth.shifted_upchirp(shift);
            let mut bins = Vec::new();
            bank.upchirp_bank_into(&symbol, &mut bins).unwrap();
            let peak = (0..n)
                .max_by(|&a, &b| bins[a].norm_sqr().total_cmp(&bins[b].norm_sqr()))
                .unwrap();
            assert_eq!(peak, shift);
        }
    }
}

//! Linear chirp (chirp-spread-spectrum) waveform synthesis and dechirping.
//!
//! CSS modulation (§2.1 of the paper) encodes information in *cyclic shifts*
//! of a baseline linear upchirp that sweeps the full chirp bandwidth `BW`
//! over a symbol of `2^SF` samples (at critical sampling `fs = BW`). The
//! receiver "dechirps" by multiplying with the conjugate baseline chirp
//! (a downchirp), which turns each cyclic shift into a constant-frequency
//! tone, and then takes an FFT: the cyclic shift appears as the index of the
//! FFT peak.
//!
//! NetScatter's distributed CSS coding assigns each *device* a cyclic shift
//! and has the device ON-OFF key it, so the same primitives are shared by
//! the LoRa-backscatter baseline and by NetScatter itself.
//!
//! The synthesizer here supports the impairments the paper measures:
//! fractional timing offsets (hardware/propagation delay, §3.2.1), carrier
//! frequency offsets (crystal tolerance, §3.2.2) and amplitude scaling
//! (backscatter power gains, §3.2.3).

use crate::complex::{multiply_into, Complex64};
use std::f64::consts::PI;
use std::fmt;

/// Static parameters of a CSS chirp: bandwidth and spreading factor.
///
/// The symbol contains `2^SF` samples at critical sampling (`fs = BW`), so
/// the symbol duration is `2^SF / BW` and the FFT naturally has `2^SF` bins
/// spaced `BW / 2^SF` apart.
///
/// # Examples
///
/// ```
/// use netscatter_dsp::ChirpParams;
///
/// // The configuration used for the paper's 256-device deployment.
/// let p = ChirpParams::new(500_000.0, 9).unwrap();
/// assert_eq!(p.num_bins(), 512);
/// assert!((p.symbol_duration_s() - 1.024e-3).abs() < 1e-12);
/// assert!((p.bin_spacing_hz() - 976.5625).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChirpParams {
    bandwidth_hz: f64,
    spreading_factor: u32,
}

/// Errors from chirp parameter validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChirpParamsError {
    /// Bandwidth must be strictly positive and finite.
    InvalidBandwidth(f64),
    /// Spreading factors outside 5..=12 are not used by any LoRa-class
    /// system and are rejected to catch configuration mistakes early.
    InvalidSpreadingFactor(u32),
}

impl fmt::Display for ChirpParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChirpParamsError::InvalidBandwidth(bw) => {
                write!(f, "chirp bandwidth must be positive and finite, got {bw}")
            }
            ChirpParamsError::InvalidSpreadingFactor(sf) => {
                write!(f, "spreading factor must be in 5..=12, got {sf}")
            }
        }
    }
}

impl std::error::Error for ChirpParamsError {}

impl ChirpParams {
    /// Creates chirp parameters, validating bandwidth and spreading factor.
    pub fn new(bandwidth_hz: f64, spreading_factor: u32) -> Result<Self, ChirpParamsError> {
        if !(bandwidth_hz.is_finite() && bandwidth_hz > 0.0) {
            return Err(ChirpParamsError::InvalidBandwidth(bandwidth_hz));
        }
        if !(5..=12).contains(&spreading_factor) {
            return Err(ChirpParamsError::InvalidSpreadingFactor(spreading_factor));
        }
        Ok(Self {
            bandwidth_hz,
            spreading_factor,
        })
    }

    /// The configuration used for the paper's main deployment:
    /// `BW = 500 kHz`, `SF = 9` (Table 1, first row).
    pub fn paper_default() -> Self {
        Self {
            bandwidth_hz: 500e3,
            spreading_factor: 9,
        }
    }

    /// Chirp bandwidth in hertz (also the critical sampling rate).
    #[inline]
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Spreading factor `SF`.
    #[inline]
    pub fn spreading_factor(&self) -> u32 {
        self.spreading_factor
    }

    /// Number of samples per symbol (= number of FFT bins = `2^SF`).
    #[inline]
    pub fn num_bins(&self) -> usize {
        1usize << self.spreading_factor
    }

    /// Samples per symbol at critical sampling; alias of [`Self::num_bins`].
    #[inline]
    pub fn samples_per_symbol(&self) -> usize {
        self.num_bins()
    }

    /// Symbol duration in seconds, `2^SF / BW`.
    #[inline]
    pub fn symbol_duration_s(&self) -> f64 {
        self.num_bins() as f64 / self.bandwidth_hz
    }

    /// Symbol rate in symbols per second, `BW / 2^SF`.
    #[inline]
    pub fn symbol_rate(&self) -> f64 {
        self.bandwidth_hz / self.num_bins() as f64
    }

    /// Frequency spacing between adjacent FFT bins, `BW / 2^SF`.
    #[inline]
    pub fn bin_spacing_hz(&self) -> f64 {
        self.symbol_rate()
    }

    /// Sample period in seconds, `1 / BW`.
    #[inline]
    pub fn sample_period_s(&self) -> f64 {
        1.0 / self.bandwidth_hz
    }

    /// Bit rate of a *single-user LoRa-style* CSS link, `SF · BW / 2^SF`
    /// bits per second (§2.1). This is the baseline modulation where one
    /// device conveys `SF` bits per symbol with its choice of cyclic shift.
    #[inline]
    pub fn lora_bitrate_bps(&self) -> f64 {
        self.spreading_factor as f64 * self.symbol_rate()
    }

    /// Per-device bit rate under NetScatter's distributed CSS coding,
    /// `BW / 2^SF` bits per second: each device ON-OFF keys its assigned
    /// cyclic shift, one bit per symbol (§3.1).
    #[inline]
    pub fn on_off_bitrate_bps(&self) -> f64 {
        self.symbol_rate()
    }

    /// Aggregate network throughput of a fully loaded NetScatter band,
    /// `2^SF · BW / 2^SF = BW` bits per second (§3.1 "Throughput gain").
    #[inline]
    pub fn aggregate_throughput_bps(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Theoretical throughput gain of distributed CSS coding over LoRa-style
    /// CSS, `2^SF / SF` (§1, §3.1).
    #[inline]
    pub fn distributed_gain(&self) -> f64 {
        self.num_bins() as f64 / self.spreading_factor as f64
    }

    /// Converts a timing offset (seconds) into the FFT-bin shift it induces,
    /// `ΔFFTbin = Δt · BW` (§3.2.1, Fig. 6).
    #[inline]
    pub fn timing_offset_to_bins(&self, dt_s: f64) -> f64 {
        dt_s * self.bandwidth_hz
    }

    /// Converts a carrier frequency offset (hertz) into the FFT-bin shift it
    /// induces, `ΔFFTbin = Δf · 2^SF / BW` (§3.2.2).
    #[inline]
    pub fn frequency_offset_to_bins(&self, df_hz: f64) -> f64 {
        df_hz * self.num_bins() as f64 / self.bandwidth_hz
    }

    /// Maximum tolerable timing offset (seconds) before a peak moves by more
    /// than one FFT bin: `1 / BW` (Table 1 "Time Variation" column up to the
    /// SKIP margin).
    #[inline]
    pub fn max_timing_offset_per_bin_s(&self) -> f64 {
        1.0 / self.bandwidth_hz
    }

    /// Maximum tolerable frequency offset (hertz) before a peak moves by more
    /// than one FFT bin: `BW / 2^SF` (Table 1 "Frequency Variation" column).
    #[inline]
    pub fn max_frequency_offset_per_bin_hz(&self) -> f64 {
        self.bin_spacing_hz()
    }
}

/// Parameters of one recurrence-synthesized chirp tone: starting argument
/// `x0` (fractional samples into the `N`-periodic phase), per-output-sample
/// argument step, extra linear phase per step (CFO), amplitude and chirp
/// direction. Internal to [`ChirpSynthesizer::synthesize_into`].
struct ChirpTone {
    x0: f64,
    step: f64,
    cfo_rad_per_step: f64,
    amplitude: f64,
    down: bool,
}

/// Synthesizes chirp symbols for a fixed [`ChirpParams`].
///
/// The baseline upchirp is precomputed once; cyclic shifts, conjugation and
/// impaired variants are derived from it, so generating a symbol is cheap.
#[derive(Debug, Clone)]
pub struct ChirpSynthesizer {
    params: ChirpParams,
    baseline_up: Vec<Complex64>,
    baseline_down: Vec<Complex64>,
}

impl ChirpSynthesizer {
    /// Creates a synthesizer and precomputes the baseline up/down chirps.
    pub fn new(params: ChirpParams) -> Self {
        let n = params.num_bins();
        let baseline_up: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(Self::phase_at(n, i as f64)))
            .collect();
        let baseline_down = baseline_up.iter().map(|c| c.conj()).collect();
        Self {
            params,
            baseline_up,
            baseline_down,
        }
    }

    /// Instantaneous phase of the baseline upchirp at (possibly fractional)
    /// sample index `i`, using the `N`-periodic quadratic phase
    /// `φ(i) = 2π (i²/(2N) − i/2)`.
    ///
    /// The quadratic phase is exactly periodic with period `N`, which makes
    /// cyclic time shifts equivalent to frequency shifts after aliasing — the
    /// property CSS exploits (§2.1, Fig. 3(c)).
    fn phase_at(n: usize, i: f64) -> f64 {
        let nf = n as f64;
        2.0 * PI * (i * i / (2.0 * nf) - i / 2.0)
    }

    /// The chirp parameters this synthesizer was created with.
    #[inline]
    pub fn params(&self) -> &ChirpParams {
        &self.params
    }

    /// Returns the baseline (cyclic shift 0) upchirp symbol.
    pub fn baseline_upchirp(&self) -> &[Complex64] {
        &self.baseline_up
    }

    /// Returns the baseline downchirp (conjugate upchirp) symbol, used by the
    /// receiver for dechirping and by the preamble's downchirp symbols.
    pub fn baseline_downchirp(&self) -> &[Complex64] {
        &self.baseline_down
    }

    /// Returns the upchirp cyclically shifted by `shift` samples
    /// (`shift ∈ 0..2^SF`). After dechirping, this symbol produces an FFT
    /// peak at bin `shift`.
    pub fn shifted_upchirp(&self, shift: usize) -> Vec<Complex64> {
        let n = self.params.num_bins();
        let shift = shift % n;
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&self.baseline_up[shift..]);
        out.extend_from_slice(&self.baseline_up[..shift]);
        out
    }

    /// Returns the downchirp cyclically shifted by `shift` samples. The
    /// NetScatter preamble transmits the *same* cyclic shift on both upchirps
    /// and downchirps (§3.3.1).
    pub fn shifted_downchirp(&self, shift: usize) -> Vec<Complex64> {
        let n = self.params.num_bins();
        let shift = shift % n;
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&self.baseline_down[shift..]);
        out.extend_from_slice(&self.baseline_down[..shift]);
        out
    }

    /// Synthesizes an upchirp symbol with continuous-valued impairments.
    ///
    /// * `shift` — assigned cyclic shift in samples.
    /// * `timing_offset_s` — signed residual timing error (hardware delay +
    ///   propagation delay) between the device and the receiver's symbol
    ///   window; the demodulated peak moves by `Δt·BW` bins (§3.2.1, Fig. 6).
    ///   The sign convention is chosen so that a positive offset moves the
    ///   peak towards higher bins.
    /// * `freq_offset_hz` — residual carrier frequency offset; moves the
    ///   peak by `Δf·2^SF/BW` bins (§3.2.2).
    /// * `amplitude` — linear amplitude scaling (backscatter power gain and
    ///   channel gain).
    pub fn impaired_upchirp(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
    ) -> Vec<Complex64> {
        self.impaired_symbol(shift, timing_offset_s, freq_offset_hz, amplitude, false)
    }

    /// Synthesizes a downchirp symbol with the same impairment model as
    /// [`Self::impaired_upchirp`].
    pub fn impaired_downchirp(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
    ) -> Vec<Complex64> {
        self.impaired_symbol(shift, timing_offset_s, freq_offset_hz, amplitude, true)
    }

    fn impaired_symbol(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
        down: bool,
    ) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.params.num_bins()];
        self.write_impaired(
            shift,
            timing_offset_s,
            freq_offset_hz,
            amplitude,
            down,
            &mut out,
        );
        out
    }

    /// Synthesizes an impaired upchirp symbol into a caller-owned buffer
    /// (cleared and resized to `2^SF` samples), allocation-free in steady
    /// state. Semantics match [`Self::impaired_upchirp`].
    pub fn impaired_upchirp_into(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
        out: &mut Vec<Complex64>,
    ) {
        out.clear();
        out.resize(self.params.num_bins(), Complex64::ZERO);
        self.write_impaired(
            shift,
            timing_offset_s,
            freq_offset_hz,
            amplitude,
            false,
            out,
        );
    }

    /// As [`Self::impaired_upchirp_into`] for downchirp symbols.
    pub fn impaired_downchirp_into(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
        out: &mut Vec<Complex64>,
    ) {
        out.clear();
        out.resize(self.params.num_bins(), Complex64::ZERO);
        self.write_impaired(shift, timing_offset_s, freq_offset_hz, amplitude, true, out);
    }

    /// Accumulates (adds) an impaired upchirp symbol onto `out`, which must
    /// hold exactly `2^SF` samples. This is the superposition primitive: the
    /// waveforms of concurrent devices sum in place instead of materializing
    /// one vector per device.
    pub fn add_impaired_upchirp(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
        out: &mut [Complex64],
    ) {
        assert_eq!(
            out.len(),
            self.params.num_bins(),
            "add_impaired_upchirp expects exactly one symbol of {} samples",
            self.params.num_bins()
        );
        let dt_samples = timing_offset_s * self.params.bandwidth_hz();
        let tone = ChirpTone {
            x0: (shift % self.params.num_bins()) as f64 + dt_samples,
            step: 1.0,
            cfo_rad_per_step: 2.0 * PI * freq_offset_hz / self.params.bandwidth_hz(),
            amplitude,
            down: false,
        };
        self.synthesize_into(tone, true, out);
    }

    fn write_impaired(
        &self,
        shift: usize,
        timing_offset_s: f64,
        freq_offset_hz: f64,
        amplitude: f64,
        down: bool,
        out: &mut [Complex64],
    ) {
        let n = self.params.num_bins();
        let fs = self.params.bandwidth_hz();
        // Timing offset expressed in (fractional) samples. Because the chirp
        // is N-periodic, a window misalignment is equivalent to a fractional
        // cyclic shift of the symbol, which after dechirping moves the FFT
        // peak by Δt·BW bins (Fig. 6).
        let dt_samples = timing_offset_s * fs;
        let tone = ChirpTone {
            x0: (shift % n) as f64 + dt_samples,
            step: 1.0,
            cfo_rad_per_step: 2.0 * PI * freq_offset_hz / fs,
            amplitude,
            down,
        };
        self.synthesize_into(tone, false, out);
    }

    /// Evaluates `amplitude · e^{j(±φ((x0 + i·step) mod N) + i·cfo)}` for
    /// every output sample with a second-order phase-rotation recurrence —
    /// two complex multiplies per sample instead of a sin/cos pair.
    ///
    /// The quadratic phase has a linear first difference and the constant
    /// second difference `2π·step²/N`, so the phasor advances as
    /// `z ← z·w`, `w ← w·d`. The argument `x0 + i·step` crosses the period
    /// boundary `N` at most once per symbol; since
    /// `φ(x − N) = φ(x) − 2π(x − N)`, the crossing folds into one constant
    /// factor on `z` (and one on `w` for fractional steps). A cheap Newton
    /// renormalization every 64 samples pins the magnitude drift, keeping
    /// the recurrence within ~1e-12 of the closed form even over long
    /// oversampled symbols.
    fn synthesize_into(&self, tone: ChirpTone, accumulate: bool, out: &mut [Complex64]) {
        let n = self.params.num_bins();
        let nf = n as f64;
        let x0 = tone.x0.rem_euclid(nf);
        let sign = if tone.down { -1.0 } else { 1.0 };
        let step = tone.step;
        let phi0 = sign * Self::phase_at(n, x0);
        let dphi = sign * 2.0 * PI * ((2.0 * x0 * step + step * step) / (2.0 * nf) - step / 2.0)
            + tone.cfo_rad_per_step;
        let ddphi = sign * 2.0 * PI * step * step / nf;
        let mut z = Complex64::from_polar(tone.amplitude, phi0);
        let mut w = Complex64::cis(dphi);
        let d = Complex64::cis(ddphi);
        let wrap_at = if step > 0.0 {
            ((nf - x0) / step).ceil() as usize
        } else {
            usize::MAX
        };
        let (z_fix, w_fix) = if wrap_at < out.len() {
            let x_wrap = x0 + wrap_at as f64 * step - nf;
            (
                Complex64::cis(sign * -2.0 * PI * x_wrap),
                Complex64::cis(sign * -2.0 * PI * step),
            )
        } else {
            (Complex64::ONE, Complex64::ONE)
        };
        let target_power = tone.amplitude * tone.amplitude;
        for (i, slot) in out.iter_mut().enumerate() {
            if i == wrap_at {
                z *= z_fix;
                w *= w_fix;
            }
            if accumulate {
                *slot += z;
            } else {
                *slot = z;
            }
            z *= w;
            w *= d;
            if i % 64 == 63 {
                w = w.scale(1.5 - 0.5 * w.norm_sqr());
                if target_power > 0.0 {
                    z = z.scale(1.5 - 0.5 * z.norm_sqr() / target_power);
                }
            }
        }
    }

    /// Dechirps a received symbol by multiplying with the baseline
    /// downchirp (for received upchirps) so that every present cyclic shift
    /// becomes a constant-frequency tone ready for the FFT.
    ///
    /// Panics if `symbol` does not have `2^SF` samples; symbol framing is the
    /// caller's responsibility at this layer.
    pub fn dechirp(&self, symbol: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.dechirp_into(symbol, &mut out);
        out
    }

    /// As [`Self::dechirp`], but writing into a caller-owned buffer (cleared
    /// and refilled) so the per-symbol receive path performs no allocation.
    pub fn dechirp_into(&self, symbol: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(
            symbol.len(),
            self.params.num_bins(),
            "dechirp expects exactly one symbol of {} samples",
            self.params.num_bins()
        );
        multiply_into(symbol, &self.baseline_down, out);
    }

    /// Dechirps a received *downchirp* symbol by multiplying with the
    /// baseline upchirp. Used for the downchirp part of the preamble when
    /// locating the exact packet start (§3.3.1).
    pub fn dechirp_down(&self, symbol: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.dechirp_down_into(symbol, &mut out);
        out
    }

    /// As [`Self::dechirp_down`], but writing into a caller-owned buffer.
    pub fn dechirp_down_into(&self, symbol: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(
            symbol.len(),
            self.params.num_bins(),
            "dechirp_down expects exactly one symbol of {} samples",
            self.params.num_bins()
        );
        multiply_into(symbol, &self.baseline_up, out);
    }

    /// Synthesizes an oversampled shifted upchirp for spectrogram-style
    /// visualization (Fig. 16). `oversample` is the integer ratio of the
    /// synthesis rate to the chirp bandwidth (e.g. 8 produces
    /// `8·2^SF` samples per symbol).
    pub fn oversampled_upchirp(
        &self,
        shift: usize,
        oversample: usize,
        amplitude: f64,
    ) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.oversampled_upchirp_into(shift, oversample, amplitude, &mut out);
        out
    }

    /// As [`Self::oversampled_upchirp`], but writing into a caller-owned
    /// buffer (cleared and resized to `oversample · 2^SF` samples).
    pub fn oversampled_upchirp_into(
        &self,
        shift: usize,
        oversample: usize,
        amplitude: f64,
        out: &mut Vec<Complex64>,
    ) {
        let oversample = oversample.max(1);
        let n = self.params.num_bins();
        out.clear();
        out.resize(n * oversample, Complex64::ZERO);
        let tone = ChirpTone {
            x0: (shift % n) as f64,
            step: 1.0 / oversample as f64,
            cfo_rad_per_step: 0.0,
            amplitude,
            down: false,
        };
        self.synthesize_into(tone, false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;

    fn peak_bin(spectrum: &[Complex64]) -> usize {
        (0..spectrum.len())
            .max_by(|&a, &b| spectrum[a].abs().total_cmp(&spectrum[b].abs()))
            .unwrap()
    }

    fn dechirp_and_peak(synth: &ChirpSynthesizer, symbol: &[Complex64]) -> usize {
        let dechirped = synth.dechirp(symbol);
        peak_bin(&fft(&dechirped).unwrap())
    }

    #[test]
    fn params_validation() {
        assert!(ChirpParams::new(500e3, 9).is_ok());
        assert!(matches!(
            ChirpParams::new(0.0, 9),
            Err(ChirpParamsError::InvalidBandwidth(_))
        ));
        assert!(matches!(
            ChirpParams::new(f64::NAN, 9),
            Err(ChirpParamsError::InvalidBandwidth(_))
        ));
        assert!(matches!(
            ChirpParams::new(500e3, 4),
            Err(ChirpParamsError::InvalidSpreadingFactor(4))
        ));
        assert!(matches!(
            ChirpParams::new(500e3, 13),
            Err(ChirpParamsError::InvalidSpreadingFactor(13))
        ));
    }

    #[test]
    fn table1_first_row_derived_quantities() {
        // BW = 500 kHz, SF = 9: bitrate 976 bps, symbol 1.024 ms, bin ~976 Hz.
        let p = ChirpParams::new(500e3, 9).unwrap();
        assert_eq!(p.num_bins(), 512);
        assert!((p.on_off_bitrate_bps() - 976.5625).abs() < 1e-9);
        assert!((p.symbol_duration_s() - 1.024e-3).abs() < 1e-15);
        assert!((p.bin_spacing_hz() - 976.5625).abs() < 1e-9);
        assert!((p.lora_bitrate_bps() - 9.0 * 976.5625).abs() < 1e-6);
        assert!((p.aggregate_throughput_bps() - 500e3).abs() < 1e-9);
        // Theoretical gain 2^SF / SF = 512 / 9 ≈ 56.9.
        assert!((p.distributed_gain() - 512.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn offset_to_bin_conversions_match_paper_formulas() {
        let p = ChirpParams::new(500e3, 9).unwrap();
        // 2 us at 500 kHz = 1 bin (Table 1).
        assert!((p.timing_offset_to_bins(2e-6) - 1.0).abs() < 1e-12);
        // 976 Hz at 500 kHz / SF9 = ~1 bin (Table 1).
        assert!((p.frequency_offset_to_bins(976.5625) - 1.0).abs() < 1e-9);
        assert!((p.max_timing_offset_per_bin_s() - 2e-6).abs() < 1e-12);
        assert!((p.max_frequency_offset_per_bin_hz() - 976.5625).abs() < 1e-9);
    }

    #[test]
    fn baseline_upchirp_is_unit_amplitude_and_periodic() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(125e3, 7).unwrap());
        let up = synth.baseline_upchirp();
        assert_eq!(up.len(), 128);
        for s in up {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
        // The quadratic phase is N-periodic: phase(N) == phase(0) mod 2π.
        let n = 128;
        let p0 = ChirpSynthesizer::phase_at(n, 0.0);
        let pn = ChirpSynthesizer::phase_at(n, n as f64);
        let diff = (pn - p0) / (2.0 * PI);
        assert!((diff - diff.round()).abs() < 1e-9);
    }

    #[test]
    fn downchirp_is_conjugate_of_upchirp() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(250e3, 8).unwrap());
        for (u, d) in synth
            .baseline_upchirp()
            .iter()
            .zip(synth.baseline_downchirp())
        {
            assert!((u.conj() - *d).abs() < 1e-12);
        }
    }

    #[test]
    fn dechirped_baseline_chirp_peaks_at_bin_zero() {
        let synth = ChirpSynthesizer::new(ChirpParams::paper_default());
        let symbol = synth.shifted_upchirp(0);
        assert_eq!(dechirp_and_peak(&synth, &symbol), 0);
    }

    #[test]
    fn dechirped_shifted_chirp_peaks_at_assigned_bin() {
        let synth = ChirpSynthesizer::new(ChirpParams::paper_default());
        for shift in [1usize, 2, 37, 255, 256, 258, 511] {
            let symbol = synth.shifted_upchirp(shift);
            assert_eq!(dechirp_and_peak(&synth, &symbol), shift, "shift {shift}");
        }
    }

    #[test]
    fn shift_wraps_modulo_num_bins() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 7).unwrap());
        assert_eq!(synth.shifted_upchirp(130), synth.shifted_upchirp(2));
        assert_eq!(synth.shifted_downchirp(128), synth.shifted_downchirp(0));
    }

    #[test]
    fn impaired_chirp_without_impairments_matches_clean_shift() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 8).unwrap());
        for shift in [0usize, 3, 100] {
            let clean = synth.shifted_upchirp(shift);
            let impaired = synth.impaired_upchirp(shift, 0.0, 0.0, 1.0);
            for (a, b) in clean.iter().zip(impaired.iter()) {
                assert!((*a - *b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn timing_offset_moves_peak_by_dt_times_bw() {
        // Δt = 2 bins worth: 2 / BW.
        let params = ChirpParams::paper_default();
        let synth = ChirpSynthesizer::new(params);
        let assigned = 100;
        let dt = 2.0 / params.bandwidth_hz();
        let symbol = synth.impaired_upchirp(assigned, dt, 0.0, 1.0);
        let peak = dechirp_and_peak(&synth, &symbol);
        assert_eq!(peak, assigned + 2);
        // Negative offsets move the peak the other way.
        let symbol = synth.impaired_upchirp(assigned, -dt, 0.0, 1.0);
        let peak = dechirp_and_peak(&synth, &symbol);
        assert_eq!(peak, assigned - 2);
    }

    #[test]
    fn frequency_offset_moves_peak_by_expected_bins() {
        let params = ChirpParams::paper_default();
        let synth = ChirpSynthesizer::new(params);
        let assigned = 50;
        // 3 bins worth of CFO.
        let df = 3.0 * params.bin_spacing_hz();
        let symbol = synth.impaired_upchirp(assigned, 0.0, df, 1.0);
        assert_eq!(dechirp_and_peak(&synth, &symbol), assigned + 3);
    }

    #[test]
    fn amplitude_scales_symbol_power() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(125e3, 6).unwrap());
        let sym = synth.impaired_upchirp(5, 0.0, 0.0, 0.5);
        for s in &sym {
            assert!((s.abs() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn downchirp_symbol_decodes_with_upchirp_dechirp() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 8).unwrap());
        let shift = 42;
        let sym = synth.shifted_downchirp(shift);
        let dechirped = synth.dechirp_down(&sym);
        let spec = fft(&dechirped).unwrap();
        // Peak appears at N - shift for downchirps (mirror image), or shift 0 maps to 0.
        let peak = peak_bin(&spec);
        assert_eq!(peak, 256 - shift);
    }

    #[test]
    fn oversampled_chirp_has_expected_length_and_amplitude() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 7).unwrap());
        let s = synth.oversampled_upchirp(10, 4, 0.25);
        assert_eq!(s.len(), 4 * 128);
        for x in &s {
            assert!((x.abs() - 0.25).abs() < 1e-12);
        }
        // oversample = 0 is clamped to 1.
        assert_eq!(synth.oversampled_upchirp(0, 0, 1.0).len(), 128);
    }

    /// Closed-form reference for the recurrence synthesizer: evaluates the
    /// documented phase formula `φ(i) = 2π(i²/(2N) − i/2)` with a sin/cos
    /// pair per sample, exactly as the pre-recurrence implementation did.
    fn closed_form_impaired(
        params: &ChirpParams,
        shift: usize,
        dt_s: f64,
        f_hz: f64,
        amplitude: f64,
        down: bool,
    ) -> Vec<Complex64> {
        let n = params.num_bins();
        let fs = params.bandwidth_hz();
        let shift = (shift % n) as f64;
        let dt_samples = dt_s * fs;
        (0..n)
            .map(|i| {
                let idx = i as f64 + shift + dt_samples;
                let base = ChirpSynthesizer::phase_at(n, idx.rem_euclid(n as f64));
                let base = if down { -base } else { base };
                let cfo = 2.0 * PI * f_hz * (i as f64 / fs);
                Complex64::cis(base + cfo).scale(amplitude)
            })
            .collect()
    }

    #[test]
    fn recurrence_matches_closed_form_synthesis() {
        let params = ChirpParams::paper_default();
        let synth = ChirpSynthesizer::new(params);
        for (shift, dt_us, f_hz, amp) in [
            (0usize, 0.0, 0.0, 1.0),
            (100, 1.7, 300.0, 0.6),
            (511, -2.3, -450.0, 1.3),
            (2, 0.4, 120.0, 1e-3),
            (256, -0.9, 0.0, 2.0),
        ] {
            let dt = dt_us * 1e-6;
            for down in [false, true] {
                let fast = if down {
                    synth.impaired_downchirp(shift, dt, f_hz, amp)
                } else {
                    synth.impaired_upchirp(shift, dt, f_hz, amp)
                };
                let reference = closed_form_impaired(&params, shift, dt, f_hz, amp, down);
                for (a, b) in fast.iter().zip(reference.iter()) {
                    assert!(
                        (*a - *b).abs() < 1e-10,
                        "shift {shift} dt {dt_us}us f {f_hz} down {down}: {a:?} != {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oversampled_recurrence_matches_closed_form() {
        let params = ChirpParams::new(500e3, 9).unwrap();
        let synth = ChirpSynthesizer::new(params);
        let n = params.num_bins();
        for (shift, os) in [(0usize, 1usize), (1, 4), (200, 8), (511, 2)] {
            let fast = synth.oversampled_upchirp(shift, os, 0.7);
            let shift_f = (shift % n) as f64;
            for (i, a) in fast.iter().enumerate() {
                let idx = (i as f64 / os as f64 + shift_f).rem_euclid(n as f64);
                let b = Complex64::cis(ChirpSynthesizer::phase_at(n, idx)).scale(0.7);
                assert!(
                    (*a - b).abs() < 1e-10,
                    "shift {shift} os {os} sample {i}: {a:?} != {b:?}"
                );
            }
        }
    }

    #[test]
    fn add_impaired_upchirp_superposes_in_place() {
        let params = ChirpParams::new(500e3, 8).unwrap();
        let synth = ChirpSynthesizer::new(params);
        let mut acc = synth.impaired_upchirp(10, 0.0, 0.0, 1.0);
        synth.add_impaired_upchirp(200, 1e-6, 50.0, 0.5, &mut acc);
        let b = synth.impaired_upchirp(200, 1e-6, 50.0, 0.5);
        let a = synth.impaired_upchirp(10, 0.0, 0.0, 1.0);
        for ((s, x), y) in acc.iter().zip(a.iter()).zip(b.iter()) {
            assert!((*s - (*x + *y)).abs() < 1e-10);
        }
    }

    #[test]
    fn into_variants_reuse_and_resize_buffers() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 7).unwrap());
        let mut buf = vec![Complex64::ONE; 3];
        synth.impaired_upchirp_into(5, 0.0, 0.0, 1.0, &mut buf);
        assert_eq!(buf.len(), 128);
        assert_eq!(buf, synth.impaired_upchirp(5, 0.0, 0.0, 1.0));
        synth.dechirp_into(&synth.shifted_upchirp(9), &mut buf);
        assert_eq!(buf, synth.dechirp(&synth.shifted_upchirp(9)));
        synth.oversampled_upchirp_into(3, 2, 1.0, &mut buf);
        assert_eq!(buf.len(), 256);
    }

    #[test]
    #[should_panic(expected = "dechirp expects")]
    fn dechirp_rejects_wrong_length() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 7).unwrap());
        let short = vec![Complex64::ONE; 64];
        let _ = synth.dechirp(&short);
    }

    #[test]
    fn two_concurrent_shifts_produce_two_peaks() {
        // The heart of distributed CSS: two devices on different cyclic
        // shifts are simultaneously visible in one FFT.
        let synth = ChirpSynthesizer::new(ChirpParams::paper_default());
        let a = synth.shifted_upchirp(10);
        let b = synth.shifted_upchirp(200);
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let spec = fft(&synth.dechirp(&sum)).unwrap();
        let mags: Vec<f64> = spec.iter().map(|c| c.abs()).collect();
        let n = mags.len() as f64;
        assert!(mags[10] > 0.9 * n);
        assert!(mags[200] > 0.9 * n);
        // Everything else stays far below the two peaks.
        for (i, m) in mags.iter().enumerate() {
            if i != 10 && i != 200 {
                assert!(*m < 0.2 * n, "unexpected energy at bin {i}: {m}");
            }
        }
    }
}

//! Analysis windows for short-time spectral analysis.
//!
//! The spectrogram of Fig. 16 and several diagnostics apply a window to each
//! analysis frame to control spectral leakage. Only the windows actually used
//! by the workspace are provided.

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowKind {
    /// Rectangular (no) window — maximum resolution, highest leakage.
    #[default]
    Rectangular,
    /// Hann window — the default for spectrogram displays.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window — lowest side lobes of the set.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at sample `i` of `n` (periodic convention).
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hann => 0.5 - 0.5 * x.cos(),
            WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
            WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Generates the full window of length `n`.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Coherent gain of the window (mean value), used to normalize spectra
    /// measured through the window.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.generate(n).iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_window_is_all_ones() {
        assert!(WindowKind::Rectangular
            .generate(16)
            .iter()
            .all(|v| *v == 1.0));
        assert_eq!(WindowKind::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_window_is_zero_at_edges_and_peaks_in_middle() {
        let w = WindowKind::Hann.generate(64);
        assert!(w[0].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
        // Symmetric in the periodic sense: w[i] == w[n-i].
        for i in 1..64 {
            assert!((w[i] - w[64 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_and_blackman_values_match_references() {
        // Hamming at the midpoint = 0.54 + 0.46 = 1.0; at 0 = 0.08.
        assert!((WindowKind::Hamming.value(0, 64) - 0.08).abs() < 1e-12);
        assert!((WindowKind::Hamming.value(32, 64) - 1.0).abs() < 1e-12);
        // Blackman at 0 = 0.42 - 0.5 + 0.08 = 0.0; at midpoint = 1.0.
        assert!(WindowKind::Blackman.value(0, 64).abs() < 1e-12);
        assert!((WindowKind::Blackman.value(32, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_gains_are_in_expected_range() {
        assert!((WindowKind::Hann.coherent_gain(1024) - 0.5).abs() < 1e-3);
        assert!((WindowKind::Hamming.coherent_gain(1024) - 0.54).abs() < 1e-3);
        assert!((WindowKind::Blackman.coherent_gain(1024) - 0.42).abs() < 1e-3);
    }

    #[test]
    fn degenerate_lengths_do_not_panic() {
        assert_eq!(WindowKind::Hann.generate(0).len(), 0);
        assert_eq!(WindowKind::Hann.generate(1), vec![1.0]);
        assert_eq!(WindowKind::Hann.coherent_gain(0), 1.0);
    }
}

//! # netscatter-dsp
//!
//! Signal-processing substrate for the [NetScatter](https://www.usenix.org/conference/nsdi19/presentation/hessar)
//! reproduction. The crate is self-contained (no external DSP dependencies)
//! and provides exactly the primitives the chirp-spread-spectrum (CSS)
//! physical layer and the receiver need:
//!
//! * [`Complex64`](complex::Complex64) — complex baseband samples.
//! * [`fft`] — an iterative radix-2 FFT/IFFT with reusable plans and
//!   zero-padded transforms (the paper's receiver zero-pads to achieve
//!   sub-FFT-bin peak resolution, §3.2.3).
//! * [`chirp`] — linear upchirp/downchirp synthesis, cyclic shifting, and
//!   dechirping (downchirp multiplication), the core CSS operations of §2.1.
//! * [`correlator`] — overlap-save FFT cross-correlation against chirp
//!   templates and the all-shifts chirp-bank correlation, the fast preamble
//!   sync machinery of §3.3.1.
//! * [`kernels`] — autovectorizing f64/f32-lane kernels (energy gate,
//!   dechirp, superposition) for the streaming hot loops.
//! * [`spectrum`] — power spectra, dB conversion, peak search, fractional
//!   peak interpolation and side-lobe measurement (Fig. 8).
//! * [`spectrogram`] — short-time Fourier transform used to reproduce the
//!   Fig. 16 spectrograms of the backscattered signal at different power
//!   gains.
//! * [`window`] — analysis windows for the spectrogram.
//! * [`units`] — dB/linear and dBm/watt conversions and thermal-noise
//!   helpers used throughout the workspace.
//! * [`stats`] — small statistics toolbox (mean, variance, empirical CDF)
//!   used by the experiment drivers.
//!
//! The style follows event-driven, allocation-conscious Rust networking
//! libraries: plans and buffers are reusable, nothing panics on untrusted
//! input sizes (errors are returned), and every public item is documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chirp;
pub mod complex;
pub mod correlator;
pub mod fft;
pub mod kernels;
pub mod spectrogram;
pub mod spectrum;
pub mod stats;
pub mod units;
pub mod window;

pub use chirp::{ChirpParams, ChirpSynthesizer};
pub use complex::Complex64;
pub use correlator::{ChirpBank, Correlator, Template};
pub use fft::{Fft, FftError};
pub use spectrum::{power_spectrum_db, PeakSearch, SpectralPeak};
pub use units::{db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm};

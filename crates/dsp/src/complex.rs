//! Complex arithmetic for baseband signal processing.
//!
//! The workspace deliberately avoids external numeric dependencies, so this
//! module provides a small, fully-tested complex number type tuned for the
//! operations the CSS transceiver chain needs: multiplication (dechirping),
//! conjugation, magnitude/power, and phasor construction from a phase angle
//! (chirp synthesis).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + j·im`.
///
/// Used to represent complex baseband (I/Q) samples everywhere in the
/// workspace. The type is `Copy` and all operations are implemented for both
/// values and the usual scalar mixes.
///
/// # Examples
///
/// ```
/// use netscatter_dsp::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// let c = a * b;
/// assert!((c.re + 2.0).abs() < 1e-12);
/// assert!((c.im - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the unit phasor `e^{jθ}`.
    ///
    /// This is the work-horse of chirp synthesis where the instantaneous
    /// phase of the linear-FM waveform is evaluated sample by sample.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (signal power of the sample).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Multiplicative inverse. Returns `None` for (near-)zero inputs.
    #[inline]
    pub fn inverse(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 || !d.is_finite() {
            None
        } else {
            Some(Self::new(self.re / d, -self.im / d))
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}j",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, x| acc + x)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

/// Returns the total power (sum of squared magnitudes) of a slice of samples.
pub fn total_power(samples: &[Complex64]) -> f64 {
    samples.iter().map(|s| s.norm_sqr()).sum()
}

/// Returns the mean power (average squared magnitude) of a slice of samples.
///
/// Returns `0.0` for an empty slice.
pub fn mean_power(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        total_power(samples) / samples.len() as f64
    }
}

/// Element-wise multiplication of two equal-length sample buffers into `out`.
///
/// This is the dechirping primitive: the received signal is multiplied by a
/// conjugate (down) chirp before the FFT. Panics if the lengths differ,
/// because mismatched buffers are always a programming error at this layer.
pub fn multiply_into(a: &[Complex64], b: &[Complex64], out: &mut Vec<Complex64>) {
    assert_eq!(
        a.len(),
        b.len(),
        "multiply_into requires equal-length inputs"
    );
    out.clear();
    out.extend(a.iter().zip(b.iter()).map(|(x, y)| *x * *y));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(0.5, 4.0);
        let s = a + b;
        assert!(close(s.re, 1.5) && close(s.im, 2.0));
        let d = a - b;
        assert!(close(d.re, 0.5) && close(d.im, -6.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex64::new(3.0, 2.0);
        let b = Complex64::new(1.0, 7.0);
        let p = a * b;
        // (3+2j)(1+7j) = 3 + 21j + 2j + 14j^2 = -11 + 23j
        assert!(close(p.re, -11.0) && close(p.im, 23.0));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex64::new(-2.5, 1.25);
        let b = Complex64::new(0.3, -0.9);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        // z * conj(z) == |z|^2
        let p = a * a.conj();
        assert!(close(p.re, a.norm_sqr()) && close(p.im, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 1.1);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 1.1));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..100 {
            let theta = k as f64 * 0.1 - 5.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Complex64::ZERO.inverse().is_none());
        let z = Complex64::new(0.25, -4.0);
        let inv = z.inverse().unwrap();
        assert!((z * inv - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Complex64> = (0..64).map(|k| Complex64::cis(k as f64 * 0.3)).collect();
        assert!((mean_power(&v) - 1.0).abs() < 1e-12);
        assert!((total_power(&v) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn multiply_into_computes_elementwise_product() {
        let a = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)];
        let b = vec![Complex64::new(0.0, 1.0), Complex64::new(0.0, 1.0)];
        let mut out = Vec::new();
        multiply_into(&a, &b, &mut out);
        assert_eq!(out[0], Complex64::new(0.0, 1.0));
        assert_eq!(out[1], Complex64::new(-1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn multiply_into_panics_on_length_mismatch() {
        let a = vec![Complex64::ONE];
        let b = vec![Complex64::ONE, Complex64::ONE];
        let mut out = Vec::new();
        multiply_into(&a, &b, &mut out);
    }

    #[test]
    fn scalar_ops_and_neg() {
        let a = Complex64::new(2.0, -3.0);
        assert_eq!(a * 2.0, Complex64::new(4.0, -6.0));
        assert_eq!(2.0 * a, Complex64::new(4.0, -6.0));
        assert_eq!(a / 2.0, Complex64::new(1.0, -1.5));
        assert_eq!(-a, Complex64::new(-2.0, 3.0));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(10.0, 10.0));
    }
}

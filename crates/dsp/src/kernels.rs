//! Vectorized inner-loop kernels for the streaming receive path.
//!
//! The gateway's hot loops — the per-sample energy gate, dechirping, and
//! waveform superposition — are all elementwise or reduction passes over
//! contiguous sample buffers. Written as chunked slice iterations with no
//! per-element branching they autovectorize under `opt-level = 3` without
//! any `unsafe` or architecture-specific intrinsics (the workspace forbids
//! `unsafe_code`).
//!
//! Two precision tiers are provided:
//!
//! * **f64 kernels** operate on [`Complex64`] buffers and are bit-identical
//!   to the scalar expressions they replace (pure elementwise IEEE ops, no
//!   reassociation), so the detector's gate decisions do not change.
//! * **f32-lane kernels** operate on split re/im `f32` slices — the wire
//!   format of the daemon's `cf32` streams and twice the SIMD lane density
//!   of `f64`. They are for wire-adjacent paths where samples are already
//!   quantized to `f32` (the paper's hardware digitizes at far lower
//!   resolution still).
//!
//! Reductions ([`energy_f32`], [`power_sum`]) accumulate in [`LANES`]
//! parallel partial sums, which is what lets the compiler keep the
//! accumulator in a vector register; the result can therefore differ from a
//! strictly sequential sum by normal floating-point reassociation error.

use crate::complex::Complex64;

/// Number of parallel accumulators used by the reduction kernels. Eight
/// f32 lanes fill a 256-bit vector register; for f64 reductions the
/// compiler simply uses two registers.
pub const LANES: usize = 8;

/// Writes `|x|²` for every sample into `out` (cleared and refilled).
///
/// Elementwise and in input order, so each output value is bit-identical to
/// `samples[i].norm_sqr()` — callers replacing a scalar loop keep exactly
/// the same downstream decisions.
pub fn power_into(samples: &[Complex64], out: &mut Vec<f64>) {
    out.clear();
    power_append(samples, out);
}

/// As [`power_into`] but appending to `out`, for callers keeping a power
/// buffer aligned with a growing sample window.
pub fn power_append(samples: &[Complex64], out: &mut Vec<f64>) {
    out.extend(samples.iter().map(|s| s.norm_sqr()));
}

/// Sum of `|x|²` over the buffer using [`LANES`] partial accumulators
/// (chunked twin of `complex::total_power`).
pub fn power_sum(samples: &[Complex64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = samples.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (a, s) in acc.iter_mut().zip(chunk) {
            *a += s.norm_sqr();
        }
    }
    let mut total: f64 = acc.iter().sum();
    for s in tail {
        total += s.norm_sqr();
    }
    total
}

/// Dechirps a split-complex f32 symbol: `out = sig · conj(reference)`,
/// elementwise. All six slices must have equal lengths.
///
/// This is the f32-lane twin of `ChirpSynthesizer::dechirp_into` for
/// buffers already in the daemon's `cf32` wire precision.
///
/// # Panics
///
/// Panics if the slice lengths disagree — the buffers are produced by the
/// caller's own planning code, not untrusted input.
pub fn dechirp_f32(
    sig_re: &[f32],
    sig_im: &[f32],
    ref_re: &[f32],
    ref_im: &[f32],
    out_re: &mut [f32],
    out_im: &mut [f32],
) {
    let n = sig_re.len();
    assert!(
        sig_im.len() == n
            && ref_re.len() == n
            && ref_im.len() == n
            && out_re.len() == n
            && out_im.len() == n,
        "dechirp_f32 slice lengths disagree"
    );
    for i in 0..n {
        // (a + bi)(c - di) = (ac + bd) + (bc - ad)i
        let (a, b) = (sig_re[i], sig_im[i]);
        let (c, d) = (ref_re[i], ref_im[i]);
        out_re[i] = a * c + b * d;
        out_im[i] = b * c - a * d;
    }
}

/// Writes `re² + im²` per sample into `out` and returns the total energy,
/// accumulated in [`LANES`] partial sums. `re`, `im` and `out` must have
/// equal lengths.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn energy_f32(re: &[f32], im: &[f32], out: &mut [f32]) -> f32 {
    let n = re.len();
    assert!(
        im.len() == n && out.len() == n,
        "energy_f32 slice lengths disagree"
    );
    for i in 0..n {
        out[i] = re[i] * re[i] + im[i] * im[i];
    }
    let mut acc = [0.0f32; LANES];
    let chunks = out.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (a, p) in acc.iter_mut().zip(chunk) {
            *a += *p;
        }
    }
    acc.iter().sum::<f32>() + tail.iter().sum::<f32>()
}

/// Superposes a split-complex f32 waveform onto an accumulator with a
/// complex gain: `acc += (gain_re + j·gain_im) · src`, elementwise.
///
/// Used when mixing several device waveforms (or channel streams) into one
/// composite buffer at wire precision.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn superpose_f32(
    acc_re: &mut [f32],
    acc_im: &mut [f32],
    src_re: &[f32],
    src_im: &[f32],
    gain_re: f32,
    gain_im: f32,
) {
    let n = acc_re.len();
    assert!(
        acc_im.len() == n && src_re.len() == n && src_im.len() == n,
        "superpose_f32 slice lengths disagree"
    );
    for i in 0..n {
        let (a, b) = (src_re[i], src_im[i]);
        acc_re[i] += gain_re * a - gain_im * b;
        acc_im[i] += gain_re * b + gain_im * a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|t| Complex64::new((t as f64 * 0.7).sin(), (t as f64 * 1.3).cos()))
            .collect()
    }

    #[test]
    fn power_into_is_bit_identical_to_scalar() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let buf = samples(n);
            let mut out = vec![42.0; 3];
            power_into(&buf, &mut out);
            assert_eq!(out.len(), n);
            for (i, p) in out.iter().enumerate() {
                assert_eq!(*p, buf[i].norm_sqr(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn total_power_matches_sequential_sum_closely() {
        for n in [0usize, 1, 8, 15, 1000] {
            let buf = samples(n);
            let sequential: f64 = buf.iter().map(|s| s.norm_sqr()).sum();
            let chunked = power_sum(&buf);
            assert!(
                (chunked - sequential).abs() <= 1e-12 * sequential.max(1.0),
                "n={n}: {chunked} vs {sequential}"
            );
        }
    }

    #[test]
    fn dechirp_f32_matches_complex_multiply() {
        let n = 37;
        let sig: Vec<(f32, f32)> = (0..n)
            .map(|t| ((t as f32 * 0.3).sin(), (t as f32 * 0.9).cos()))
            .collect();
        let reference: Vec<(f32, f32)> = (0..n)
            .map(|t| ((t as f32 * 1.1).cos(), (t as f32 * 0.2).sin()))
            .collect();
        let sig_re: Vec<f32> = sig.iter().map(|s| s.0).collect();
        let sig_im: Vec<f32> = sig.iter().map(|s| s.1).collect();
        let ref_re: Vec<f32> = reference.iter().map(|s| s.0).collect();
        let ref_im: Vec<f32> = reference.iter().map(|s| s.1).collect();
        let mut out_re = vec![0.0; n];
        let mut out_im = vec![0.0; n];
        dechirp_f32(&sig_re, &sig_im, &ref_re, &ref_im, &mut out_re, &mut out_im);
        for i in 0..n {
            let (a, b) = sig[i];
            let (c, d) = reference[i];
            assert_eq!(out_re[i], a * c + b * d, "re {i}");
            assert_eq!(out_im[i], b * c - a * d, "im {i}");
        }
    }

    #[test]
    fn energy_f32_per_sample_exact_and_total_close() {
        let n = 100;
        let re: Vec<f32> = (0..n).map(|t| (t as f32 * 0.31).sin()).collect();
        let im: Vec<f32> = (0..n).map(|t| (t as f32 * 0.17).cos()).collect();
        let mut out = vec![0.0; n];
        let total = energy_f32(&re, &im, &mut out);
        let mut sequential = 0.0f64;
        for i in 0..n {
            assert_eq!(out[i], re[i] * re[i] + im[i] * im[i], "i={i}");
            sequential += f64::from(out[i]);
        }
        assert!((f64::from(total) - sequential).abs() < 1e-3 * sequential.max(1.0));
    }

    #[test]
    fn superpose_f32_accumulates_with_complex_gain() {
        let n = 19;
        let mut acc_re = vec![1.0f32; n];
        let mut acc_im = vec![-1.0f32; n];
        let src_re: Vec<f32> = (0..n).map(|t| t as f32).collect();
        let src_im: Vec<f32> = (0..n).map(|t| -(t as f32) * 0.5).collect();
        let (g_re, g_im) = (0.25f32, -0.75f32);
        superpose_f32(&mut acc_re, &mut acc_im, &src_re, &src_im, g_re, g_im);
        for i in 0..n {
            let (a, b) = (src_re[i], src_im[i]);
            assert_eq!(acc_re[i], 1.0 + (g_re * a - g_im * b), "re {i}");
            assert_eq!(acc_im[i], -1.0 + (g_re * b + g_im * a), "im {i}");
        }
    }

    #[test]
    #[should_panic(expected = "lengths disagree")]
    fn mismatched_lengths_panic() {
        let mut out = vec![0.0f32; 3];
        energy_f32(&[0.0; 4], &[0.0; 4], &mut out);
    }
}

//! Spectral analysis helpers: power spectra, peak search, fractional-bin
//! interpolation and side-lobe measurements.
//!
//! The NetScatter receiver's per-symbol decision is made entirely in the FFT
//! domain: it looks for peaks at the assigned cyclic-shift bins and compares
//! their power against thresholds (§3.3.1). The Fig. 8 analysis of near-far
//! side lobes is also a spectral-domain measurement, reproduced by
//! [`sidelobe_profile_db`].

use crate::complex::Complex64;
use crate::fft::{Fft, FftError};
use crate::units::linear_to_db;

/// A located spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// Index of the strongest FFT bin.
    pub bin: usize,
    /// Fractional bin estimate after parabolic interpolation around the peak.
    pub fractional_bin: f64,
    /// Linear power (squared magnitude) of the peak bin.
    pub power: f64,
}

/// Computes the per-bin linear power (squared magnitude) of a spectrum.
pub fn power_spectrum(spectrum: &[Complex64]) -> Vec<f64> {
    spectrum.iter().map(|c| c.norm_sqr()).collect()
}

/// As [`power_spectrum`], but writing into a caller-owned buffer (cleared
/// and refilled) so the per-symbol decode path performs no heap allocation.
pub fn power_spectrum_into(spectrum: &[Complex64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(spectrum.iter().map(|c| c.norm_sqr()));
}

/// Computes the per-bin power of a spectrum in dB, normalized so that the
/// strongest bin is 0 dB. Empty bins map to `f64::NEG_INFINITY`.
///
/// This is the normalization used by Fig. 8 and Fig. 15(b) of the paper.
pub fn power_spectrum_db(spectrum: &[Complex64]) -> Vec<f64> {
    let power = power_spectrum(spectrum);
    let max = power.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return vec![f64::NEG_INFINITY; power.len()];
    }
    power.iter().map(|p| linear_to_db(p / max)).collect()
}

/// Peak-search utility over power spectra.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakSearch;

impl PeakSearch {
    /// Finds the global maximum of a power spectrum and refines its location
    /// with parabolic (three-point) interpolation, yielding a fractional-bin
    /// estimate.
    ///
    /// Returns `None` for an empty spectrum or an all-zero spectrum.
    pub fn strongest(power: &[f64]) -> Option<SpectralPeak> {
        if power.is_empty() {
            return None;
        }
        let (bin, &peak_power) = power.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        if peak_power <= 0.0 {
            return None;
        }
        let fractional_bin = Self::parabolic_refine(power, bin);
        Some(SpectralPeak {
            bin,
            fractional_bin,
            power: peak_power,
        })
    }

    /// Finds the strongest peak in the complex spectrum directly.
    pub fn strongest_complex(spectrum: &[Complex64]) -> Option<SpectralPeak> {
        Self::strongest(&power_spectrum(spectrum))
    }

    /// Parabolic interpolation of the peak location using the (circularly
    /// adjacent) neighbours in *dB* domain, which is the standard estimator
    /// for sinusoid frequency on a windowed FFT.
    fn parabolic_refine(power: &[f64], bin: usize) -> f64 {
        let n = power.len();
        if n < 3 {
            return bin as f64;
        }
        let left = power[(bin + n - 1) % n].max(f64::MIN_POSITIVE);
        let centre = power[bin].max(f64::MIN_POSITIVE);
        let right = power[(bin + 1) % n].max(f64::MIN_POSITIVE);
        let (l, c, r) = (
            linear_to_db(left),
            linear_to_db(centre),
            linear_to_db(right),
        );
        // When the tone sits exactly on a bin (no zero-padding) the
        // neighbouring bins carry only numerical noise; interpolating on
        // them would add a spurious fractional component.
        if c - l.max(r) > 60.0 {
            return bin as f64;
        }
        let denom = l - 2.0 * c + r;
        if denom.abs() < 1e-12 {
            return bin as f64;
        }
        let delta = 0.5 * (l - r) / denom;
        // Clamp: the true peak is within half a bin of the maximum bin.
        let delta = delta.clamp(-0.5, 0.5);
        bin as f64 + delta
    }

    /// Returns all local maxima whose power exceeds `threshold` (linear),
    /// sorted by descending power. A bin is a local maximum if it is at least
    /// as large as both circular neighbours.
    pub fn peaks_above(power: &[f64], threshold: f64) -> Vec<SpectralPeak> {
        let n = power.len();
        if n == 0 {
            return Vec::new();
        }
        let mut peaks: Vec<SpectralPeak> = (0..n)
            .filter(|&i| {
                let p = power[i];
                p > threshold && p >= power[(i + n - 1) % n] && p >= power[(i + 1) % n]
            })
            .map(|i| SpectralPeak {
                bin: i,
                fractional_bin: Self::parabolic_refine(power, i),
                power: power[i],
            })
            .collect();
        peaks.sort_by(|a, b| b.power.total_cmp(&a.power));
        peaks
    }
}

/// Result of the Fig. 8 side-lobe analysis: the dechirped, zero-padded power
/// spectrum of a single chirp, normalized to the main-lobe power, evaluated
/// at integer *chirp bins* (i.e. multiples of the zero-padding factor).
#[derive(Debug, Clone)]
pub struct SidelobeProfile {
    /// Zero-padding factor used (spectrum length / symbol length).
    pub padding_factor: usize,
    /// Normalized power (dB, 0 dB = main lobe) at each chirp-bin offset from
    /// the transmitted cyclic shift, for offsets `0..num_bins`.
    pub level_db_at_bin_offset: Vec<f64>,
}

impl SidelobeProfile {
    /// Normalized side-lobe level (dB) at a given bin offset from the
    /// transmitting device's cyclic shift. Offset 0 is the main lobe (0 dB).
    pub fn level_at_offset(&self, offset: usize) -> f64 {
        self.level_db_at_bin_offset[offset % self.level_db_at_bin_offset.len()]
    }

    /// The minimum power difference (dB) a neighbour assigned `skip` bins
    /// away can have and still remain above this device's side lobes — the
    /// quantity Fig. 8 annotates as ≈13 dB for SKIP = 2 and ≈21 dB for
    /// SKIP = 3 (sign convention: a positive number means the interferer may
    /// be that many dB *stronger*).
    pub fn tolerable_power_difference_db(&self, skip: usize) -> f64 {
        -self.level_at_offset(skip)
    }
}

/// Computes the Fig. 8 side-lobe profile for a dechirped chirp of
/// `num_bins` samples, zero-padded by `padding_factor`.
///
/// The dechirped chirp is an ideal complex tone, so its zero-padded spectrum
/// is the Dirichlet (periodic sinc) kernel; the profile reports its level at
/// integer chirp-bin offsets. Returns an [`FftError`] if the padded size is
/// not a power of two.
pub fn sidelobe_profile_db(
    num_bins: usize,
    padding_factor: usize,
) -> Result<SidelobeProfile, FftError> {
    let padded = num_bins
        .checked_mul(padding_factor)
        .ok_or(FftError::SizeNotPowerOfTwo { size: usize::MAX })?;
    let plan = Fft::new(padded)?;
    // Dechirped symbol of a chirp at shift 0 = constant tone at DC.
    let tone = vec![Complex64::ONE; num_bins];
    let spec = plan.forward_zero_padded(&tone)?;
    let power = power_spectrum(&spec);
    let main = power[0];
    // Between integer chirp bins the Dirichlet kernel oscillates. A device
    // assigned `offset` bins away from a strong transmitter is masked
    // whenever the strong transmitter's side-lobe *envelope* reaches its
    // power; residual timing offsets can move the strong peak by up to one
    // bin towards the victim, so the worst-case level at offset k is the
    // peak of the lobe lying between bins k-1 and k. (Fig. 8 annotates this
    // envelope at SKIP = 2 and SKIP = 3.)
    let level_db_at_bin_offset = (0..num_bins)
        .map(|offset| {
            if offset == 0 {
                return 0.0;
            }
            let lo = (offset - 1) * padding_factor + 1;
            let hi = (offset * padding_factor).min(padded - 1);
            let max_p = (lo..=hi)
                .map(|i| power[i])
                .fold(f64::MIN_POSITIVE, f64::max);
            linear_to_db(max_p / main)
        })
        .collect();
    Ok(SidelobeProfile {
        padding_factor,
        level_db_at_bin_offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::{ChirpParams, ChirpSynthesizer};
    use crate::fft::fft;

    #[test]
    fn power_spectrum_db_normalizes_to_zero_db_peak() {
        let spec = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(10.0, 0.0),
            Complex64::new(0.0, 0.0),
        ];
        let db = power_spectrum_db(&spec);
        assert!((db[1] - 0.0).abs() < 1e-12);
        assert!((db[0] - (-20.0)).abs() < 1e-9);
        assert_eq!(db[2], f64::NEG_INFINITY);
    }

    #[test]
    fn power_spectrum_into_matches_allocating_version() {
        let spec: Vec<Complex64> = (0..9)
            .map(|k| Complex64::cis(k as f64).scale(2.0))
            .collect();
        let mut out = vec![1.0; 3]; // stale contents must be discarded
        power_spectrum_into(&spec, &mut out);
        assert_eq!(out, power_spectrum(&spec));
    }

    #[test]
    fn power_spectrum_db_of_all_zero_is_neg_infinity() {
        let spec = vec![Complex64::ZERO; 4];
        assert!(power_spectrum_db(&spec)
            .iter()
            .all(|d| *d == f64::NEG_INFINITY));
    }

    #[test]
    fn strongest_peak_finds_tone() {
        let n = 128;
        let tone: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * 31.0 * t as f64 / n as f64))
            .collect();
        let spec = fft(&tone).unwrap();
        let peak = PeakSearch::strongest_complex(&spec).unwrap();
        assert_eq!(peak.bin, 31);
        assert!((peak.fractional_bin - 31.0).abs() < 1e-6);
    }

    #[test]
    fn strongest_of_empty_or_zero_spectrum_is_none() {
        assert!(PeakSearch::strongest(&[]).is_none());
        assert!(PeakSearch::strongest(&[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn nan_contaminated_spectrum_does_not_panic_peak_searches() {
        // An impaired spectrum (e.g. overflow in an upstream stage) must
        // never panic the receiver: `total_cmp` gives NaN a total order
        // instead of unwrapping a failed `partial_cmp`.
        let power = vec![0.1, f64::NAN, 4.0, 0.2];
        let _ = PeakSearch::strongest(&power);
        let _ = PeakSearch::peaks_above(&power, 0.05);
    }

    #[test]
    fn fractional_peak_interpolation_recovers_off_grid_tone() {
        // Tone at bin 20.3 of a 64-point grid, zero-padded 8x for analysis.
        let n = 64;
        let true_bin = 20.3;
        let tone: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * true_bin * t as f64 / n as f64))
            .collect();
        let plan = Fft::new(n * 8).unwrap();
        let spec = plan.forward_zero_padded(&tone).unwrap();
        let peak = PeakSearch::strongest_complex(&spec).unwrap();
        let est = peak.fractional_bin / 8.0;
        assert!(
            (est - true_bin).abs() < 0.05,
            "estimated {est}, expected {true_bin}"
        );
    }

    #[test]
    fn peaks_above_returns_sorted_local_maxima() {
        let power = vec![0.1, 5.0, 0.2, 0.1, 9.0, 0.3, 0.1, 2.0];
        let peaks = PeakSearch::peaks_above(&power, 1.0);
        let bins: Vec<usize> = peaks.iter().map(|p| p.bin).collect();
        assert_eq!(bins, vec![4, 1, 7]);
    }

    #[test]
    fn peaks_above_threshold_filters_weak_bins() {
        let power = vec![0.5, 3.0, 0.5, 0.9, 0.5];
        let peaks = PeakSearch::peaks_above(&power, 2.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 1);
    }

    #[test]
    fn sidelobe_profile_matches_fig8_annotations() {
        // Fig. 8: with zero padding, the lobe envelope two chirp bins away is
        // ≈ -13 dB; the paper reads ≈ -21 dB at three bins on its measured
        // hardware waveform, while the ideal Dirichlet envelope gives ≈ -18 dB.
        // We check the -13 dB point and the qualitative fall-off.
        let profile = sidelobe_profile_db(512, 8).unwrap();
        assert_eq!(profile.level_at_offset(0), 0.0);
        let skip2 = profile.level_at_offset(2);
        let skip3 = profile.level_at_offset(3);
        assert!(
            (-15.0..=-11.0).contains(&skip2),
            "SKIP=2 level {skip2} dB not near -13 dB"
        );
        assert!(
            (-23.0..=-16.0).contains(&skip3),
            "SKIP=3 level {skip3} dB not in expected band"
        );
        assert!(
            skip3 < skip2 - 3.0,
            "side lobes must keep falling with distance"
        );
        // Side lobes keep falling off further away.
        assert!(profile.level_at_offset(50) < profile.level_at_offset(3));
        // Tolerable power difference is the negation.
        assert!((profile.tolerable_power_difference_db(2) + skip2).abs() < 1e-12);
    }

    #[test]
    fn sidelobe_profile_rejects_non_power_of_two_padding() {
        assert!(sidelobe_profile_db(512, 3).is_err());
    }

    #[test]
    fn dechirped_shifted_chirp_peak_power_is_n_squared() {
        let synth = ChirpSynthesizer::new(ChirpParams::new(500e3, 8).unwrap());
        let sym = synth.shifted_upchirp(77);
        let spec = fft(&synth.dechirp(&sym)).unwrap();
        let peak = PeakSearch::strongest_complex(&spec).unwrap();
        assert_eq!(peak.bin, 77);
        let n = 256.0_f64;
        assert!((peak.power - n * n).abs() / (n * n) < 1e-9);
    }
}

//! Radix-2 fast Fourier transform with reusable plans.
//!
//! The NetScatter receiver demodulates *all* concurrent devices with a single
//! dechirp-and-FFT per symbol (§3.1), and achieves sub-FFT-bin resolution by
//! zero-padding the dechirped symbol before the transform (§3.2.3). Both
//! operations are provided here.
//!
//! The implementation is an in-place, iterative, decimation-in-time radix-2
//! FFT with precomputed twiddle factors and bit-reversal permutation. A
//! [`Fft`] plan is created once for a given (power-of-two) size and reused
//! for every symbol, which keeps the per-symbol cost to the butterfly passes
//! only — mirroring how a real SDR receiver would reuse an FFT plan.

use crate::complex::Complex64;
use std::f64::consts::PI;
use std::fmt;

/// Errors returned by FFT plan construction and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The requested transform size is zero or not a power of two.
    SizeNotPowerOfTwo {
        /// The offending size.
        size: usize,
    },
    /// The input buffer length does not match the plan size.
    LengthMismatch {
        /// Plan size.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// The input is longer than the padded transform size.
    InputLongerThanTransform {
        /// Input length.
        input: usize,
        /// Transform size.
        size: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::SizeNotPowerOfTwo { size } => {
                write!(f, "FFT size {size} is not a non-zero power of two")
            }
            FftError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match FFT plan size {expected}"
                )
            }
            FftError::InputLongerThanTransform { input, size } => {
                write!(
                    f,
                    "input of {input} samples does not fit a {size}-point transform"
                )
            }
        }
    }
}

impl std::error::Error for FftError {}

/// A reusable radix-2 FFT plan for a fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use netscatter_dsp::{Complex64, Fft};
///
/// let fft = Fft::new(8).unwrap();
/// // A complex exponential at bin 2 produces a single peak at index 2.
/// let mut buf: Vec<Complex64> = (0..8)
///     .map(|n| Complex64::cis(2.0 * std::f64::consts::PI * 2.0 * n as f64 / 8.0))
///     .collect();
/// fft.forward_in_place(&mut buf).unwrap();
/// let peak = (0..8).max_by(|&a, &b| buf[a].abs().total_cmp(&buf[b].abs())).unwrap();
/// assert_eq!(peak, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    /// Twiddle factors e^{-j 2π k / size} for k in 0..size/2.
    twiddles: Vec<Complex64>,
    /// Conjugate twiddle factors, precomputed so the inverse transform's
    /// butterfly loop carries no per-element branch or conjugation.
    twiddles_conj: Vec<Complex64>,
    /// Bit-reversal permutation indices.
    reversed: Vec<usize>,
}

impl Fft {
    /// Creates a plan for an `size`-point transform.
    ///
    /// Returns [`FftError::SizeNotPowerOfTwo`] unless `size` is a non-zero
    /// power of two.
    pub fn new(size: usize) -> Result<Self, FftError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(FftError::SizeNotPowerOfTwo { size });
        }
        let twiddles: Vec<Complex64> = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / size as f64))
            .collect();
        let twiddles_conj = twiddles.iter().map(|t| t.conj()).collect();
        let bits = size.trailing_zeros();
        let reversed = (0..size)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (usize::BITS - bits)
                }
            })
            .collect();
        Ok(Self {
            size,
            twiddles,
            twiddles_conj,
            reversed,
        })
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform, in place. The buffer length must equal the plan size.
    pub fn forward_in_place(&self, buf: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(buf)?;
        self.permute(buf);
        self.butterflies_from(buf, 2, &self.twiddles);
        Ok(())
    }

    /// Inverse transform, in place, including the `1/N` normalization so that
    /// `inverse(forward(x)) == x`.
    pub fn inverse_in_place(&self, buf: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(buf)?;
        self.permute(buf);
        self.butterflies_from(buf, 2, &self.twiddles_conj);
        let scale = 1.0 / self.size as f64;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
        Ok(())
    }

    /// Forward transform of `input` into a newly allocated output vector.
    pub fn forward(&self, input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
        let mut buf = input.to_vec();
        self.forward_in_place(&mut buf)?;
        Ok(buf)
    }

    /// Forward transform of an input that is zero-padded up to the plan size.
    ///
    /// This is the sub-bin-resolution operation of §3.2.3: zero-padding in
    /// the time domain interpolates the spectrum (convolution with a Dirichlet
    /// / sinc kernel), which both sharpens peak localization and creates the
    /// side lobes analysed in Fig. 8.
    ///
    /// Returns [`FftError::InputLongerThanTransform`] if `input` is longer
    /// than the plan size.
    pub fn forward_zero_padded(&self, input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
        let mut buf = Vec::new();
        self.forward_zero_padded_into(input, &mut buf)?;
        Ok(buf)
    }

    /// As [`Self::forward_zero_padded`], but writing the spectrum into a
    /// caller-owned buffer (cleared and resized to the plan size) so the
    /// steady-state decode path performs no heap allocation.
    ///
    /// The transform is *input-pruned*: with `m = input.len()` rounded up to
    /// a power of two and `p = size / m`, the first `log2(p)` butterfly
    /// stages of a decimation-in-time FFT only combine each real sample with
    /// known zeros, which reduces to broadcasting that sample across its
    /// `p`-wide block in bit-reversed order. Those stages (3 of 12 for a
    /// 512-sample symbol in a 4096-point plan, §3.2.3) are skipped entirely
    /// and the butterflies start at length `2p`.
    pub fn forward_zero_padded_into(
        &self,
        input: &[Complex64],
        out: &mut Vec<Complex64>,
    ) -> Result<(), FftError> {
        if input.len() > self.size {
            return Err(FftError::InputLongerThanTransform {
                input: input.len(),
                size: self.size,
            });
        }
        out.clear();
        out.resize(self.size, Complex64::ZERO);
        if input.is_empty() {
            return Ok(());
        }
        let m = input.len().next_power_of_two();
        let p = self.size / m;
        // After bit-reversal permutation of the zero-padded buffer, the
        // non-zero samples sit at indices divisible by p, holding
        // input[bitrev_m(j)] at index j·p; the first log2(p) butterfly
        // stages then merely copy that value across the whole p-block.
        for (j, block) in out.chunks_exact_mut(p).enumerate() {
            let src = self.reversed[j * p];
            if src < input.len() {
                block.fill(input[src]);
            }
        }
        self.butterflies_from(out, 2 * p, &self.twiddles);
        Ok(())
    }

    fn check_len(&self, buf: &[Complex64]) -> Result<(), FftError> {
        if buf.len() != self.size {
            Err(FftError::LengthMismatch {
                expected: self.size,
                actual: buf.len(),
            })
        } else {
            Ok(())
        }
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for i in 0..self.size {
            let j = self.reversed[i];
            if j > i {
                buf.swap(i, j);
            }
        }
    }

    /// Runs the butterfly stages from length `start_len` up to the plan size
    /// with the given twiddle table (forward or conjugate). Starting above 2
    /// is how the pruned zero-padded transform skips its all-zero stages.
    fn butterflies_from(&self, buf: &mut [Complex64], start_len: usize, twiddles: &[Complex64]) {
        let n = self.size;
        let mut len = start_len.max(2);
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in buf.chunks_exact_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for ((a, b), tw) in lo
                    .iter_mut()
                    .zip(hi.iter_mut())
                    .zip(twiddles.iter().step_by(stride))
                {
                    let t = *b * *tw;
                    let u = *a;
                    *a = u + t;
                    *b = u - t;
                }
            }
            len <<= 1;
        }
    }
}

/// Convenience free function: forward FFT of a power-of-two-length buffer.
pub fn fft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    Fft::new(input.len())?.forward(input)
}

/// Convenience free function: inverse FFT of a power-of-two-length buffer.
pub fn ifft(input: &[Complex64]) -> Result<Vec<Complex64>, FftError> {
    let plan = Fft::new(input.len())?;
    let mut buf = input.to_vec();
    plan.inverse_in_place(&mut buf)?;
    Ok(buf)
}

/// Rotates an FFT output so that bin 0 (DC) sits in the middle of the vector.
///
/// Useful for plotting spectra in the "−BW/2 .. +BW/2" convention used by
/// Fig. 3 and Fig. 16 of the paper.
pub fn fft_shift<T: Copy>(spectrum: &[T]) -> Vec<T> {
    let n = spectrum.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&spectrum[half..]);
    out.extend_from_slice(&spectrum[..half]);
    out
}

/// In-place variant of [`fft_shift`]: rotates the spectrum so that bin 0
/// (DC) sits in the middle, without allocating. Used by the spectrogram
/// path, which shifts one row per STFT frame.
pub fn fft_shift_in_place<T>(spectrum: &mut [T]) {
    let half = spectrum.len().div_ceil(2);
    spectrum.rotate_left(half);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::total_power;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!((a - b).abs() < tol, "{a:?} != {b:?}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            Fft::new(0).unwrap_err(),
            FftError::SizeNotPowerOfTwo { size: 0 }
        );
        assert_eq!(
            Fft::new(3).unwrap_err(),
            FftError::SizeNotPowerOfTwo { size: 3 }
        );
        assert_eq!(
            Fft::new(100).unwrap_err(),
            FftError::SizeNotPowerOfTwo { size: 100 }
        );
        assert!(Fft::new(1).is_ok());
        assert!(Fft::new(1024).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        let plan = Fft::new(8).unwrap();
        let mut buf = vec![Complex64::ZERO; 4];
        assert!(matches!(
            plan.forward_in_place(&mut buf),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut buf = vec![Complex64::ZERO; 16];
        buf[0] = Complex64::ONE;
        Fft::new(16).unwrap().forward_in_place(&mut buf).unwrap();
        for bin in &buf {
            assert_close(*bin, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_dc_only() {
        let buf = vec![Complex64::ONE; 32];
        let out = fft(&buf).unwrap();
        assert_close(out[0], Complex64::new(32.0, 0.0), 1e-9);
        for bin in &out[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_expected_bin() {
        let n = 256;
        for target_bin in [1usize, 7, 100, 200, 255] {
            let buf: Vec<Complex64> = (0..n)
                .map(|t| Complex64::cis(2.0 * PI * target_bin as f64 * t as f64 / n as f64))
                .collect();
            let out = fft(&buf).unwrap();
            let peak = (0..n)
                .max_by(|&a, &b| out[a].abs().total_cmp(&out[b].abs()))
                .unwrap();
            assert_eq!(peak, target_bin);
            assert!((out[peak].abs() - n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_then_inverse_recovers_signal() {
        let n = 128;
        let buf: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new((t as f64 * 0.37).sin(), (t as f64 * 0.11).cos()))
            .collect();
        let spec = fft(&buf).unwrap();
        let back = ifft(&spec).unwrap();
        for (a, b) in buf.iter().zip(back.iter()) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let n = 512;
        let buf: Vec<Complex64> = (0..n)
            .map(|t| {
                Complex64::new(
                    ((t * 7) % 13) as f64 / 13.0 - 0.5,
                    ((t * 5) % 11) as f64 / 11.0,
                )
            })
            .collect();
        let spec = fft(&buf).unwrap();
        let time_energy = total_power(&buf);
        let freq_energy = total_power(&spec) / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn zero_padding_interpolates_spectrum_peak() {
        // A tone at a fractional bin (2.5 of an 8-point grid) cannot be
        // located exactly with an 8-point FFT, but a 64-point zero-padded
        // transform localizes it to 2.5 * (64/8) = bin 20.
        let n = 8;
        let pad = 64;
        let freq_bins = 2.5;
        let input: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * freq_bins * t as f64 / n as f64))
            .collect();
        let plan = Fft::new(pad).unwrap();
        let out = plan.forward_zero_padded(&input).unwrap();
        let peak = (0..pad)
            .max_by(|&a, &b| out[a].abs().total_cmp(&out[b].abs()))
            .unwrap();
        assert_eq!(peak, 20);
    }

    #[test]
    fn zero_padding_rejects_oversized_input() {
        let plan = Fft::new(8).unwrap();
        let input = vec![Complex64::ONE; 9];
        assert!(matches!(
            plan.forward_zero_padded(&input),
            Err(FftError::InputLongerThanTransform { input: 9, size: 8 })
        ));
    }

    #[test]
    fn fft_shift_rotates_by_half() {
        let v: Vec<usize> = (0..8).collect();
        assert_eq!(fft_shift(&v), vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let odd: Vec<usize> = (0..5).collect();
        assert_eq!(fft_shift(&odd), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn fft_shift_in_place_matches_allocating_version() {
        for n in [0usize, 1, 2, 5, 8, 13] {
            let v: Vec<usize> = (0..n).collect();
            let mut w = v.clone();
            fft_shift_in_place(&mut w);
            assert_eq!(w, fft_shift(&v), "length {n}");
        }
    }

    #[test]
    fn pruned_zero_padded_matches_dense_transform() {
        // Every (input length, plan size) combination, including non-power-
        // of-two inputs and the unpruned input == size case, must agree with
        // the dense pad-then-transform path.
        let plan = Fft::new(64).unwrap();
        for len in [0usize, 1, 2, 3, 7, 8, 12, 16, 33, 64] {
            let input: Vec<Complex64> = (0..len)
                .map(|t| Complex64::new((t as f64 * 0.7).sin(), (t as f64 * 1.3).cos()))
                .collect();
            let mut dense: Vec<Complex64> = input.clone();
            dense.resize(64, Complex64::ZERO);
            plan.forward_in_place(&mut dense).unwrap();
            let pruned = plan.forward_zero_padded(&input).unwrap();
            for (a, b) in pruned.iter().zip(dense.iter()) {
                assert_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn forward_zero_padded_into_reuses_buffer() {
        let plan = Fft::new(16).unwrap();
        let input = vec![Complex64::ONE; 4];
        let mut out = vec![Complex64::new(9.0, 9.0); 3]; // stale, wrong size
        plan.forward_zero_padded_into(&input, &mut out).unwrap();
        assert_eq!(out.len(), 16);
        let reference = plan.forward_zero_padded(&input).unwrap();
        for (a, b) in out.iter().zip(reference.iter()) {
            assert_close(*a, *b, 1e-12);
        }
        // Oversized inputs are still rejected and leave no partial state
        // requirement on the caller.
        assert!(plan
            .forward_zero_padded_into(&vec![Complex64::ONE; 17], &mut out)
            .is_err());
    }

    #[test]
    fn size_one_transform_is_identity() {
        let plan = Fft::new(1).unwrap();
        let mut buf = vec![Complex64::new(3.0, -4.0)];
        plan.forward_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex64::new(3.0, -4.0));
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let a: Vec<Complex64> = (0..n).map(|t| Complex64::cis(t as f64 * 0.2)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|t| Complex64::new((t as f64).sqrt(), 0.1))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for k in 0..n {
            assert_close(fsum[k], fa[k] + fb[k], 1e-8);
        }
    }
}
